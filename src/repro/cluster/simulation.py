"""Discrete-event simulation kernel.

A minimal, deterministic, generator-based process simulator in the style
of SimPy, written from scratch so the reproduction has no dependencies
beyond NumPy.  The kernel provides:

* :class:`Event` — one-shot occurrences that processes can wait on;
* :class:`Timeout` — an event scheduled at ``now + delay``;
* :class:`Process` — a Python generator driven by the event loop; a
  process is itself an event that triggers when the generator returns;
* :class:`AllOf` / :class:`AnyOf` — barrier / race combinators;
* :class:`Simulation` — the event heap and clock.

Determinism: events scheduled at equal times are processed in schedule
order (a monotonically increasing sequence number breaks ties), so two
runs with the same seed produce bit-identical traces.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Simulation",
    "SimulationError",
    "Interrupt",
]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. scheduling into the past)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that callbacks and processes can wait on."""

    __slots__ = ("sim", "callbacks", "triggered", "ok", "value")

    def __init__(self, sim: "Simulation") -> None:
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self.triggered = False
        self.ok = True
        self.value: Any = None

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.ok = True
        self.value = value
        # Simulation._dispatch, inlined: succeed() runs once per flow
        # completion and once per process resumption.
        callbacks = self.callbacks
        self.callbacks = None
        if callbacks:
            for cb in callbacks:
                cb(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception, raised inside waiters."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.ok = False
        self.value = exception
        callbacks = self.callbacks
        self.callbacks = None
        if callbacks:
            for cb in callbacks:
                cb(self)
        return self


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulation", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.value = value
        sim._schedule(self, delay)

    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout events trigger themselves")


class Process(Event):
    """Drives a generator; the process is an event that fires on return."""

    __slots__ = ("generator", "_target")

    def __init__(self, sim: "Simulation", generator: Generator) -> None:
        super().__init__(sim)
        self.generator = generator
        self._target: Optional[Event] = None
        # Bootstrap: resume the generator at the current simulation time.
        boot = Event(sim)
        boot.callbacks.append(self._resume)
        sim._schedule(boot, 0.0)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            return
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        evt = Event(self.sim)
        evt.ok = False
        evt.value = Interrupt(cause)
        evt.callbacks.append(self._resume)
        evt.triggered = False
        self.sim._schedule_failure(evt)

    def _resume(self, event: Event) -> None:
        if self.triggered:
            # A late interrupt (or a stale pre-triggered resume) can race
            # with normal completion; resuming a finished generator would
            # re-raise into dead code and corrupt the event state.
            return
        self._target = None
        gen = self.generator
        try:
            if event.ok:
                nxt = gen.send(event.value)
            else:
                exc = event.value
                if not isinstance(exc, BaseException):  # pragma: no cover
                    exc = SimulationError(repr(exc))
                nxt = gen.throw(exc)
        except StopIteration as stop:
            self.triggered = True
            self.ok = True
            self.value = stop.value
            self.sim._dispatch(self)
            return
        except BaseException as err:
            self.triggered = True
            self.ok = False
            self.value = err
            if not self.callbacks:
                # Nobody is waiting on this process: surface the crash.
                self.sim._crashed.append((self, err))
            self.sim._dispatch(self)
            return
        if not isinstance(nxt, Event):
            raise SimulationError(
                f"process yielded non-event {nxt!r}; yield Timeout/Event objects"
            )
        if nxt.triggered:
            # Already happened: resume immediately (next kernel step).
            imm = Event(self.sim)
            imm.ok = nxt.ok
            imm.value = nxt.value
            imm.callbacks.append(self._resume)
            self.sim._schedule(imm, 0.0, pre_triggered=True)
        else:
            self._target = nxt
            nxt.callbacks.append(self._resume)


class AllOf(Event):
    """Triggers once all child events have triggered (a barrier).

    The event value is the list of child values in construction order.
    If any child fails, this event fails with the first failure.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim: "Simulation", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._children = list(events)
        self._remaining = 0
        for evt in self._children:
            if not evt.triggered:
                self._remaining += 1
                evt.callbacks.append(self._on_child)
            elif not evt.ok:
                self._remaining = -1
        if self._remaining == 0:
            sim._schedule(self, 0.0, pre_triggered=True)
            self.value = [e.value for e in self._children]
            self.triggered = False
        elif self._remaining == -1:
            failed = next(e for e in self._children if e.triggered and not e.ok)
            self.ok = False
            self.value = failed.value
            sim._schedule_failure(self)

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if not child.ok:
            self.fail(child.value if isinstance(child.value, BaseException)
                      else SimulationError(repr(child.value)))
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e.value for e in self._children])


class AnyOf(Event):
    """Triggers as soon as any child event triggers (a race)."""

    __slots__ = ("_children",)

    def __init__(self, sim: "Simulation", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._children = list(events)
        done = next((e for e in self._children if e.triggered), None)
        if done is not None:
            self.value = done.value
            self.ok = done.ok
            sim._schedule(self, 0.0, pre_triggered=True)
            self.triggered = False
            return
        for evt in self._children:
            evt.callbacks.append(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if child.ok:
            self.succeed(child.value)
        else:
            self.fail(child.value if isinstance(child.value, BaseException)
                      else SimulationError(repr(child.value)))


class Simulation:
    """The event loop: a clock plus a heap of scheduled events."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List = []
        self._seq = 0
        self._crashed: List = []
        #: Total events dispatched (cancelled pops excluded).
        self.steps_executed = 0
        #: Kernel observers (e.g. :class:`repro.validation.InvariantChecker`
        #: or a trace recorder): objects with an
        #: ``on_kernel_step(sim, time, event, pre_triggered, cancelled)``
        #: method, called on every heap pop.  Empty by default.
        self.observers: List = []

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def _schedule(self, event: Event, delay: float, pre_triggered: bool = False) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past ({delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, event, pre_triggered))

    def _schedule_failure(self, event: Event) -> None:
        """Schedule an already-failed event for dispatch."""
        self._seq += 1
        heapq.heappush(self._heap, (self.now, self._seq, event, True))

    def _dispatch(self, event: Event) -> None:
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            for cb in callbacks:
                cb(event)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def step(self) -> None:
        """Process the next scheduled event."""
        time, _seq, event, pre_triggered = heapq.heappop(self._heap)
        if time < self.now:  # pragma: no cover - guarded by _schedule
            raise SimulationError("event heap time went backwards")
        self.now = time
        cancelled = event.callbacks is None
        if self.observers:
            for obs in self.observers:
                obs.on_kernel_step(self, time, event, pre_triggered, cancelled)
        if cancelled:
            return  # cancelled / already dispatched
        event.triggered = True
        self.steps_executed += 1
        self._dispatch(event)

    def run(self, until: Optional[float] = None,
            until_event: Optional[Event] = None) -> None:
        """Run until the heap drains or the clock passes ``until``.

        ``until_event`` stops the loop as soon as that event has
        triggered, leaving any later-scheduled events (e.g. pending
        fault-injection timers) un-dispatched on the heap.

        Raises the first unhandled exception from a crashed process.
        """
        if until is None and until_event is None:
            # Common case (run to quiescence): drive the heap directly
            # instead of paying the stop-condition checks and a method
            # call per event — this loop is the whole simulation's spine.
            heap = self._heap
            pop = heapq.heappop
            crashed = self._crashed
            while heap:
                time, _seq, event, pre_triggered = pop(heap)
                self.now = time
                if event.callbacks is None:
                    if self.observers:
                        for obs in self.observers:
                            obs.on_kernel_step(self, time, event,
                                               pre_triggered, True)
                    continue  # cancelled / already dispatched
                if self.observers:
                    for obs in self.observers:
                        obs.on_kernel_step(self, time, event,
                                           pre_triggered, False)
                event.triggered = True
                self.steps_executed += 1
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks:
                    for cb in callbacks:
                        cb(event)
                if crashed:
                    _proc, err = crashed[0]
                    crashed.clear()
                    raise err
            return
        while self._heap:
            if until_event is not None and until_event.triggered:
                return
            if until is not None and self._heap[0][0] > until:
                self.now = until
                break
            self.step()
            if self._crashed:
                _proc, err = self._crashed[0]
                self._crashed.clear()
                raise err
        if until is not None and self.now < until:
            self.now = until

    def peek(self) -> float:
        """Time of the next scheduled event (inf if none)."""
        return self._heap[0][0] if self._heap else float("inf")
