"""Fluid-flow model of shared bandwidth resources (disks, NIC links).

Bulk data movement in the cluster simulator is not modelled packet by
packet; instead each transfer is a *flow* with a remaining byte count
that drains at a rate determined by **progressive-filling max–min fair
sharing** across every capacity the flow traverses (e.g. the source
disk, the source NIC and the destination NIC).  This is the classical
fluid approximation used by datacenter simulators: whenever the set of
active flows changes, all flow rates are recomputed and the next flow
completion is rescheduled.

Max–min fair allocation: repeatedly find the most contended capacity,
give each of its unfrozen flows an equal share of its remaining
bandwidth, freeze those flows, and subtract what they consume
everywhere else.  The result is work-conserving and unique.

Each :class:`Capacity` records two traces: its *throughput* (bytes/s
currently allocated) and its *utilisation* (allocated / bandwidth, in
percent) — these become the "Disk util %", "I/O MiB/s" and
"Network MiB/s" panels of the paper's resource figures.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Dict, List, Optional, Sequence, Set

from .simulation import Event, Simulation, SimulationError
from .trace import StepSeries

__all__ = ["Capacity", "Flow", "FluidScheduler"]

_EPS = 1e-12


class Capacity:
    """A shared bandwidth resource (one disk, one NIC direction, ...).

    ``contention_alpha`` models seek thrash on spinning disks: with
    ``n`` concurrent streams the device delivers only
    ``bandwidth / (1 + alpha * (n - 1))`` in aggregate.  Networks keep
    the default 0 (switches do not seek); single disks suffer badly —
    the mechanism behind the paper's slow, interference-ridden Tera
    Sort and Flink's pipelined-execution variance (§VI-C).
    """

    __slots__ = ("name", "bandwidth", "flows", "throughput", "utilisation",
                 "contention_alpha", "bw_high_water")

    def __init__(self, name: str, bandwidth: float,
                 contention_alpha: float = 0.0) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if contention_alpha < 0:
            raise ValueError("contention_alpha must be >= 0")
        self.name = name
        self.bandwidth = float(bandwidth)  # bytes / second
        #: Largest bandwidth this capacity ever had.  Fault injection
        #: rescales ``bandwidth`` mid-run; post-run trace audits bound
        #: throughput by the high-water mark, not the (possibly still
        #: degraded) final value.
        self.bw_high_water = float(bandwidth)
        self.contention_alpha = contention_alpha
        self.flows: Set["Flow"] = set()
        self.throughput = StepSeries()   # bytes/s allocated
        self.utilisation = StepSeries()  # percent of bandwidth

    def effective_bandwidth(self) -> float:
        n = len(self.flows)
        if n <= 1 or self.contention_alpha == 0.0:
            return self.bandwidth
        return self.bandwidth / (1.0 + self.contention_alpha * (n - 1))

    def _record(self, now: float) -> None:
        rate = sum(f.rate for f in self.flows)
        self.throughput.append(now, rate)
        self.utilisation.append(now, min(100.0, 100.0 * rate / self.bandwidth))

    def __repr__(self) -> str:
        return f"Capacity({self.name!r}, bw={self.bandwidth:.3g}, flows={len(self.flows)})"


class Flow:
    """A bulk transfer of ``size`` bytes across one or more capacities."""

    __slots__ = ("id", "size", "remaining", "capacities", "rate", "done",
                 "started_at", "last_update", "rate_cap", "rate_stamp")

    _ids = itertools.count()

    def __init__(self, size: float, capacities: Sequence[Capacity],
                 done: Event, now: float, rate_cap: Optional[float] = None) -> None:
        if size < 0:
            raise ValueError(f"flow size must be >= 0, got {size}")
        if not capacities:
            raise ValueError("flow must traverse at least one capacity")
        self.id = next(Flow._ids)
        self.size = float(size)
        self.remaining = float(size)
        self.capacities = tuple(capacities)
        self.rate = 0.0
        self.done = done
        self.started_at = now
        self.last_update = now
        # Optional per-flow cap (e.g. a single reader thread can not pull
        # faster than the producing pipeline emits).
        self.rate_cap = rate_cap
        # Bumped whenever the rate changes; stale heap entries carry an
        # older stamp and are skipped.
        self.rate_stamp = 0

    def __repr__(self) -> str:
        return (f"Flow(#{self.id}, size={self.size:.3g}, "
                f"remaining={self.remaining:.3g}, rate={self.rate:.3g})")


class FluidScheduler:
    """Owns all active flows and keeps their completion events on time.

    Scalability: recomputing every flow on every change is O(F·R) per
    event and dominates large-cluster simulations.  Since most flows
    touch only the capacities of one node, rate changes propagate only
    within the *connected component* of the capacity/flow graph that
    the changed flow belongs to; completions are tracked with a lazy
    heap keyed by each flow's current finish estimate.
    """

    def __init__(self, sim: Simulation) -> None:
        self.sim = sim
        self._flows: Set[Flow] = set()
        self._finish_heap: List = []  # (finish_time, flow_id, flow, rate_stamp)
        self._wakeup: Optional[Event] = None
        self._wakeup_time = math.inf
        self.completed_count = 0
        self.aborted_count = 0
        self.total_bytes_moved = 0.0
        #: Completed bytes per capacity name (conservation ledger).
        self.bytes_by_capacity: Dict[str, float] = {}
        #: Optional :class:`repro.validation.InvariantChecker`; when set,
        #: every max–min reallocation is audited for fairness on the spot.
        self.checker = None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def transfer(self, size: float, capacities: Sequence[Capacity],
                 rate_cap: Optional[float] = None) -> Event:
        """Start a flow; returns an event that fires when it completes."""
        if size < 0:
            raise ValueError(f"flow size must be >= 0, got {size}")
        done = self.sim.event()
        if size <= _EPS:
            # Zero-byte transfers complete immediately (next kernel step).
            self.sim._schedule(done, 0.0)
            done.value = 0.0
            return done
        flow = Flow(size, capacities, done, self.sim.now, rate_cap)
        self._flows.add(flow)
        for cap in flow.capacities:
            cap.flows.add(flow)
        self._reallocate_component(flow)
        return done

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def flows_on(self, capacities: Sequence[Capacity]) -> List[Flow]:
        """Active flows crossing any of the given capacities (id order)."""
        hit = {f for cap in capacities for f in cap.flows}
        return sorted(hit, key=lambda f: f.id)

    def rescale_capacity(self, cap: Capacity, bandwidth: float) -> None:
        """Change a capacity's bandwidth *mid-run* (fault injection).

        Active flows crossing the capacity are immediately re-allocated
        at the new bandwidth — the fluid equivalent of a disk entering a
        degraded mode or a NIC being throttled.  Restoration is the same
        call with the original bandwidth.
        """
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        cap.bandwidth = float(bandwidth)
        cap.bw_high_water = max(cap.bw_high_water, cap.bandwidth)
        if cap.flows:
            self._reallocate_component(next(iter(cap.flows)))
        else:
            cap._record(self.sim.now)

    def abort_flows(self, flows: Sequence[Flow],
                    error: BaseException) -> int:
        """Abort active flows: their ``done`` events *fail* with ``error``.

        Bytes already drained stay on the conservation ledger (the work
        physically happened before the fault); the remaining bytes are
        dropped.  Survivor flows sharing a capacity are re-allocated.
        Returns the number of flows actually aborted.
        """
        now = self.sim.now
        aborted: List[Flow] = []
        for flow in flows:
            if flow not in self._flows:
                continue
            dt = now - flow.last_update
            if dt > 0:
                flow.remaining = max(0.0, flow.remaining - flow.rate * dt)
            flow.last_update = now
            self._flows.discard(flow)
            progress = flow.size - flow.remaining
            for cap in flow.capacities:
                cap.flows.discard(flow)
                if progress > 0:
                    self.bytes_by_capacity[cap.name] = (
                        self.bytes_by_capacity.get(cap.name, 0.0) + progress)
            self.aborted_count += 1
            aborted.append(flow)
        # Survivors in the released neighbourhoods pick up the freed
        # bandwidth.
        seen: Set[Flow] = set()
        for flow in aborted:
            for cap in flow.capacities:
                for other in list(cap.flows):
                    if other in seen or other not in self._flows:
                        continue
                    seen.update(self._component_of(other))
                    self._reallocate_component(other)
        for flow in aborted:
            for cap in flow.capacities:
                if not cap.flows:
                    cap._record(now)
        for flow in aborted:
            if not flow.done.triggered:
                flow.done.fail(error)
        self._refresh_wakeup()
        return len(aborted)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _component_of(seed: Flow) -> Set[Flow]:
        """Flows transitively sharing a capacity with ``seed``."""
        flows: Set[Flow] = {seed}
        cap_stack = list(seed.capacities)
        seen_caps: Set[Capacity] = set(seed.capacities)
        while cap_stack:
            cap = cap_stack.pop()
            for f in cap.flows:
                if f not in flows:
                    flows.add(f)
                    for c in f.capacities:
                        if c not in seen_caps:
                            seen_caps.add(c)
                            cap_stack.append(c)
        return flows

    def _advance(self, flows) -> None:
        """Drain the given flows' remaining bytes up to now."""
        now = self.sim.now
        for flow in flows:
            dt = now - flow.last_update
            if dt > 0:
                flow.remaining = max(0.0, flow.remaining - flow.rate * dt)
            flow.last_update = now

    def _max_min_rates(self, flows: Set[Flow]) -> None:
        """Progressive-filling max-min fair allocation over a component."""
        unfrozen: Set[Flow] = set(flows)
        residual: Dict[Capacity, float] = {}
        load: Dict[Capacity, int] = {}
        caps: Set[Capacity] = set()
        for flow in flows:
            flow.rate = 0.0
            caps.update(flow.capacities)
        for cap in caps:
            residual[cap] = cap.effective_bandwidth()
            load[cap] = len(cap.flows)

        while unfrozen:
            # Find the bottleneck capacity: smallest fair share.
            best_cap = None
            best_share = math.inf
            for cap in caps:
                n = load[cap]
                if n <= 0:
                    continue
                share = residual[cap] / n
                if share < best_share - _EPS:
                    best_share = share
                    best_cap = cap
            # Flow rate caps tighter than the fair share freeze first.
            capped = [f for f in unfrozen
                      if f.rate_cap is not None and f.rate_cap < best_share - _EPS]
            if capped:
                rate = min(f.rate_cap for f in capped)  # type: ignore[type-var]
                frozen = [f for f in capped if f.rate_cap <= rate + _EPS]
            elif best_cap is not None:
                rate = best_share
                frozen = [f for f in best_cap.flows if f in unfrozen]
            else:  # pragma: no cover - every flow crosses >=1 capacity
                break
            for flow in frozen:
                flow.rate = rate
                unfrozen.discard(flow)
                for cap in flow.capacities:
                    residual[cap] = max(0.0, residual[cap] - rate)
                    load[cap] -= 1

    def _reallocate_component(self, seed: Flow) -> None:
        """Recompute rates/traces/finish estimates around ``seed``."""
        now = self.sim.now
        component = self._component_of(seed)
        self._advance(component)
        self._max_min_rates(component)
        if self.checker is not None:
            self.checker.check_max_min(self, component)

        touched: Set[Capacity] = set()
        for flow in component:
            touched.update(flow.capacities)
            flow.rate_stamp = getattr(flow, "rate_stamp", 0) + 1
            if flow.rate > _EPS:
                finish = now + flow.remaining / flow.rate
            elif flow.remaining <= _EPS:
                finish = now
            else:
                finish = math.inf
            if not math.isinf(finish):
                heapq.heappush(self._finish_heap,
                               (finish, flow.id, flow, flow.rate_stamp))
        for cap in touched:
            cap._record(now)
        self._refresh_wakeup()

    def _refresh_wakeup(self) -> None:
        """Point the kernel wakeup at the earliest *valid* finish."""
        heap = self._finish_heap
        while heap:
            finish, _fid, flow, stamp = heap[0]
            if flow not in self._flows or stamp != getattr(flow, "rate_stamp", 0):
                heapq.heappop(heap)  # stale entry
                continue
            self._set_wakeup(finish)
            return
        self._set_wakeup(math.inf)

    def _set_wakeup(self, when: float) -> None:
        if when == self._wakeup_time and self._wakeup is not None \
                and self._wakeup.callbacks is not None:
            return
        if self._wakeup is not None and self._wakeup.callbacks is not None:
            # Cancel the stale wakeup by clearing its callbacks; the kernel
            # skips events whose callback list is None.
            self._wakeup.callbacks = None
        self._wakeup = None
        self._wakeup_time = when
        if math.isinf(when):
            return
        evt = self.sim.event()
        evt.callbacks.append(self._on_wakeup)
        self.sim._schedule(evt, max(0.0, when - self.sim.now), pre_triggered=True)
        self._wakeup = evt

    def _on_wakeup(self, _evt: Event) -> None:
        now = self.sim.now
        heap = self._finish_heap
        finished: List[Flow] = []
        while heap:
            finish, _fid, flow, stamp = heap[0]
            if flow not in self._flows or stamp != getattr(flow, "rate_stamp", 0):
                heapq.heappop(heap)
                continue
            if finish > now + 1e-9:
                break
            heapq.heappop(heap)
            finished.append(flow)
        released: Set[Capacity] = set()
        neighbours: Set[Flow] = set()
        for flow in finished:
            dt = now - flow.last_update
            flow.remaining = max(0.0, flow.remaining - flow.rate * dt)
            flow.last_update = now
            self._flows.discard(flow)
            for cap in flow.capacities:
                cap.flows.discard(flow)
                released.add(cap)
                neighbours.update(cap.flows)
            self.completed_count += 1
            self.total_bytes_moved += flow.size
            for cap in flow.capacities:
                self.bytes_by_capacity[cap.name] = (
                    self.bytes_by_capacity.get(cap.name, 0.0) + flow.size)
        # Reallocate the neighbourhoods that lost a competitor.
        seen: Set[Flow] = set()
        for flow in neighbours:
            if flow in seen or flow not in self._flows:
                continue
            component = self._component_of(flow)
            seen.update(component)
            self._reallocate_component(flow)
        for cap in released:
            if not cap.flows:
                cap._record(now)
        # Deliver completions after rates are consistent.
        for flow in finished:
            flow.done.succeed(now - flow.started_at)
        self._refresh_wakeup()

    def moved_bytes_by_capacity(self) -> Dict[str, float]:
        """Bytes moved across each capacity, including in-flight progress.

        For a completed flow every capacity it traversed carried all of
        ``flow.size`` bytes; active flows contribute the bytes drained so
        far, advanced to the current simulation time.  The result is what
        the integral of each capacity's throughput trace must equal —
        the flow byte-conservation invariant.
        """
        moved = dict(self.bytes_by_capacity)
        now = self.sim.now
        for flow in self._flows:
            progress = flow.size - flow.remaining
            dt = now - flow.last_update
            if dt > 0:
                progress = min(flow.size, progress + flow.rate * dt)
            if progress <= 0:
                continue
            for cap in flow.capacities:
                moved[cap.name] = moved.get(cap.name, 0.0) + progress
        return moved

    def assert_quiescent(self) -> None:
        """Raise if any flow is still active (used by tests)."""
        if self._flows:
            raise SimulationError(f"{len(self._flows)} flows still active")
