"""Fluid-flow model of shared bandwidth resources (disks, NIC links).

Bulk data movement in the cluster simulator is not modelled packet by
packet; instead each transfer is a *flow* with a remaining byte count
that drains at a rate determined by **progressive-filling max–min fair
sharing** across every capacity the flow traverses (e.g. the source
disk, the source NIC and the destination NIC).  This is the classical
fluid approximation used by datacenter simulators: whenever the set of
active flows changes, all flow rates are recomputed and the next flow
completion is rescheduled.

Max–min fair allocation: repeatedly find the most contended capacity,
give each of its unfrozen flows an equal share of its remaining
bandwidth, freeze those flows, and subtract what they consume
everywhere else.  The result is work-conserving and unique.

Each :class:`Capacity` records two traces: its *throughput* (bytes/s
currently allocated) and its *utilisation* (allocated / bandwidth, in
percent) — these become the "Disk util %", "I/O MiB/s" and
"Network MiB/s" panels of the paper's resource figures.  Tracing is
controlled by the scheduler's ``trace_detail``: ``"full"`` records every
rate change, ``"coarse"`` only busy/idle transitions, ``"off"`` nothing
— sweeps that need only durations skip the trace cost entirely.

Scale: reallocations are *batched*.  Callers that change many flows at
one instant (a node starting all the transfers of a chunk, a wakeup
finishing several flows) funnel through :meth:`FluidScheduler.transfer_many`
and :meth:`FluidScheduler._reallocate_many`, which resolve every
affected component once, solve all single-flow components together —
through a numpy array pass when the batch is large enough — and refresh
the kernel wakeup a single time.  The arithmetic is operation-for-
operation identical to the scalar path, so traces and completion times
are bit-identical; only the Python overhead changes.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from .simulation import Event, Simulation, SimulationError
from .trace import StepSeries

__all__ = ["Capacity", "Flow", "FluidScheduler", "TRACE_DETAIL_MODES"]

_EPS = 1e-12

#: Valid ``trace_detail`` settings, in decreasing order of fidelity.
TRACE_DETAIL_MODES = ("full", "coarse", "off")

#: Minimum number of single-flow components in one batch before the
#: numpy solve pays for its gather/scatter; below it the scalar loop is
#: faster.  Both produce bit-identical rates (see _solve_singles_array).
_VEC_MIN_SINGLES = 8


class Capacity:
    """A shared bandwidth resource (one disk, one NIC direction, ...).

    ``contention_alpha`` models seek thrash on spinning disks: with
    ``n`` concurrent streams the device delivers only
    ``bandwidth / (1 + alpha * (n - 1))`` in aggregate.  Networks keep
    the default 0 (switches do not seek); single disks suffer badly —
    the mechanism behind the paper's slow, interference-ridden Tera
    Sort and Flink's pipelined-execution variance (§VI-C).
    """

    __slots__ = ("name", "bandwidth", "flows", "throughput", "utilisation",
                 "contention_alpha", "bw_high_water", "last_rate")

    def __init__(self, name: str, bandwidth: float,
                 contention_alpha: float = 0.0) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if contention_alpha < 0:
            raise ValueError("contention_alpha must be >= 0")
        self.name = name
        self.bandwidth = float(bandwidth)  # bytes / second
        #: Largest bandwidth this capacity ever had.  Fault injection
        #: rescales ``bandwidth`` mid-run; post-run trace audits bound
        #: throughput by the high-water mark, not the (possibly still
        #: degraded) final value.
        self.bw_high_water = float(bandwidth)
        self.contention_alpha = contention_alpha
        self.flows: Set["Flow"] = set()
        self.throughput = StepSeries()   # bytes/s allocated
        self.utilisation = StepSeries()  # percent of bandwidth
        #: Aggregate rate as of the last ``_record*`` call.  Lets the
        #: scheduler's hot paths skip the record entirely when the rate
        #: is unchanged — the resulting series are identical because
        #: :meth:`StepSeries.append` collapses equal-value runs anyway.
        #: (Every rate change goes through a ``_record*`` call, so this
        #: mirror never goes stale while tracing is on.)
        self.last_rate: float = 0.0

    def effective_bandwidth(self) -> float:
        n = len(self.flows)
        if n <= 1 or self.contention_alpha == 0.0:
            return self.bandwidth
        return self.bandwidth / (1.0 + self.contention_alpha * (n - 1))

    def _record(self, now: float) -> None:
        # The two appends are inlined (see StepSeries.append): this runs
        # once per touched capacity per reallocation and the call
        # overhead is measurable on large runs.  Timestamps are monotone
        # by construction (the scheduler always records at sim.now).
        flows = self.flows
        nf = len(flows)
        if nf == 1:
            # sum([x]) is 0 + x, which is exact for the non-negative
            # rates the solver produces — skip the list build.
            f, = flows
            rate = f.rate
        elif nf == 0:
            rate = sum(())  # int 0, matching the historical idle value
        else:
            rate = sum([f.rate for f in flows])
        self.last_rate = rate
        series = self.throughput
        times = series.times
        values = series.values
        if times:
            if now == times[-1]:
                values[-1] = rate
            elif values[-1] != rate:
                times.append(now)
                values.append(rate)
            else:
                # Collapsed: the rate (and bandwidth) are unchanged since
                # the last record, so the utilisation append would collapse
                # to the same value too — skip computing it.
                return
        elif rate != series.initial:
            times.append(now)
            values.append(rate)
        else:
            return
        util = min(100.0, 100.0 * rate / self.bandwidth)
        series = self.utilisation
        times = series.times
        values = series.values
        if times:
            if now == times[-1]:
                values[-1] = util
            elif values[-1] != util:
                times.append(now)
                values.append(util)
        elif util != series.initial:
            times.append(now)
            values.append(util)

    def _record_rate(self, now: float, rate: float) -> None:
        """Exact twin of :meth:`_record` for a rate the caller knows.

        Single-flow fast paths know the aggregate (the lone flow's rate)
        without touching the flow set; they also consult ``last_rate``
        first and skip the call entirely when nothing changed.
        """
        self.last_rate = rate
        series = self.throughput
        times = series.times
        values = series.values
        if times:
            if now == times[-1]:
                values[-1] = rate
            elif values[-1] != rate:
                times.append(now)
                values.append(rate)
            else:
                return
        elif rate != series.initial:
            times.append(now)
            values.append(rate)
        else:
            return
        util = min(100.0, 100.0 * rate / self.bandwidth)
        series = self.utilisation
        times = series.times
        values = series.values
        if times:
            if now == times[-1]:
                values[-1] = util
            elif values[-1] != util:
                times.append(now)
                values.append(util)
        elif util != series.initial:
            times.append(now)
            values.append(util)

    def _record_coarse(self, now: float, rate: Optional[float] = None) -> None:
        """Trace only busy/idle transitions (``trace_detail="coarse"``)."""
        if rate is None:
            rate = sum([f.rate for f in self.flows])
        self.last_rate = rate
        if (rate > 0.0) != (self.throughput.last_value > 0.0):
            self.throughput.append(now, rate)
            self.utilisation.append(
                now, min(100.0, 100.0 * rate / self.bandwidth))

    def __repr__(self) -> str:
        return f"Capacity({self.name!r}, bw={self.bandwidth:.3g}, flows={len(self.flows)})"


class _Component:
    """Cached connected component of the capacity/flow sharing graph.

    ``flows`` is exact while ``dirty`` is False.  Flow *arrivals* keep
    components exact (a new flow merges the components it bridges);
    flow *removals* may split a component, so they mark it dirty and the
    next reallocation re-derives the exact membership with one graph
    traversal instead of one per event.
    """

    __slots__ = ("flows", "dirty")

    def __init__(self, flows: Set["Flow"]) -> None:
        self.flows = flows
        self.dirty = False


class Flow:
    """A bulk transfer of ``size`` bytes across one or more capacities."""

    __slots__ = ("id", "size", "remaining", "capacities", "rate", "done",
                 "started_at", "last_update", "rate_cap", "rate_stamp",
                 "comp", "heap_finish", "prev_rate")

    _ids = itertools.count()

    def __init__(self, size: float, capacities: Sequence[Capacity],
                 done: Event, now: float, rate_cap: Optional[float] = None) -> None:
        if size < 0:
            raise ValueError(f"flow size must be >= 0, got {size}")
        if not capacities:
            raise ValueError("flow must traverse at least one capacity")
        self.id = next(Flow._ids)
        self.size = float(size)
        self.remaining = float(size)
        self.capacities = tuple(capacities)
        self.rate = 0.0
        #: Rate at the start of the last contended solve — scratch used
        #: by :meth:`FluidScheduler._solve_multi` to detect which flows
        #: (and therefore which capacity aggregates) actually moved.
        self.prev_rate = 0.0
        self.done = done
        self.started_at = now
        self.last_update = now
        # Optional per-flow cap (e.g. a single reader thread can not pull
        # faster than the producing pipeline emits).
        self.rate_cap = rate_cap
        # Bumped whenever a new finish-heap entry supersedes the old one;
        # stale heap entries carry an older stamp and are skipped.
        self.rate_stamp = 0
        #: Cached connected component this flow belongs to.
        self.comp: Optional[_Component] = None
        #: Finish time of this flow's current *valid* heap entry
        #: (``inf`` when it has none) — lets reallocations that do not
        #: change the finish estimate keep the existing entry instead of
        #: pushing a duplicate.
        self.heap_finish = math.inf

    def __repr__(self) -> str:
        return (f"Flow(#{self.id}, size={self.size:.3g}, "
                f"remaining={self.remaining:.3g}, rate={self.rate:.3g})")


#: A transfer request accepted by :meth:`FluidScheduler.transfer_many`:
#: ``(size, capacities)`` or ``(size, capacities, rate_cap)``.
TransferRequest = Union[
    Tuple[float, Sequence[Capacity]],
    Tuple[float, Sequence[Capacity], Optional[float]],
]


class FluidScheduler:
    """Owns all active flows and keeps their completion events on time.

    Scalability: recomputing every flow on every change is O(F·R) per
    event and dominates large-cluster simulations.  Since most flows
    touch only the capacities of one node, rate changes propagate only
    within the *connected component* of the capacity/flow graph that
    the changed flow belongs to.  Components are cached (exact merge on
    arrival, lazy re-derivation after removals), completions are tracked
    with a lazy heap keyed by each flow's current finish estimate, and
    single-flow components take a closed-form fast path through the
    max–min solver.  Batch entry points (:meth:`transfer_many`, the
    wakeup handler) resolve all affected components once and solve the
    single-flow ones together — via one numpy pass for large batches —
    with bit-identical results.

    ``fast_forward`` (opt-in, default off) trades exactness for speed:
    when set to a relative tolerance ``tol``, a wakeup also *absorbs*
    flow completions due within ``tol * max(now, 1)`` seconds — but
    never past the next independently scheduled kernel event — and
    delivers them at the current instant.  Each absorbed completion
    lands at most ``tol * max(now, 1)`` seconds early; early barriers
    compound along the critical path, so a run with ``k`` absorbed
    completions on its critical path can finish up to a factor
    ``1 - (1 - tol)^k`` early (see docs/performance.md for measured
    drifts).  With ``fast_forward=None`` the scheduler is bit-identical
    to the exact implementation.
    """

    def __init__(self, sim: Simulation, trace_detail: str = "full",
                 fast_forward: Optional[float] = None) -> None:
        if trace_detail not in TRACE_DETAIL_MODES:
            raise ValueError(
                f"trace_detail must be one of {TRACE_DETAIL_MODES}, "
                f"got {trace_detail!r}")
        if fast_forward is not None and not 0.0 < fast_forward < 1.0:
            raise ValueError(
                f"fast_forward must be None or in (0, 1), got {fast_forward}")
        self.sim = sim
        self.trace_detail = trace_detail
        self.fast_forward = fast_forward
        self._flows: Set[Flow] = set()
        self._finish_heap: List = []  # (finish_time, flow_id, flow, rate_stamp)
        self._wakeup: Optional[Event] = None
        self._wakeup_time = math.inf
        self.completed_count = 0
        self.aborted_count = 0
        #: Completions delivered early by the fast-forward mode (0 when
        #: the mode is off — i.e. whenever bit-exactness is required).
        self.fast_forwarded_count = 0
        self.total_bytes_moved = 0.0
        #: Completed bytes per capacity name (conservation ledger).
        self.bytes_by_capacity: Dict[str, float] = {}
        #: Optional :class:`repro.validation.InvariantChecker`; when set,
        #: every max–min reallocation is audited for fairness on the spot.
        self.checker = None
        #: Optional callback ``(flow, now)`` invoked for every flow that
        #: completes, after rates are consistent but before completion
        #: events are delivered.  Used by the span tracer's flow-detail
        #: mode; it must only *read* the flow (no scheduling).
        self.flow_hook = None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def transfer(self, size: float, capacities: Sequence[Capacity],
                 rate_cap: Optional[float] = None) -> Event:
        """Start a flow; returns an event that fires when it completes."""
        if size < 0:
            raise ValueError(f"flow size must be >= 0, got {size}")
        done = Event(self.sim)
        if size <= _EPS:
            # Zero-byte transfers complete immediately (next kernel step).
            self.sim._schedule(done, 0.0)
            done.value = 0.0
            return done
        flow = Flow(size, capacities, done, self.sim.now, rate_cap)
        self._flows.add(flow)
        component = self._insert_flow(flow)
        self._reallocate_component(flow, component)
        return done

    def transfer_many(self, requests: Sequence[TransferRequest]) -> List[Event]:
        """Start several flows at the current instant with one solve.

        ``requests`` is a sequence of ``(size, capacities)`` or
        ``(size, capacities, rate_cap)`` tuples; the returned events are
        in request order.  Observably identical to calling
        :meth:`transfer` once per request at the same simulated instant
        — intermediate rates between the individual starts are never
        visible to anyone (no kernel event can run in between), so the
        per-arrival reallocations, finish-heap churn and wakeup
        cancel/reschedule cycles are pure overhead that this entry point
        skips.
        """
        sim = self.sim
        now = sim.now
        events: List[Event] = []
        seeds: List[Flow] = []
        flows = self._flows
        for req in requests:
            size = req[0]
            if size < 0:
                raise ValueError(f"flow size must be >= 0, got {size}")
            done = Event(sim)
            events.append(done)
            if size <= _EPS:
                sim._schedule(done, 0.0)
                done.value = 0.0
                continue
            flow = Flow(size, req[1], done, now,
                        req[2] if len(req) > 2 else None)
            flows.add(flow)
            self._insert_flow(flow)
            seeds.append(flow)
        if seeds:
            self._reallocate_many(seeds)
        return events

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def flows_on(self, capacities: Sequence[Capacity]) -> List[Flow]:
        """Active flows crossing any of the given capacities (id order)."""
        hit = {f for cap in capacities for f in cap.flows}
        return sorted(hit, key=lambda f: f.id)

    def rescale_capacity(self, cap: Capacity, bandwidth: float) -> None:
        """Change a capacity's bandwidth *mid-run* (fault injection).

        Active flows crossing the capacity are immediately re-allocated
        at the new bandwidth — the fluid equivalent of a disk entering a
        degraded mode or a NIC being throttled.  Restoration is the same
        call with the original bandwidth.
        """
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        cap.bandwidth = float(bandwidth)
        cap.bw_high_water = max(cap.bw_high_water, cap.bandwidth)
        if cap.flows:
            # The bandwidth changed, so the utilisation trace must be
            # re-recorded even at an unchanged rate: poison the cached
            # aggregate so the fast paths cannot skip the record.
            cap.last_rate = math.nan
            self._reallocate_component(next(iter(cap.flows)))
        else:
            self._record_cap(cap, self.sim.now)

    def abort_flows(self, flows: Sequence[Flow],
                    error: BaseException) -> int:
        """Abort active flows: their ``done`` events *fail* with ``error``.

        Bytes already drained stay on the conservation ledger (the work
        physically happened before the fault); the remaining bytes are
        dropped.  Survivor flows sharing a capacity are re-allocated.
        Returns the number of flows actually aborted.
        """
        now = self.sim.now
        aborted: List[Flow] = []
        for flow in flows:
            if flow not in self._flows:
                continue
            dt = now - flow.last_update
            if dt > 0:
                flow.remaining = max(0.0, flow.remaining - flow.rate * dt)
            flow.last_update = now
            self._flows.discard(flow)
            self._drop_from_component(flow)
            progress = flow.size - flow.remaining
            for cap in flow.capacities:
                cap.flows.discard(flow)
                if progress > 0:
                    self.bytes_by_capacity[cap.name] = (
                        self.bytes_by_capacity.get(cap.name, 0.0) + progress)
            self.aborted_count += 1
            aborted.append(flow)
        # Survivors in the released neighbourhoods pick up the freed
        # bandwidth: one batched pass over the distinct components.
        neighbours: List[Flow] = []
        for flow in aborted:
            for cap in flow.capacities:
                neighbours.extend(cap.flows)
        if neighbours:
            self._reallocate_many(neighbours)
        for flow in aborted:
            for cap in flow.capacities:
                if not cap.flows:
                    self._record_cap(cap, now)
        for flow in aborted:
            if not flow.done.triggered:
                flow.done.fail(error)
        self._refresh_wakeup()
        return len(aborted)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _insert_flow(self, flow: Flow) -> Optional[Set[Flow]]:
        """Register ``flow`` on its capacities and merge components.

        Returns the exact component membership when it is known (clean
        merge), or None when a stale neighbour forces the caller to
        re-derive lazily.  Does *not* reallocate.
        """
        # An arriving flow bridges the components of every flow it now
        # shares a capacity with; if they are all exact, their union plus
        # the new flow is exactly the new component (no traversal).
        comps: Set[_Component] = set()
        clean = True
        for cap in flow.capacities:
            for f in cap.flows:
                c = f.comp
                comps.add(c)
                if c.dirty:
                    clean = False
        for cap in flow.capacities:
            cap.flows.add(flow)
        if clean and len(comps) <= 1:
            if comps:
                comp = comps.pop()
                comp.flows.add(flow)
            else:
                comp = _Component({flow})
            flow.comp = comp
            return comp.flows
        if clean:
            # Merge into the largest neighbour component.
            big = max(comps, key=lambda c: len(c.flows))
            for c in comps:
                if c is big:
                    continue
                big.flows.update(c.flows)
                for f in c.flows:
                    f.comp = big
            big.flows.add(flow)
            flow.comp = big
            return big.flows
        # A neighbour component is stale; re-derive lazily.
        comp = _Component({flow})
        comp.dirty = True
        flow.comp = comp
        return None

    @staticmethod
    def _component_of(seed: Flow) -> Set[Flow]:
        """Flows transitively sharing a capacity with ``seed``."""
        flows: Set[Flow] = {seed}
        cap_stack = list(seed.capacities)
        seen_caps: Set[Capacity] = set(seed.capacities)
        while cap_stack:
            cap = cap_stack.pop()
            for f in cap.flows:
                if f not in flows:
                    flows.add(f)
                    for c in f.capacities:
                        if c not in seen_caps:
                            seen_caps.add(c)
                            cap_stack.append(c)
        return flows

    def _component_for(self, seed: Flow) -> Set[Flow]:
        """Exact component membership for ``seed``, via the cache."""
        comp = seed.comp
        if comp is not None and not comp.dirty:
            return comp.flows
        members = self._component_of(seed)
        fresh = _Component(members)
        for f in members:
            old = f.comp
            if old is not None and old is not fresh:
                old.flows.discard(f)
            f.comp = fresh
        return members

    @staticmethod
    def _drop_from_component(flow: Flow) -> None:
        """Remove a finished/aborted flow from its cached component."""
        comp = flow.comp
        if comp is None:
            return
        comp.flows.discard(flow)
        if len(comp.flows) > 1:
            # The removal may have split the component; membership is
            # re-derived on the next reallocation that touches it.
            comp.dirty = True
        flow.comp = None

    def _record_cap(self, cap: Capacity, now: float) -> None:
        detail = self.trace_detail
        if detail == "full":
            cap._record(now)
        elif detail == "coarse":
            cap._record_coarse(now)

    def _reallocate_component(self, seed: Flow,
                              component: Optional[Set[Flow]] = None) -> None:
        """Recompute rates/traces/finish estimates around ``seed``.

        One fused pass: drain every flow's remaining bytes up to now,
        run the progressive-filling max–min solver over the component,
        refresh finish-heap entries and record the touched capacities'
        traces.  ``component`` may be passed by callers that already
        resolved the exact membership, avoiding a second lookup.

        Single-flow components take a closed-form fast path: the lone
        flow gets the tightest of its capacities (each carries only this
        flow), bounded by its rate cap — the same arithmetic the general
        loop performs, without building the solver's working sets.
        """
        now = self.sim.now
        if component is None:
            component = self._component_for(seed)

        if len(component) == 1:
            flow, = component
            self._solve_single(flow, now)
            if self.checker is not None:
                self.checker.check_max_min(self, component)
            self._update_finish(component, now)
            detail = self.trace_detail
            rate = flow.rate
            if detail == "full":
                for cap in flow.capacities:
                    if rate != cap.last_rate:
                        cap._record_rate(now, rate)
            elif detail == "coarse":
                for cap in flow.capacities:
                    if rate != cap.last_rate:
                        cap._record_coarse(now, rate)
            self._refresh_wakeup()
            return

        touched = self._solve_multi(component, now, seed.capacities)
        if self.checker is not None:
            self.checker.check_max_min(self, component)
        self._update_finish(component, now)
        detail = self.trace_detail
        if detail == "full":
            for cap in touched:
                cap._record(now)
        elif detail == "coarse":
            for cap in touched:
                cap._record_coarse(now)
        self._refresh_wakeup()

    def _reallocate_many(self, seeds: Sequence[Flow],
                         refresh: bool = True) -> None:
        """Recompute every distinct component touching ``seeds`` at once.

        The batched twin of :meth:`_reallocate_component`: affected
        components are resolved once (duplicate seeds and already-
        finished flows are skipped), single-flow components are solved
        together — in one numpy pass for large batches — multi-flow
        components go through the exact progressive-filling solver, and
        the kernel wakeup is refreshed a single time at the end.
        Components are disjoint, so solving them in any grouping yields
        the same rates; every individual solve is arithmetic-identical
        to the per-seed path.  ``refresh=False`` lets a caller that
        refreshes the kernel wakeup itself (the wakeup handler) skip
        the intermediate refresh.
        """
        now = self.sim.now
        flows = self._flows
        seen: Set[Flow] = set()
        singles: List[Flow] = []
        multis: List[Set[Flow]] = []
        # Every seed's capacities are force-recorded: seeds are exactly
        # the flows on capacities whose membership just changed (a
        # completion's survivors, a fresh insert), so their aggregates
        # must be re-read even when no surviving rate moved.  Singleton
        # seeds are force-marked too — their capacities carry no other
        # flow, so they can never appear in a multi component's record
        # list and the extra entries are inert.
        force: Set[Capacity] = set()
        for seed in seeds:
            if seed not in flows:
                continue
            if seed in seen:
                force.update(seed.capacities)
                continue
            component = self._component_for(seed)
            seen.update(component)
            if len(component) == 1:
                singles.append(seed)
            else:
                multis.append(component)
                force.update(seed.capacities)
        checker = self.checker
        detail = self.trace_detail
        full = detail == "full"
        coarse = detail == "coarse"
        if singles:
            heap = self._finish_heap
            inf = math.inf
            push = heapq.heappush
            vec = len(singles) >= _VEC_MIN_SINGLES
            if vec:
                self._solve_singles_array(singles, now)
            # One fused pass per flow: solve (unless vectorized above),
            # audit, refresh the finish-heap entry and record the trace.
            # Singles are disjoint components, so per-flow fusion is
            # observably identical to the stage-by-stage order.
            for flow in singles:
                if not vec:
                    # _solve_single, inlined (hot path).
                    dt = now - flow.last_update
                    if dt > 0:
                        rem = flow.remaining - flow.rate * dt
                        flow.remaining = rem if rem > 0.0 else 0.0
                    flow.last_update = now
                    best_share = inf
                    for cap in flow.capacities:
                        share = cap.bandwidth
                        nf = len(cap.flows)
                        if nf > 1 and cap.contention_alpha != 0.0:
                            share = share / (
                                1.0 + cap.contention_alpha * (nf - 1))
                        if share < best_share - _EPS:
                            best_share = share
                    rate_cap = flow.rate_cap
                    if rate_cap is not None and rate_cap < best_share - _EPS:
                        flow.rate = rate_cap
                    else:
                        flow.rate = best_share
                if checker is not None:
                    checker.check_max_min(self, (flow,))
                # _update_finish, inlined.
                rate = flow.rate
                remaining = flow.remaining
                if rate > _EPS:
                    finish = now + remaining / rate
                elif remaining <= _EPS:
                    finish = now
                else:
                    finish = inf
                if finish == inf:
                    if flow.heap_finish != inf:
                        flow.rate_stamp += 1
                        flow.heap_finish = inf
                elif finish != flow.heap_finish:
                    flow.rate_stamp += 1
                    flow.heap_finish = finish
                    push(heap, (finish, flow.id, flow, flow.rate_stamp))
                if full:
                    for cap in flow.capacities:
                        if rate != cap.last_rate:
                            cap._record_rate(now, rate)
                elif coarse:
                    for cap in flow.capacities:
                        if rate != cap.last_rate:
                            cap._record_coarse(now, rate)
        for component in multis:
            touched = self._solve_multi(component, now, force)
            if checker is not None:
                checker.check_max_min(self, component)
            self._update_finish(component, now)
            if full:
                for cap in touched:
                    cap._record(now)
            elif coarse:
                for cap in touched:
                    cap._record_coarse(now)
        if refresh:
            self._refresh_wakeup()

    @staticmethod
    def _solve_single(flow: Flow, now: float) -> None:
        """Drain + closed-form max–min solve for a one-flow component."""
        dt = now - flow.last_update
        if dt > 0:
            rem = flow.remaining - flow.rate * dt
            flow.remaining = rem if rem > 0.0 else 0.0
        flow.last_update = now
        # Iterate the raw capacities tuple: duplicates cannot change
        # a min and re-recording a capacity at the same instant
        # overwrites with the same value, so no set build is needed.
        best_share = math.inf
        for cap in flow.capacities:
            # effective_bandwidth() inlined; exact components mean
            # every capacity here carries only this flow (n == 1).
            share = cap.bandwidth
            n = len(cap.flows)
            if n > 1 and cap.contention_alpha != 0.0:
                share = share / (1.0 + cap.contention_alpha * (n - 1))
            if share < best_share - _EPS:
                best_share = share
        rate_cap = flow.rate_cap
        if rate_cap is not None and rate_cap < best_share - _EPS:
            flow.rate = rate_cap
        else:
            flow.rate = best_share

    @staticmethod
    def _solve_singles_array(singles: List[Flow], now: float) -> None:
        """Vectorized :meth:`_solve_single` over many one-flow components.

        Every floating-point operation mirrors the scalar path — the
        drain is the same subtract/clamp per element, and the capacity
        min is the same EPS-guarded running comparison applied column-
        wise (``where(share < best - EPS, share, best)``), so each
        flow sees its capacities in the same order with the same
        comparisons.  numpy's elementwise double arithmetic is IEEE-754
        identical to CPython's scalar arithmetic, which makes the two
        paths bit-for-bit interchangeable (property-tested in
        tests/cluster/test_fluid_vectorized.py).  No reductions
        (``np.sum`` pairwise summation would not be) are used.
        """
        n = len(singles)
        rem = np.empty(n)
        rate = np.empty(n)
        last = np.empty(n)
        rcap = np.empty(n)
        max_caps = 1
        for i, f in enumerate(singles):
            rem[i] = f.remaining
            rate[i] = f.rate
            last[i] = f.last_update
            rc = f.rate_cap
            rcap[i] = math.inf if rc is None else rc
            c = len(f.capacities)
            if c > max_caps:
                max_caps = c
        dt = now - last
        drained = rem - rate * dt
        rem = np.where(dt > 0.0, np.where(drained > 0.0, drained, 0.0), rem)
        if max_caps == 1:
            # One capacity per flow: the running min is just that share
            # (inf < share - EPS never holds for the initial inf).
            best = np.empty(n)
            for i, f in enumerate(singles):
                cap = f.capacities[0]
                share = cap.bandwidth
                nf = len(cap.flows)
                if nf > 1 and cap.contention_alpha != 0.0:
                    share = share / (1.0 + cap.contention_alpha * (nf - 1))
                best[i] = share
        else:
            best = np.full(n, math.inf)
            col = np.empty(n)
            for j in range(max_caps):
                col.fill(math.inf)
                for i, f in enumerate(singles):
                    caps = f.capacities
                    if j < len(caps):
                        cap = caps[j]
                        share = cap.bandwidth
                        nf = len(cap.flows)
                        if nf > 1 and cap.contention_alpha != 0.0:
                            share = share / (
                                1.0 + cap.contention_alpha * (nf - 1))
                        col[i] = share
                best = np.where(col < best - _EPS, col, best)
        rates = np.where(rcap < best - _EPS, rcap, best)
        rem_list = rem.tolist()
        rate_list = rates.tolist()
        for i, f in enumerate(singles):
            f.remaining = rem_list[i]
            f.last_update = now
            f.rate = rate_list[i]

    @staticmethod
    def _solve_multi(component: Set[Flow], now: float, force=None):
        """Drain + progressive-filling max–min solve (contended case).

        Returns the capacities the caller must re-record: the touched
        capacities whose *aggregate rate can have changed* — those
        crossed by a flow whose rate differs from its pre-solve value,
        plus any in ``force`` (a capacity container the caller marks
        when membership changed: a flow completed, aborted or was just
        inserted there).  A capacity whose member set and member rates
        are both unchanged re-sums to the bitwise-identical aggregate,
        so skipping its record is exact — on the big uniform components
        a completion re-solves, this cuts the per-solve record work
        from O(capacities) to O(changed).

        Components where every flow crosses exactly one, *shared*
        capacity (the dominant contended shape: a disk read and a disk
        write on one spindle) skip the dict machinery: progressive
        filling over a single capacity is a scalar loop whose arithmetic
        — fair share ``residual / n``, rate-cap freezing, the clamped
        sequential residual subtraction — is operation-for-operation the
        general loop below with one dictionary entry.
        """
        any_rate_cap = False
        shared: Optional[Capacity] = None
        one_cap = True
        for flow in component:
            dt = now - flow.last_update
            if dt > 0:
                rem = flow.remaining - flow.rate * dt
                flow.remaining = rem if rem > 0.0 else 0.0
            flow.last_update = now
            flow.prev_rate = flow.rate
            flow.rate = 0.0
            if flow.rate_cap is not None:
                any_rate_cap = True
            if one_cap:
                caps = flow.capacities
                if len(caps) != 1:
                    one_cap = False
                elif shared is None:
                    shared = caps[0]
                elif caps[0] is not shared:
                    one_cap = False

        if one_cap:
            # Exact components put every flow of ``shared`` in
            # ``component``, so the load starts at len(component).
            residual = shared.effective_bandwidth()
            unfrozen = set(component)
            n = len(unfrozen)
            while unfrozen:
                best_share = residual / n
                if any_rate_cap:
                    capped = [f for f in unfrozen
                              if f.rate_cap is not None
                              and f.rate_cap < best_share - _EPS]
                else:
                    capped = None
                if capped:
                    rate = min(f.rate_cap for f in capped)  # type: ignore[type-var]
                    frozen = [f for f in capped if f.rate_cap <= rate + _EPS]
                else:
                    rate = best_share
                    frozen = list(unfrozen)
                for flow in frozen:
                    flow.rate = rate
                    unfrozen.discard(flow)
                    r = residual - rate
                    residual = r if r > 0.0 else 0.0
                    n -= 1
            if force is not None and shared in force:
                return (shared,)
            for flow in component:
                if flow.rate != flow.prev_rate:
                    return (shared,)
            return ()

        unfrozen = set(component)
        residual_by_cap: Dict[Capacity, float] = {}
        load: Dict[Capacity, int] = {}
        for flow in component:
            for cap in flow.capacities:
                if cap not in load:
                    residual_by_cap[cap] = cap.effective_bandwidth()
                    load[cap] = len(cap.flows)

        while unfrozen:
            # Find the bottleneck capacity: smallest fair share.
            best_cap = None
            best_share = math.inf
            run_min = math.inf
            tie_count = 0
            for cap, n in load.items():
                if n <= 0:
                    continue
                share = residual_by_cap[cap] / n
                # ``run_min`` (the pure running minimum) can never sit
                # more than _EPS below ``best_share``, so anything above
                # ``best_share`` updates neither — the common case costs
                # one comparison, same as the plain hysteresis fold.
                if share > best_share:
                    pass
                elif share < best_share - _EPS:
                    best_share = share
                    best_cap = cap
                    tie_count = 1
                    run_min = share
                elif share == best_share:
                    tie_count += 1
                elif share < run_min:
                    run_min = share
            # Flow rate caps tighter than the fair share freeze first.
            if any_rate_cap:
                capped = [f for f in unfrozen
                          if f.rate_cap is not None
                          and f.rate_cap < best_share - _EPS]
            else:
                capped = None
            if capped:
                rate = min(f.rate_cap for f in capped)  # type: ignore[type-var]
                frozen = [f for f in capped if f.rate_cap <= rate + _EPS]
            elif best_cap is not None:
                rate = best_share
                frozen = [f for f in best_cap.flows if f in unfrozen]
            else:  # pragma: no cover - every flow crosses >=1 capacity
                break
            for flow in frozen:
                flow.rate = rate
                unfrozen.discard(flow)
                for cap in flow.capacities:
                    r = residual_by_cap[cap] - rate
                    residual_by_cap[cap] = r if r > 0.0 else 0.0
                    load[cap] -= 1
            # Tie batching: components built from identical pipelines
            # (the HDFS replication ring at scale) leave *many*
            # capacities with bitwise-equal fair shares, and the loop
            # above would burn one full bottleneck scan per tied
            # capacity — O(C^2) per solve.  When the scan found exact
            # ties (and the fold reached the true minimum: near-ties
            # within _EPS disable the shortcut, preserving the
            # hysteresis semantics), consecutive rounds provably freeze
            # each tied capacity at the same ``best_share`` in scan
            # order, so they are executed here in one pass.  Any
            # ambiguity — a touched capacity landing at or below
            # ``m + _EPS``, a tie drifting off ``m`` — stops the batch
            # and returns to the exact fold, so the frozen rates are
            # bit-identical to the unbatched loop by construction.
            if (capped is None and not any_rate_cap and tie_count > 1
                    and best_share == run_min and unfrozen):
                m = best_share
                ties = []
                clean = True
                for cap, n in load.items():
                    if n <= 0:
                        continue
                    share = residual_by_cap[cap] / n
                    if share == m:
                        ties.append(cap)
                    elif not share > m + _EPS:
                        clean = False
                        break
                if clean:
                    for cap in ties:
                        n = load[cap]
                        if n <= 0:
                            # Fully frozen via a neighbour: the exact
                            # fold would skip it too.
                            continue
                        share = residual_by_cap[cap] / n
                        if share != m:
                            if share > m + _EPS:
                                # No longer the bottleneck: the fold
                                # would pass over it to the next tie.
                                continue
                            break  # ambiguous/below m: refold exactly
                        stop = False
                        for flow in [f for f in cap.flows
                                     if f in unfrozen]:
                            flow.rate = m
                            unfrozen.discard(flow)
                            for c2 in flow.capacities:
                                r = residual_by_cap[c2] - m
                                residual_by_cap[c2] = r if r > 0.0 else 0.0
                                n2 = load[c2] - 1
                                load[c2] = n2
                                if n2 > 0:
                                    s2 = residual_by_cap[c2] / n2
                                    if s2 != m and not s2 > m + _EPS:
                                        stop = True
                        if stop:
                            break
        changed: Set[Capacity] = set()
        for flow in component:
            if flow.rate != flow.prev_rate:
                changed.update(flow.capacities)
        if force:
            changed.update(force)
        return [cap for cap in load if cap in changed]

    def _update_finish(self, component, now: float) -> None:
        """Refresh the lazy finish-heap entries for solved flows."""
        heap = self._finish_heap
        inf = math.inf
        for flow in component:
            rate = flow.rate
            if rate > _EPS:
                finish = now + flow.remaining / rate
            elif flow.remaining <= _EPS:
                finish = now
            else:
                finish = inf
            if finish == inf:
                if flow.heap_finish != inf:
                    # Invalidate the previously pushed entry.
                    flow.rate_stamp += 1
                    flow.heap_finish = inf
            elif finish != flow.heap_finish:
                flow.rate_stamp += 1
                flow.heap_finish = finish
                heapq.heappush(heap, (finish, flow.id, flow, flow.rate_stamp))
            # else: the valid entry already in the heap has this exact
            # finish time — keep it instead of pushing a duplicate.

    def _refresh_wakeup(self) -> None:
        """Point the kernel wakeup at the earliest *valid* finish."""
        heap = self._finish_heap
        flows = self._flows
        while heap:
            finish, _fid, flow, stamp = heap[0]
            if stamp != flow.rate_stamp or flow not in flows:
                heapq.heappop(heap)  # stale entry
                continue
            # Most reallocations leave the earliest finish untouched;
            # skip the _set_wakeup call when the wakeup is already live
            # at exactly this time.
            if finish == self._wakeup_time:
                wakeup = self._wakeup
                if wakeup is not None and wakeup.callbacks is not None:
                    return
            self._set_wakeup(finish)
            return
        self._set_wakeup(math.inf)

    def _set_wakeup(self, when: float) -> None:
        if when == self._wakeup_time and self._wakeup is not None \
                and self._wakeup.callbacks is not None:
            return
        if self._wakeup is not None and self._wakeup.callbacks is not None:
            # Cancel the stale wakeup by clearing its callbacks; the kernel
            # skips events whose callback list is None.
            self._wakeup.callbacks = None
        self._wakeup = None
        self._wakeup_time = when
        if math.isinf(when):
            return
        evt = Event(self.sim)
        evt.callbacks.append(self._on_wakeup)
        self.sim._schedule(evt, max(0.0, when - self.sim.now), pre_triggered=True)
        self._wakeup = evt

    def _on_wakeup(self, _evt: Event) -> None:
        now = self.sim.now
        heap = self._finish_heap
        flows = self._flows
        finished: List[Flow] = []
        cutoff = now + 1e-9
        ff = self.fast_forward
        if ff is not None:
            # Fast-forward: also absorb completions due within the
            # relative tolerance, but never past the next independently
            # scheduled kernel event (nothing else can observe the
            # intermediate rates before it fires).
            horizon = now + ff * (now if now > 1.0 else 1.0)
            nxt = self.sim.peek()
            if nxt < horizon:
                horizon = nxt
            if horizon > cutoff:
                cutoff = horizon
        pop = heapq.heappop
        while heap:
            entry = heap[0]
            flow = entry[2]
            if entry[3] != flow.rate_stamp or flow not in flows:
                pop(heap)
                continue
            if entry[0] > cutoff:
                break
            pop(heap)
            finished.append(flow)
        # Duplicates in these lists are harmless: reallocation dedups
        # seeds, and the idle-record loop below is idempotent.
        released: List[Capacity] = []
        neighbours: List[Flow] = []
        ledger = self.bytes_by_capacity
        for flow in finished:
            dt = now - flow.last_update
            rem = flow.remaining - flow.rate * dt
            rem = rem if rem > 0.0 else 0.0
            if ff is not None and rem > 0.0:
                # Absorbed early by fast-forward: the residual bytes are
                # accounted as moved (the ledger uses flow.size); only
                # the completion timestamp is approximate.
                rem = 0.0
                self.fast_forwarded_count += 1
            flow.remaining = rem
            flow.last_update = now
            flows.discard(flow)
            # _drop_from_component, inlined (hot path).
            comp = flow.comp
            if comp is not None:
                cflows = comp.flows
                cflows.discard(flow)
                if len(cflows) > 1:
                    comp.dirty = True
                flow.comp = None
            size = flow.size
            for cap in flow.capacities:
                capflows = cap.flows
                capflows.discard(flow)
                released.append(cap)
                if capflows:
                    neighbours.extend(capflows)
                name = cap.name
                ledger[name] = ledger.get(name, 0.0) + size
            self.completed_count += 1
            self.total_bytes_moved += size
        # Reallocate the neighbourhoods that lost a competitor — one
        # batched pass over the distinct components (the final
        # _refresh_wakeup below covers the batch's heap updates).
        if neighbours:
            self._reallocate_many(neighbours, refresh=False)
        detail = self.trace_detail
        if detail == "full":
            for cap in released:
                if cap.last_rate != 0 and not cap.flows:
                    cap._record_rate(now, 0)
        elif detail == "coarse":
            for cap in released:
                if cap.last_rate != 0 and not cap.flows:
                    cap._record_coarse(now, 0)
        # Deliver completions after rates are consistent.
        hook = self.flow_hook
        if hook is not None:
            for flow in finished:
                hook(flow, now)
        for flow in finished:
            flow.done.succeed(now - flow.started_at)
        self._refresh_wakeup()

    def moved_bytes_by_capacity(self) -> Dict[str, float]:
        """Bytes moved across each capacity, including in-flight progress.

        For a completed flow every capacity it traversed carried all of
        ``flow.size`` bytes; active flows contribute the bytes drained so
        far, advanced to the current simulation time.  The result is what
        the integral of each capacity's throughput trace must equal —
        the flow byte-conservation invariant.
        """
        moved = dict(self.bytes_by_capacity)
        now = self.sim.now
        for flow in self._flows:
            progress = flow.size - flow.remaining
            dt = now - flow.last_update
            if dt > 0:
                progress = min(flow.size, progress + flow.rate * dt)
            if progress <= 0:
                continue
            for cap in flow.capacities:
                moved[cap.name] = moved.get(cap.name, 0.0) + progress
        return moved

    def assert_quiescent(self) -> None:
        """Raise if any flow is still active (used by tests)."""
        if self._flows:
            raise SimulationError(f"{len(self._flows)} flows still active")
