"""Fluid-flow model of shared bandwidth resources (disks, NIC links).

Bulk data movement in the cluster simulator is not modelled packet by
packet; instead each transfer is a *flow* with a remaining byte count
that drains at a rate determined by **progressive-filling max–min fair
sharing** across every capacity the flow traverses (e.g. the source
disk, the source NIC and the destination NIC).  This is the classical
fluid approximation used by datacenter simulators: whenever the set of
active flows changes, all flow rates are recomputed and the next flow
completion is rescheduled.

Max–min fair allocation: repeatedly find the most contended capacity,
give each of its unfrozen flows an equal share of its remaining
bandwidth, freeze those flows, and subtract what they consume
everywhere else.  The result is work-conserving and unique.

Each :class:`Capacity` records two traces: its *throughput* (bytes/s
currently allocated) and its *utilisation* (allocated / bandwidth, in
percent) — these become the "Disk util %", "I/O MiB/s" and
"Network MiB/s" panels of the paper's resource figures.  Tracing is
controlled by the scheduler's ``trace_detail``: ``"full"`` records every
rate change, ``"coarse"`` only busy/idle transitions, ``"off"`` nothing
— sweeps that need only durations skip the trace cost entirely.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Dict, List, Optional, Sequence, Set

from .simulation import Event, Simulation, SimulationError
from .trace import StepSeries

__all__ = ["Capacity", "Flow", "FluidScheduler", "TRACE_DETAIL_MODES"]

_EPS = 1e-12

#: Valid ``trace_detail`` settings, in decreasing order of fidelity.
TRACE_DETAIL_MODES = ("full", "coarse", "off")


class Capacity:
    """A shared bandwidth resource (one disk, one NIC direction, ...).

    ``contention_alpha`` models seek thrash on spinning disks: with
    ``n`` concurrent streams the device delivers only
    ``bandwidth / (1 + alpha * (n - 1))`` in aggregate.  Networks keep
    the default 0 (switches do not seek); single disks suffer badly —
    the mechanism behind the paper's slow, interference-ridden Tera
    Sort and Flink's pipelined-execution variance (§VI-C).
    """

    __slots__ = ("name", "bandwidth", "flows", "throughput", "utilisation",
                 "contention_alpha", "bw_high_water")

    def __init__(self, name: str, bandwidth: float,
                 contention_alpha: float = 0.0) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if contention_alpha < 0:
            raise ValueError("contention_alpha must be >= 0")
        self.name = name
        self.bandwidth = float(bandwidth)  # bytes / second
        #: Largest bandwidth this capacity ever had.  Fault injection
        #: rescales ``bandwidth`` mid-run; post-run trace audits bound
        #: throughput by the high-water mark, not the (possibly still
        #: degraded) final value.
        self.bw_high_water = float(bandwidth)
        self.contention_alpha = contention_alpha
        self.flows: Set["Flow"] = set()
        self.throughput = StepSeries()   # bytes/s allocated
        self.utilisation = StepSeries()  # percent of bandwidth

    def effective_bandwidth(self) -> float:
        n = len(self.flows)
        if n <= 1 or self.contention_alpha == 0.0:
            return self.bandwidth
        return self.bandwidth / (1.0 + self.contention_alpha * (n - 1))

    def _record(self, now: float) -> None:
        # The two appends are inlined (see StepSeries.append): this runs
        # once per touched capacity per reallocation and the call
        # overhead is measurable on large runs.  Timestamps are monotone
        # by construction (the scheduler always records at sim.now).
        flows = self.flows
        nf = len(flows)
        if nf == 1:
            # sum([x]) is 0 + x, which is exact for the non-negative
            # rates the solver produces — skip the list build.
            f, = flows
            rate = f.rate
        elif nf == 0:
            rate = sum(())  # int 0, matching the historical idle value
        else:
            rate = sum([f.rate for f in flows])
        series = self.throughput
        times = series.times
        values = series.values
        if times:
            if now == times[-1]:
                values[-1] = rate
            elif values[-1] != rate:
                times.append(now)
                values.append(rate)
            else:
                # Collapsed: the rate (and bandwidth) are unchanged since
                # the last record, so the utilisation append would collapse
                # to the same value too — skip computing it.
                return
        elif rate != series.initial:
            times.append(now)
            values.append(rate)
        else:
            return
        util = min(100.0, 100.0 * rate / self.bandwidth)
        series = self.utilisation
        times = series.times
        values = series.values
        if times:
            if now == times[-1]:
                values[-1] = util
            elif values[-1] != util:
                times.append(now)
                values.append(util)
        elif util != series.initial:
            times.append(now)
            values.append(util)

    def _record_coarse(self, now: float) -> None:
        """Trace only busy/idle transitions (``trace_detail="coarse"``)."""
        rate = sum([f.rate for f in self.flows])
        if (rate > 0.0) != (self.throughput.last_value > 0.0):
            self.throughput.append(now, rate)
            self.utilisation.append(
                now, min(100.0, 100.0 * rate / self.bandwidth))

    def __repr__(self) -> str:
        return f"Capacity({self.name!r}, bw={self.bandwidth:.3g}, flows={len(self.flows)})"


class _Component:
    """Cached connected component of the capacity/flow sharing graph.

    ``flows`` is exact while ``dirty`` is False.  Flow *arrivals* keep
    components exact (a new flow merges the components it bridges);
    flow *removals* may split a component, so they mark it dirty and the
    next reallocation re-derives the exact membership with one graph
    traversal instead of one per event.
    """

    __slots__ = ("flows", "dirty")

    def __init__(self, flows: Set["Flow"]) -> None:
        self.flows = flows
        self.dirty = False


class Flow:
    """A bulk transfer of ``size`` bytes across one or more capacities."""

    __slots__ = ("id", "size", "remaining", "capacities", "rate", "done",
                 "started_at", "last_update", "rate_cap", "rate_stamp",
                 "comp", "heap_finish")

    _ids = itertools.count()

    def __init__(self, size: float, capacities: Sequence[Capacity],
                 done: Event, now: float, rate_cap: Optional[float] = None) -> None:
        if size < 0:
            raise ValueError(f"flow size must be >= 0, got {size}")
        if not capacities:
            raise ValueError("flow must traverse at least one capacity")
        self.id = next(Flow._ids)
        self.size = float(size)
        self.remaining = float(size)
        self.capacities = tuple(capacities)
        self.rate = 0.0
        self.done = done
        self.started_at = now
        self.last_update = now
        # Optional per-flow cap (e.g. a single reader thread can not pull
        # faster than the producing pipeline emits).
        self.rate_cap = rate_cap
        # Bumped whenever a new finish-heap entry supersedes the old one;
        # stale heap entries carry an older stamp and are skipped.
        self.rate_stamp = 0
        #: Cached connected component this flow belongs to.
        self.comp: Optional[_Component] = None
        #: Finish time of this flow's current *valid* heap entry
        #: (``inf`` when it has none) — lets reallocations that do not
        #: change the finish estimate keep the existing entry instead of
        #: pushing a duplicate.
        self.heap_finish = math.inf

    def __repr__(self) -> str:
        return (f"Flow(#{self.id}, size={self.size:.3g}, "
                f"remaining={self.remaining:.3g}, rate={self.rate:.3g})")


class FluidScheduler:
    """Owns all active flows and keeps their completion events on time.

    Scalability: recomputing every flow on every change is O(F·R) per
    event and dominates large-cluster simulations.  Since most flows
    touch only the capacities of one node, rate changes propagate only
    within the *connected component* of the capacity/flow graph that
    the changed flow belongs to.  Components are cached (exact merge on
    arrival, lazy re-derivation after removals), completions are tracked
    with a lazy heap keyed by each flow's current finish estimate, and
    single-flow components take a closed-form fast path through the
    max–min solver.
    """

    def __init__(self, sim: Simulation, trace_detail: str = "full") -> None:
        if trace_detail not in TRACE_DETAIL_MODES:
            raise ValueError(
                f"trace_detail must be one of {TRACE_DETAIL_MODES}, "
                f"got {trace_detail!r}")
        self.sim = sim
        self.trace_detail = trace_detail
        self._flows: Set[Flow] = set()
        self._finish_heap: List = []  # (finish_time, flow_id, flow, rate_stamp)
        self._wakeup: Optional[Event] = None
        self._wakeup_time = math.inf
        self.completed_count = 0
        self.aborted_count = 0
        self.total_bytes_moved = 0.0
        #: Completed bytes per capacity name (conservation ledger).
        self.bytes_by_capacity: Dict[str, float] = {}
        #: Optional :class:`repro.validation.InvariantChecker`; when set,
        #: every max–min reallocation is audited for fairness on the spot.
        self.checker = None
        #: Optional callback ``(flow, now)`` invoked for every flow that
        #: completes, after rates are consistent but before completion
        #: events are delivered.  Used by the span tracer's flow-detail
        #: mode; it must only *read* the flow (no scheduling).
        self.flow_hook = None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def transfer(self, size: float, capacities: Sequence[Capacity],
                 rate_cap: Optional[float] = None) -> Event:
        """Start a flow; returns an event that fires when it completes."""
        if size < 0:
            raise ValueError(f"flow size must be >= 0, got {size}")
        done = Event(self.sim)
        if size <= _EPS:
            # Zero-byte transfers complete immediately (next kernel step).
            self.sim._schedule(done, 0.0)
            done.value = 0.0
            return done
        flow = Flow(size, capacities, done, self.sim.now, rate_cap)
        self._flows.add(flow)
        # An arriving flow bridges the components of every flow it now
        # shares a capacity with; if they are all exact, their union plus
        # the new flow is exactly the new component (no traversal).
        comps: Set[_Component] = set()
        clean = True
        for cap in flow.capacities:
            for f in cap.flows:
                c = f.comp
                comps.add(c)
                if c.dirty:
                    clean = False
        for cap in flow.capacities:
            cap.flows.add(flow)
        if clean and len(comps) <= 1:
            if comps:
                comp = comps.pop()
                comp.flows.add(flow)
            else:
                comp = _Component({flow})
            flow.comp = comp
            self._reallocate_component(flow, comp.flows)
        elif clean:
            # Merge into the largest neighbour component.
            big = max(comps, key=lambda c: len(c.flows))
            for c in comps:
                if c is big:
                    continue
                big.flows.update(c.flows)
                for f in c.flows:
                    f.comp = big
            big.flows.add(flow)
            flow.comp = big
            self._reallocate_component(flow, big.flows)
        else:
            # A neighbour component is stale; re-derive lazily.
            comp = _Component({flow})
            comp.dirty = True
            flow.comp = comp
            self._reallocate_component(flow)
        return done

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def flows_on(self, capacities: Sequence[Capacity]) -> List[Flow]:
        """Active flows crossing any of the given capacities (id order)."""
        hit = {f for cap in capacities for f in cap.flows}
        return sorted(hit, key=lambda f: f.id)

    def rescale_capacity(self, cap: Capacity, bandwidth: float) -> None:
        """Change a capacity's bandwidth *mid-run* (fault injection).

        Active flows crossing the capacity are immediately re-allocated
        at the new bandwidth — the fluid equivalent of a disk entering a
        degraded mode or a NIC being throttled.  Restoration is the same
        call with the original bandwidth.
        """
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        cap.bandwidth = float(bandwidth)
        cap.bw_high_water = max(cap.bw_high_water, cap.bandwidth)
        if cap.flows:
            self._reallocate_component(next(iter(cap.flows)))
        else:
            self._record_cap(cap, self.sim.now)

    def abort_flows(self, flows: Sequence[Flow],
                    error: BaseException) -> int:
        """Abort active flows: their ``done`` events *fail* with ``error``.

        Bytes already drained stay on the conservation ledger (the work
        physically happened before the fault); the remaining bytes are
        dropped.  Survivor flows sharing a capacity are re-allocated.
        Returns the number of flows actually aborted.
        """
        now = self.sim.now
        aborted: List[Flow] = []
        for flow in flows:
            if flow not in self._flows:
                continue
            dt = now - flow.last_update
            if dt > 0:
                flow.remaining = max(0.0, flow.remaining - flow.rate * dt)
            flow.last_update = now
            self._flows.discard(flow)
            self._drop_from_component(flow)
            progress = flow.size - flow.remaining
            for cap in flow.capacities:
                cap.flows.discard(flow)
                if progress > 0:
                    self.bytes_by_capacity[cap.name] = (
                        self.bytes_by_capacity.get(cap.name, 0.0) + progress)
            self.aborted_count += 1
            aborted.append(flow)
        # Survivors in the released neighbourhoods pick up the freed
        # bandwidth.
        seen: Set[Flow] = set()
        for flow in aborted:
            for cap in flow.capacities:
                for other in list(cap.flows):
                    if other in seen or other not in self._flows:
                        continue
                    component = self._component_for(other)
                    seen.update(component)
                    self._reallocate_component(other, component)
        for flow in aborted:
            for cap in flow.capacities:
                if not cap.flows:
                    self._record_cap(cap, now)
        for flow in aborted:
            if not flow.done.triggered:
                flow.done.fail(error)
        self._refresh_wakeup()
        return len(aborted)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _component_of(seed: Flow) -> Set[Flow]:
        """Flows transitively sharing a capacity with ``seed``."""
        flows: Set[Flow] = {seed}
        cap_stack = list(seed.capacities)
        seen_caps: Set[Capacity] = set(seed.capacities)
        while cap_stack:
            cap = cap_stack.pop()
            for f in cap.flows:
                if f not in flows:
                    flows.add(f)
                    for c in f.capacities:
                        if c not in seen_caps:
                            seen_caps.add(c)
                            cap_stack.append(c)
        return flows

    def _component_for(self, seed: Flow) -> Set[Flow]:
        """Exact component membership for ``seed``, via the cache."""
        comp = seed.comp
        if comp is not None and not comp.dirty:
            return comp.flows
        members = self._component_of(seed)
        fresh = _Component(members)
        for f in members:
            old = f.comp
            if old is not None and old is not fresh:
                old.flows.discard(f)
            f.comp = fresh
        return members

    @staticmethod
    def _drop_from_component(flow: Flow) -> None:
        """Remove a finished/aborted flow from its cached component."""
        comp = flow.comp
        if comp is None:
            return
        comp.flows.discard(flow)
        if len(comp.flows) > 1:
            # The removal may have split the component; membership is
            # re-derived on the next reallocation that touches it.
            comp.dirty = True
        flow.comp = None

    def _record_cap(self, cap: Capacity, now: float) -> None:
        detail = self.trace_detail
        if detail == "full":
            cap._record(now)
        elif detail == "coarse":
            cap._record_coarse(now)

    def _reallocate_component(self, seed: Flow,
                              component: Optional[Set[Flow]] = None) -> None:
        """Recompute rates/traces/finish estimates around ``seed``.

        One fused pass: drain every flow's remaining bytes up to now,
        run the progressive-filling max–min solver over the component,
        refresh finish-heap entries and record the touched capacities'
        traces.  ``component`` may be passed by callers that already
        resolved the exact membership, avoiding a second lookup.

        Single-flow components take a closed-form fast path: the lone
        flow gets the tightest of its capacities (each carries only this
        flow), bounded by its rate cap — the same arithmetic the general
        loop performs, without building the solver's working sets.
        """
        now = self.sim.now
        if component is None:
            component = self._component_for(seed)

        if len(component) == 1:
            flow, = component
            dt = now - flow.last_update
            if dt > 0:
                rem = flow.remaining - flow.rate * dt
                flow.remaining = rem if rem > 0.0 else 0.0
            flow.last_update = now
            # Iterate the raw capacities tuple: duplicates cannot change
            # a min and re-recording a capacity at the same instant
            # overwrites with the same value, so no set build is needed.
            touched = flow.capacities
            best_share = math.inf
            for cap in touched:
                # effective_bandwidth() inlined; exact components mean
                # every capacity here carries only this flow (n == 1).
                share = cap.bandwidth
                n = len(cap.flows)
                if n > 1 and cap.contention_alpha != 0.0:
                    share = share / (1.0 + cap.contention_alpha * (n - 1))
                if share < best_share - _EPS:
                    best_share = share
            rate_cap = flow.rate_cap
            if rate_cap is not None and rate_cap < best_share - _EPS:
                flow.rate = rate_cap
            else:
                flow.rate = best_share
        else:
            unfrozen: Set[Flow] = set(component)
            residual: Dict[Capacity, float] = {}
            load: Dict[Capacity, int] = {}
            any_rate_cap = False
            for flow in component:
                dt = now - flow.last_update
                if dt > 0:
                    rem = flow.remaining - flow.rate * dt
                    flow.remaining = rem if rem > 0.0 else 0.0
                flow.last_update = now
                flow.rate = 0.0
                if flow.rate_cap is not None:
                    any_rate_cap = True
                for cap in flow.capacities:
                    if cap not in load:
                        residual[cap] = cap.effective_bandwidth()
                        load[cap] = len(cap.flows)

            while unfrozen:
                # Find the bottleneck capacity: smallest fair share.
                best_cap = None
                best_share = math.inf
                for cap, n in load.items():
                    if n <= 0:
                        continue
                    share = residual[cap] / n
                    if share < best_share - _EPS:
                        best_share = share
                        best_cap = cap
                # Flow rate caps tighter than the fair share freeze first.
                if any_rate_cap:
                    capped = [f for f in unfrozen
                              if f.rate_cap is not None
                              and f.rate_cap < best_share - _EPS]
                else:
                    capped = None
                if capped:
                    rate = min(f.rate_cap for f in capped)  # type: ignore[type-var]
                    frozen = [f for f in capped if f.rate_cap <= rate + _EPS]
                elif best_cap is not None:
                    rate = best_share
                    frozen = [f for f in best_cap.flows if f in unfrozen]
                else:  # pragma: no cover - every flow crosses >=1 capacity
                    break
                for flow in frozen:
                    flow.rate = rate
                    unfrozen.discard(flow)
                    for cap in flow.capacities:
                        r = residual[cap] - rate
                        residual[cap] = r if r > 0.0 else 0.0
                        load[cap] -= 1
            touched = load  # keys == every capacity the component crosses

        if self.checker is not None:
            self.checker.check_max_min(self, component)

        heap = self._finish_heap
        inf = math.inf
        for flow in component:
            rate = flow.rate
            if rate > _EPS:
                finish = now + flow.remaining / rate
            elif flow.remaining <= _EPS:
                finish = now
            else:
                finish = inf
            if finish == inf:
                if flow.heap_finish != inf:
                    # Invalidate the previously pushed entry.
                    flow.rate_stamp += 1
                    flow.heap_finish = inf
            elif finish != flow.heap_finish:
                flow.rate_stamp += 1
                flow.heap_finish = finish
                heapq.heappush(heap, (finish, flow.id, flow, flow.rate_stamp))
            # else: the valid entry already in the heap has this exact
            # finish time — keep it instead of pushing a duplicate.
        detail = self.trace_detail
        if detail == "full":
            for cap in touched:
                cap._record(now)
        elif detail == "coarse":
            for cap in touched:
                cap._record_coarse(now)
        self._refresh_wakeup()

    def _refresh_wakeup(self) -> None:
        """Point the kernel wakeup at the earliest *valid* finish."""
        heap = self._finish_heap
        flows = self._flows
        while heap:
            finish, _fid, flow, stamp = heap[0]
            if stamp != flow.rate_stamp or flow not in flows:
                heapq.heappop(heap)  # stale entry
                continue
            # Most reallocations leave the earliest finish untouched;
            # skip the _set_wakeup call when the wakeup is already live
            # at exactly this time.
            if finish == self._wakeup_time:
                wakeup = self._wakeup
                if wakeup is not None and wakeup.callbacks is not None:
                    return
            self._set_wakeup(finish)
            return
        self._set_wakeup(math.inf)

    def _set_wakeup(self, when: float) -> None:
        if when == self._wakeup_time and self._wakeup is not None \
                and self._wakeup.callbacks is not None:
            return
        if self._wakeup is not None and self._wakeup.callbacks is not None:
            # Cancel the stale wakeup by clearing its callbacks; the kernel
            # skips events whose callback list is None.
            self._wakeup.callbacks = None
        self._wakeup = None
        self._wakeup_time = when
        if math.isinf(when):
            return
        evt = Event(self.sim)
        evt.callbacks.append(self._on_wakeup)
        self.sim._schedule(evt, max(0.0, when - self.sim.now), pre_triggered=True)
        self._wakeup = evt

    def _on_wakeup(self, _evt: Event) -> None:
        now = self.sim.now
        heap = self._finish_heap
        flows = self._flows
        finished: List[Flow] = []
        while heap:
            finish, _fid, flow, stamp = heap[0]
            if stamp != flow.rate_stamp or flow not in flows:
                heapq.heappop(heap)
                continue
            if finish > now + 1e-9:
                break
            heapq.heappop(heap)
            finished.append(flow)
        released: Set[Capacity] = set()
        neighbours: Set[Flow] = set()
        ledger = self.bytes_by_capacity
        for flow in finished:
            dt = now - flow.last_update
            rem = flow.remaining - flow.rate * dt
            flow.remaining = rem if rem > 0.0 else 0.0
            flow.last_update = now
            flows.discard(flow)
            self._drop_from_component(flow)
            size = flow.size
            for cap in flow.capacities:
                cap.flows.discard(flow)
                released.add(cap)
                neighbours.update(cap.flows)
                ledger[cap.name] = ledger.get(cap.name, 0.0) + size
            self.completed_count += 1
            self.total_bytes_moved += size
        # Reallocate the neighbourhoods that lost a competitor.
        seen: Set[Flow] = set()
        for flow in neighbours:
            if flow in seen or flow not in self._flows:
                continue
            component = self._component_for(flow)
            seen.update(component)
            self._reallocate_component(flow, component)
        detail = self.trace_detail
        if detail == "full":
            for cap in released:
                if not cap.flows:
                    cap._record(now)
        elif detail == "coarse":
            for cap in released:
                if not cap.flows:
                    cap._record_coarse(now)
        # Deliver completions after rates are consistent.
        hook = self.flow_hook
        if hook is not None:
            for flow in finished:
                hook(flow, now)
        for flow in finished:
            flow.done.succeed(now - flow.started_at)
        self._refresh_wakeup()

    def moved_bytes_by_capacity(self) -> Dict[str, float]:
        """Bytes moved across each capacity, including in-flight progress.

        For a completed flow every capacity it traversed carried all of
        ``flow.size`` bytes; active flows contribute the bytes drained so
        far, advanced to the current simulation time.  The result is what
        the integral of each capacity's throughput trace must equal —
        the flow byte-conservation invariant.
        """
        moved = dict(self.bytes_by_capacity)
        now = self.sim.now
        for flow in self._flows:
            progress = flow.size - flow.remaining
            dt = now - flow.last_update
            if dt > 0:
                progress = min(flow.size, progress + flow.rate * dt)
            if progress <= 0:
                continue
            for cap in flow.capacities:
                moved[cap.name] = moved.get(cap.name, 0.0) + progress
        return moved

    def assert_quiescent(self) -> None:
        """Raise if any flow is still active (used by tests)."""
        if self._flows:
            raise SimulationError(f"{len(self._flows)} flows still active")
