"""Cluster assembly: nodes + fluid scheduler + data-movement helpers.

:class:`Cluster` is the substrate every engine runs on.  It wires a
:class:`~repro.cluster.simulation.Simulation` kernel, a
:class:`~repro.cluster.fluid.FluidScheduler` and ``n`` identical
:class:`~repro.cluster.node.Node` objects, and exposes the three bulk
data movements the engines need:

* ``disk_read(node, bytes)``   — local sequential read;
* ``disk_write(node, bytes)``  — local sequential write;
* ``transfer(src, dst, bytes)``— a network flow crossing the source
  NIC-out and destination NIC-in (remote reads additionally cross the
  remote disk).

All return completion events, so engine processes simply ``yield`` them.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .fluid import Capacity, FluidScheduler
from .node import GRID5000_PARAVANCE, HardwareSpec, Node
from .simulation import Event, Simulation

__all__ = ["Cluster"]


class Cluster:
    """A homogeneous cluster of simulated nodes."""

    def __init__(self, num_nodes: int,
                 spec: HardwareSpec = GRID5000_PARAVANCE,
                 seed: int = 0, trace_detail: str = "full",
                 fast_forward: Optional[float] = None) -> None:
        if num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        self.sim = Simulation()
        self.fluid = FluidScheduler(self.sim, trace_detail=trace_detail,
                                    fast_forward=fast_forward)
        self.spec = spec
        self.nodes: List[Node] = [Node(self.sim, i, spec) for i in range(num_nodes)]
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        #: Set by :mod:`repro.faults` for fault-injected runs: a
        #: ``FaultState`` tracking node liveness, blacklists and degraded
        #: capacities.  ``None`` for ordinary (fault-free) deployments.
        self.fault_state = None
        #: Set by :mod:`repro.observability` for traced runs: a
        #: ``SpanTracer`` the engines and executor record their
        #: run/job/stage/operator/task windows into.  ``None`` (the
        #: default) keeps every hook site a single attribute check.
        self.tracer = None

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def total_cores(self) -> int:
        return self.spec.cores * self.num_nodes

    @property
    def now(self) -> float:
        return self.sim.now

    def node(self, index: int) -> Node:
        return self.nodes[index]

    # ------------------------------------------------------------------
    # bulk data movement
    # ------------------------------------------------------------------
    def disk_read(self, node: Node, nbytes: float,
                  rate_cap: Optional[float] = None) -> Event:
        """Sequential read of ``nbytes`` from the node's local disk."""
        return self.fluid.transfer(nbytes, [node.disk], rate_cap=rate_cap)

    def disk_write(self, node: Node, nbytes: float,
                   rate_cap: Optional[float] = None) -> Event:
        """Sequential write of ``nbytes`` to the node's local disk."""
        node.charge_disk_space(nbytes)
        return self.fluid.transfer(nbytes, [node.disk], rate_cap=rate_cap)

    def transfer(self, src: Node, dst: Node, nbytes: float,
                 rate_cap: Optional[float] = None) -> Event:
        """Move ``nbytes`` over the network from ``src`` to ``dst``.

        A same-node "transfer" is loopback and does not touch the NIC.
        """
        if src is dst:
            return self.fluid.transfer(0.0, [src.nic_out])
        return self.fluid.transfer(nbytes, [src.nic_out, dst.nic_in],
                                   rate_cap=rate_cap)

    def remote_disk_read(self, reader: Node, owner: Node, nbytes: float,
                         rate_cap: Optional[float] = None) -> Event:
        """Read ``nbytes`` stored on ``owner``'s disk from ``reader``.

        The flow crosses the remote disk and both NIC directions — the
        non-local HDFS read path.
        """
        if reader is owner:
            return self.disk_read(reader, nbytes, rate_cap=rate_cap)
        caps: Sequence[Capacity] = [owner.disk, owner.nic_out, reader.nic_in]
        return self.fluid.transfer(nbytes, caps, rate_cap=rate_cap)

    # ------------------------------------------------------------------
    # run control
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)

    def run_process(self, generator) -> "Event":
        """Spawn the generator as a process, run to completion, return it.

        Fault-injected runs stop the event loop the moment the process
        completes: fault timers scheduled beyond the end of the job must
        not advance the clock (they stay pending on the heap and fire
        during the next job, if any).
        """
        proc = self.sim.process(generator)
        if self.fault_state is not None:
            self.sim.run(until_event=proc)
        else:
            self.sim.run()
        if not proc.triggered:
            raise RuntimeError("cluster simulation stalled before the "
                               "process completed (deadlock?)")
        if not proc.ok:
            raise proc.value
        return proc

    def __repr__(self) -> str:
        return f"Cluster({self.num_nodes} nodes x {self.spec.cores} cores)"
