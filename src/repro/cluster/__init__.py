"""Discrete-event cluster substrate (the simulated Grid'5000 testbed).

This subpackage contains no framework logic at all: it is the hardware.
Engines (``repro.engines.spark`` / ``repro.engines.flink``) run on top
of it, HDFS (``repro.hdfs``) stores blocks in it, and the monitoring
layer (``repro.monitoring``) reads its resource traces.
"""

from .allocation import fractional_max_min, grant_integer_max_min
from .fluid import Capacity, Flow, FluidScheduler
from .memory import MemoryAccount, OutOfMemoryError
from .node import GRID5000_PARAVANCE, HardwareSpec, Node
from .resources import BufferPool, CorePool, InsufficientBuffersError
from .simulation import (AllOf, AnyOf, Event, Interrupt, Process, Simulation,
                         SimulationError, Timeout)
from .topology import Cluster
from .trace import StepSeries, merge_step_series

__all__ = [
    "AllOf", "AnyOf", "BufferPool", "Capacity", "Cluster", "CorePool",
    "Event", "Flow", "FluidScheduler", "GRID5000_PARAVANCE", "HardwareSpec",
    "InsufficientBuffersError", "Interrupt", "MemoryAccount", "Node",
    "OutOfMemoryError", "Process", "Simulation", "SimulationError",
    "StepSeries", "Timeout", "fractional_max_min",
    "grant_integer_max_min", "merge_step_series",
]
