"""Simulated cluster nodes with the Grid'5000 hardware profile.

The paper's testbed (§V): each node has 2× Intel Xeon E5-2630 v3
(8 cores per CPU, 16 total), 128 GB RAM, a single 558 GB disk drive and
10 Gbps Ethernet.  :class:`HardwareSpec` captures those constants and
:class:`Node` instantiates the corresponding simulated resources:

* ``cores``    — a :class:`~repro.cluster.resources.CorePool`;
* ``disk``     — one :class:`~repro.cluster.fluid.Capacity` shared by
  reads and writes (it is a single spindle/device);
* ``nic_in`` / ``nic_out`` — full-duplex NIC directions;
* ``memory``   — the physical RAM :class:`MemoryAccount` from which the
  frameworks carve their heaps.
"""

from __future__ import annotations

from dataclasses import dataclass

from .fluid import Capacity
from .memory import MemoryAccount
from .resources import CorePool
from .simulation import Simulation

__all__ = ["HardwareSpec", "GRID5000_PARAVANCE", "Node"]

MiB = 2**20
GiB = 2**30


@dataclass(frozen=True)
class HardwareSpec:
    """Static hardware description of one cluster node."""

    cores: int = 16
    memory_bytes: float = 128 * GiB
    disk_bytes: float = 558 * GiB
    # Sequential bandwidth of the single disk drive.  The paper's I/O
    # panels saturate around 120–150 MiB/s, consistent with one SATA
    # spindle.
    disk_read_bw: float = 150 * MiB
    disk_write_bw: float = 150 * MiB
    # 10 Gbps Ethernet, full duplex: 10e9 / 8 bytes per second per
    # direction (~1192 MiB/s), matching the network panels that peak
    # near 1200 MiB/s.
    nic_bw: float = 10e9 / 8
    # Seek thrash between concurrent sequential streams on the single
    # spindle (see Capacity.contention_alpha).
    disk_contention_alpha: float = 0.5

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("cores must be positive")
        for attr in ("memory_bytes", "disk_bytes", "disk_read_bw",
                     "disk_write_bw", "nic_bw"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")


#: The Grid'5000 *paravance*-class profile used throughout the paper.
GRID5000_PARAVANCE = HardwareSpec()


class Node:
    """One simulated machine: cores, one disk, a duplex NIC, RAM."""

    def __init__(self, sim: Simulation, index: int,
                 spec: HardwareSpec = GRID5000_PARAVANCE) -> None:
        self.sim = sim
        self.index = index
        self.name = f"node-{index:03d}"
        self.spec = spec
        self.cores = CorePool(sim, spec.cores, name=f"{self.name}.cpu")
        # Fluid view of the same CPUs: bandwidth is core-seconds per
        # second.  Engine phases model their compute as flows on this
        # capacity (rate-capped by their task slots), which composes
        # naturally with max-min sharing and yields the CPU% traces.
        self.cpu = Capacity(f"{self.name}.cpu", float(spec.cores))
        # One physical device: reads and writes contend on the same
        # capacity, which is what creates Flink's pipelined read/write
        # I/O interference in the Tera Sort experiments.
        self.disk = Capacity(f"{self.name}.disk",
                             min(spec.disk_read_bw, spec.disk_write_bw),
                             contention_alpha=spec.disk_contention_alpha)
        self.nic_in = Capacity(f"{self.name}.nic.in", spec.nic_bw)
        self.nic_out = Capacity(f"{self.name}.nic.out", spec.nic_bw)
        self.memory = MemoryAccount(sim, f"{self.name}.ram", spec.memory_bytes)
        # Bytes currently stored on the local disk (HDFS blocks, shuffle
        # files, spills); capacity enforcement is advisory.
        self.disk_used_bytes = 0.0

    def capacity_for(self, resource: str) -> Capacity:
        """Map a resource kind (``cpu``/``disk``/``nic_in``/``nic_out``)
        to its :class:`~repro.cluster.fluid.Capacity` — the hook fault
        injection uses to rescale bandwidths by name."""
        caps = {"cpu": self.cpu, "disk": self.disk,
                "nic_in": self.nic_in, "nic_out": self.nic_out}
        try:
            return caps[resource]
        except KeyError:
            raise ValueError(
                f"unknown resource {resource!r}; one of {sorted(caps)}"
            ) from None

    def baseline_bandwidth(self, resource: str) -> float:
        """The undegraded bandwidth of a resource, from the hardware spec."""
        return {
            "cpu": float(self.spec.cores),
            "disk": min(self.spec.disk_read_bw, self.spec.disk_write_bw),
            "nic_in": self.spec.nic_bw,
            "nic_out": self.spec.nic_bw,
        }[resource]

    def slow_down(self, factor: float) -> None:
        """Turn this node into a straggler: CPU and disk deliver only
        ``1/factor`` of their bandwidth.  Call before running work (the
        fluid scheduler reads bandwidths when flows are (re)allocated).

        Stragglers are the classic failure mode of barriered execution
        (paper §VII's blocked-time discussion): a staged engine waits
        for the slow node at every barrier, a pipelined engine only at
        the end.
        """
        if factor < 1.0:
            raise ValueError("slow_down factor must be >= 1")
        self.cpu.bandwidth /= factor
        self.disk.bandwidth /= factor

    def charge_disk_space(self, nbytes: float) -> None:
        self.disk_used_bytes += nbytes

    def free_disk_space(self, nbytes: float) -> None:
        self.disk_used_bytes = max(0.0, self.disk_used_bytes - nbytes)

    def __repr__(self) -> str:
        return f"Node({self.name})"
