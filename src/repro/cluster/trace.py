"""Step-function time series used for all simulated resource metrics.

Every resource in the cluster simulator (CPU core pools, fluid bandwidth
capacities, memory accounts) records its state changes as a
:class:`StepSeries`: a piecewise-constant function of simulated time.
The monitoring layer later resamples these series onto a uniform grid to
produce the CPU% / disk util% / MiB/s plots from the paper.

The representation is two parallel ``array('d')`` buffers (``times``,
``values``), with ``values[i]`` holding between ``times[i]`` (inclusive)
and ``times[i+1]`` (exclusive).  Compact C-double storage (8 bytes per
point instead of a 24+-byte boxed float per list slot) with the same
amortized-doubling append keeps 1000-node runs — millions of recorded
points across ~5000 capacities — inside cache-friendly memory, at an
API indistinguishable from the former plain lists (indexing, slicing,
``bisect``, iteration all behave identically; stored values are the
same IEEE-754 doubles CPython floats are).  Appends must be monotone in
time; appending at an existing last timestamp overwrites the last
value, which is what a resource wants when several state changes happen
at the same simulated instant.
"""

from __future__ import annotations

import bisect
import math
from array import array
from typing import Iterable, Iterator, List, Sequence, Tuple

__all__ = ["StepSeries", "merge_step_series", "check_series_bounds"]


class StepSeries:
    """A piecewise-constant time series with monotone timestamps."""

    __slots__ = ("times", "values", "initial")

    def __init__(self, initial: float = 0.0) -> None:
        self.times = array("d")
        self.values = array("d")
        self.initial = float(initial)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def append(self, time: float, value: float) -> None:
        """Record that the series takes ``value`` from ``time`` onwards."""
        if self.times:
            last = self.times[-1]
            if time < last:
                raise ValueError(
                    f"StepSeries appends must be monotone: {time} < {last}"
                )
            if time == last:
                self.values[-1] = value
                return
            if self.values[-1] == value:
                # Collapse runs of equal values to keep the series compact.
                return
        elif value == self.initial:
            return
        self.times.append(time)
        self.values.append(value)

    def extend(self, points: Iterable[Tuple[float, float]]) -> None:
        for t, v in points:
            self.append(t, v)

    def __len__(self) -> int:
        return len(self.times)

    def __bool__(self) -> bool:  # a series with no change points is still valid
        return True

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(zip(self.times, self.values))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def value_at(self, time: float) -> float:
        """Value of the step function at ``time``."""
        idx = bisect.bisect_right(self.times, time) - 1
        if idx < 0:
            return self.initial
        return self.values[idx]

    @property
    def last_value(self) -> float:
        return self.values[-1] if self.values else self.initial

    @property
    def last_time(self) -> float:
        return self.times[-1] if self.times else 0.0

    def integral(self, start: float, end: float) -> float:
        """Integral of the series over ``[start, end]``."""
        if end < start:
            raise ValueError(f"end {end} < start {start}")
        if end == start:
            return 0.0
        total = 0.0
        prev_t = start
        prev_v = self.value_at(start)
        lo = bisect.bisect_right(self.times, start)
        for i in range(lo, len(self.times)):
            t = self.times[i]
            if t >= end:
                break
            total += prev_v * (t - prev_t)
            prev_t, prev_v = t, self.values[i]
        total += prev_v * (end - prev_t)
        return total

    def mean(self, start: float, end: float) -> float:
        """Time-weighted mean over ``[start, end]`` (0 for empty interval)."""
        if end <= start:
            return 0.0
        return self.integral(start, end) / (end - start)

    def maximum(self, start: float, end: float) -> float:
        """Maximum value attained anywhere in ``[start, end]``."""
        best = self.value_at(start)
        lo = bisect.bisect_right(self.times, start)
        for i in range(lo, len(self.times)):
            if self.times[i] > end:
                break
            if self.values[i] > best:
                best = self.values[i]
        return best

    def sample(self, start: float, end: float, step: float) -> Tuple[list, list]:
        """Resample onto a uniform grid, averaging within each bucket.

        Returns ``(grid_times, bucket_means)`` where ``grid_times[i]`` is the
        left edge of bucket ``i``.  Averaging (rather than point sampling)
        matches how monitoring agents such as *dstat* report utilisation.

        Single pass over the change points: the scan index only moves
        forward across buckets (grid lefts are non-decreasing), so the
        whole resample is O(points + buckets) instead of paying a bisect
        plus a fresh scan per bucket.  The per-bucket arithmetic mirrors
        :meth:`integral`/:meth:`mean` operation for operation, so the
        results are bit-identical to the naive per-bucket evaluation.
        """
        if step <= 0:
            raise ValueError("step must be positive")
        n = max(1, math.ceil((end - start) / step))
        grid = [start + i * step for i in range(n)]
        times = self.times
        values = self.values
        npts = len(times)
        means: List[float] = []
        idx = 0  # == bisect_right(times, bucket_left), maintained forward
        for left in grid:
            while idx < npts and times[idx] <= left:
                idx += 1
            right = left + step
            if right > end:
                right = end
            if right <= left:
                means.append(0.0)
                continue
            total = 0.0
            prev_t = left
            prev_v = values[idx - 1] if idx > 0 else self.initial
            i = idx
            while i < npts:
                t = times[i]
                if t >= right:
                    break
                total += prev_v * (t - prev_t)
                prev_t = t
                prev_v = values[i]
                i += 1
            total += prev_v * (right - prev_t)
            means.append(total / (right - left))
        return grid, means


def check_series_bounds(
    series: StepSeries,
    name: str,
    lower: float = 0.0,
    upper: float = math.inf,
    tolerance: float = 1e-9,
) -> List[str]:
    """Check every point of ``series`` lies in ``[lower, upper]``.

    Returns violation strings (at most one per bound) rather than
    raising, so callers can aggregate them across many resources.
    Timestamps are also checked for monotonicity — :meth:`StepSeries.append`
    enforces it, but direct list manipulation could break it.
    """
    problems: List[str] = []
    span = max(abs(lower), abs(upper)) if math.isfinite(upper) else abs(lower)
    slack = tolerance * max(1.0, span)
    low_hit = next((v for v in series.values if v < lower - slack), None)
    if low_hit is not None:
        problems.append(f"{name}: value {low_hit} < lower bound {lower}")
    if math.isfinite(upper):
        high_hit = next((v for v in series.values if v > upper + slack), None)
        if high_hit is not None:
            problems.append(f"{name}: value {high_hit} > upper bound {upper}")
    for i in range(1, len(series.times)):
        if series.times[i] < series.times[i - 1]:
            problems.append(f"{name}: timestamps not monotone at index {i}")
            break
    return problems


def merge_step_series(
    series: Sequence[StepSeries],
    start: float,
    end: float,
    step: float,
) -> Tuple[list, list]:
    """Resample several series on a common grid and sum them per bucket.

    Used to aggregate a metric across the nodes of a cluster (e.g. total
    disk I/O MiB/s) the same way the paper plots "aggregated values of all
    nodes".
    """
    if not series:
        return [], []
    grids = [s.sample(start, end, step) for s in series]
    times = grids[0][0]
    summed = [0.0] * len(times)
    for _, means in grids:
        for i, v in enumerate(means):
            summed[i] += v
    return times, summed
