"""Memory accounting for simulated nodes.

The paper attributes several findings to memory behaviour: Spark jobs
die when the working set exceeds the configured heap fractions, Flink
operators spill to disk and survive with little memory — except the
delta-iteration CoGroup whose in-memory solution set destroys the JVM
on the Large graph (Table VII).  Garbage-collection overhead grows with
heap occupancy.

:class:`MemoryAccount` is a hierarchical reservation ledger: a node has
one *physical* account, and each framework carves sub-accounts out of
it (Spark: storage / shuffle fractions of the executor heap; Flink: JVM
heap vs managed memory, on- or off-heap).  Reservations either succeed,
spill (caller's choice) or raise :class:`OutOfMemoryError`.
"""

from __future__ import annotations

from typing import List, Optional

from .simulation import Simulation, SimulationError
from .trace import StepSeries

__all__ = ["MemoryAccount", "OutOfMemoryError"]


class OutOfMemoryError(SimulationError):
    """A reservation exceeded the account's capacity."""

    def __init__(self, account: "MemoryAccount", requested: float) -> None:
        super().__init__(
            f"out of memory in {account.path}: requested "
            f"{requested / 2**30:.2f} GiB, free {account.free / 2**30:.2f} GiB "
            f"of {account.capacity / 2**30:.2f} GiB")
        self.account = account
        self.requested = requested


class MemoryAccount:
    """A named memory budget with optional parent accounting."""

    def __init__(self, sim: Simulation, name: str, capacity: float,
                 parent: Optional["MemoryAccount"] = None) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = float(capacity)
        self.parent = parent
        self.used = 0.0
        self.peak = 0.0
        self.usage = StepSeries()
        self.children: List["MemoryAccount"] = []
        if parent is not None:
            parent.children.append(self)

    @property
    def path(self) -> str:
        if self.parent is None:
            return self.name
        return f"{self.parent.path}/{self.name}"

    @property
    def free(self) -> float:
        return self.capacity - self.used

    @property
    def occupancy(self) -> float:
        """Fraction of capacity in use (0..1)."""
        if self.capacity == 0:
            return 1.0 if self.used > 0 else 0.0
        return self.used / self.capacity

    # ------------------------------------------------------------------
    def sub_account(self, name: str, capacity: float) -> "MemoryAccount":
        """Carve a child budget out of this account.

        Child capacities may oversubscribe the parent (like JVM settings
        can); actual reservations are charged to the whole chain, so the
        first exhausted ancestor wins.
        """
        return MemoryAccount(self.sim, name, capacity, parent=self)

    def reserve(self, amount: float) -> None:
        """Reserve ``amount`` bytes here and in every ancestor, or raise."""
        if amount < 0:
            raise ValueError(f"reserve amount must be >= 0, got {amount}")
        chain = self._chain()
        for acct in chain:
            if acct.used + amount > acct.capacity * (1.0 + 1e-9):
                raise OutOfMemoryError(acct, amount)
        for acct in chain:
            acct._apply(amount)

    def try_reserve(self, amount: float) -> bool:
        """Like :meth:`reserve` but returns False instead of raising."""
        try:
            self.reserve(amount)
            return True
        except OutOfMemoryError:
            return False

    def release(self, amount: float) -> None:
        if amount < 0:
            raise ValueError(f"release amount must be >= 0, got {amount}")
        for acct in self._chain():
            # Accumulated float drift across many reserve/release pairs
            # can leave `used` a few ULPs short of the exact sum.  The
            # drift scales with the *largest* value the account has held
            # (one ULP of 128 GiB is ~2e-5 bytes), not the current one,
            # and grows with the number of operations — a ppm of the
            # release is still far below any real accounting bug.
            tolerance = max(1e-6, acct.peak * 1e-9, amount * 1e-6)
            if amount > acct.used + tolerance:
                raise SimulationError(
                    f"{acct.path}: releasing {amount} > {acct.used} used")
            acct._apply(-min(amount, acct.used))

    def release_all(self) -> None:
        """Release everything charged directly to this account."""
        if self.used > 0:
            self.release(self.used)

    # ------------------------------------------------------------------
    def _chain(self) -> List["MemoryAccount"]:
        chain = []
        acct: Optional[MemoryAccount] = self
        while acct is not None:
            chain.append(acct)
            acct = acct.parent
        return chain

    def _apply(self, delta: float) -> None:
        self.used = max(0.0, self.used + delta)
        self.peak = max(self.peak, self.used)
        self.usage.append(self.sim.now, self.used)

    def audit(self, tolerance: float = 1.0) -> List[str]:
        """Check accounting invariants on this subtree.

        Returns a list of human-readable violation strings (empty when
        the subtree is consistent):

        * ``0 <= used <= capacity`` (within ``tolerance`` bytes);
        * ``used`` never exceeded ``peak``;
        * the parent charge covers the direct children: because every
          reservation is charged to the whole ancestor chain, a parent's
          ``used`` must be at least the sum of its children's.
        * the usage trace never went negative or above capacity.
        """
        problems: List[str] = []
        if self.used < -tolerance:
            problems.append(f"{self.path}: used {self.used} < 0")
        if self.used > self.capacity + tolerance:
            problems.append(
                f"{self.path}: used {self.used} > capacity {self.capacity}")
        if self.used > self.peak + tolerance:
            problems.append(
                f"{self.path}: used {self.used} > peak {self.peak}")
        if self.children:
            child_sum = sum(c.used for c in self.children)
            if child_sum > self.used + tolerance + 1e-9 * max(self.peak, 1.0):
                problems.append(
                    f"{self.path}: children hold {child_sum} > {self.used} "
                    f"charged to parent")
        for _t, v in self.usage:
            if v < -tolerance or v > self.capacity + tolerance:
                problems.append(
                    f"{self.path}: usage trace value {v} outside "
                    f"[0, {self.capacity}]")
                break
        for child in self.children:
            problems.extend(child.audit(tolerance))
        return problems

    def occupancy_series_percent(self) -> StepSeries:
        """Usage as percent-of-capacity (for "Memory %" figure panels)."""
        out = StepSeries()
        if self.capacity == 0:
            return out
        for t, v in self.usage:
            out.append(t, 100.0 * v / self.capacity)
        return out

    def __repr__(self) -> str:
        return (f"MemoryAccount({self.path!r}, "
                f"{self.used / 2**30:.2f}/{self.capacity / 2**30:.2f} GiB)")
