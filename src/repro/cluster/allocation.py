"""Integer max-min allocation of whole nodes among concurrent jobs.

The fluid scheduler (:mod:`repro.cluster.fluid`) divides *bandwidth*
among flows continuously; the cluster scheduler
(:mod:`repro.scheduler`) divides *nodes* among jobs, and nodes only
come in whole units — an executor either runs on a machine or it does
not.  This module provides the discrete counterpart of progressive
filling: grant one node at a time, always to the unsaturated demand
with the smallest grant so far (ties broken by lowest index).

That discrete water-filling produces the canonical integer max-min
allocation: sorting by grant keeps every consumer within **one node**
of the exact fractional max-min share (the "within one task-granule"
invariant the scheduler property tests pin), it is work-conserving
(capacity is left over only when every demand is met), and it never
exceeds a demand.  Determinism is total — no randomness, ties by
index — so allocations are digest-stable.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence

__all__ = ["fractional_max_min", "grant_integer_max_min"]


def _validate(demands: Sequence[int], capacity: int) -> None:
    if capacity < 0:
        raise ValueError(f"capacity must be >= 0, got {capacity}")
    for i, d in enumerate(demands):
        if d < 0:
            raise ValueError(f"demand #{i} must be >= 0, got {d}")


def fractional_max_min(demands: Sequence[float],
                       capacity: float) -> List[float]:
    """Exact (continuous) max-min shares of ``capacity``.

    The classical water-filling solution: repeatedly split the
    remaining capacity equally among unsaturated demands, freezing any
    demand the equal share would exceed.  Used as the oracle the
    integer allocator is audited against.
    """
    if capacity < 0:
        raise ValueError(f"capacity must be >= 0, got {capacity}")
    shares = [0.0] * len(demands)
    remaining = float(capacity)
    active = [i for i, d in enumerate(demands) if d > 0]
    # Saturate demands in ascending order; at most len(demands) rounds.
    for i, d in enumerate(demands):
        if d < 0:
            raise ValueError(f"demand #{i} must be >= 0, got {d}")
    while active and remaining > 0:
        fair = remaining / len(active)
        frozen = [i for i in active if demands[i] <= fair]
        if not frozen:
            for i in active:
                shares[i] = fair
            return shares
        for i in frozen:
            shares[i] = float(demands[i])
            remaining -= float(demands[i])
        active = [i for i in active if i not in set(frozen)]
        if remaining <= 0:
            remaining = 0.0
    return shares


def grant_integer_max_min(demands: Sequence[int],
                          capacity: int) -> List[int]:
    """Integer max-min grants: whole-node water filling.

    Grants nodes one at a time; each unit goes to the consumer with
    the smallest grant so far among those still below their demand,
    ties broken by lowest index.  Properties (property-tested in
    ``tests/scheduler/test_allocation.py``):

    * ``0 <= grant[i] <= demands[i]`` for every consumer;
    * ``sum(grants) == min(capacity, sum(demands))`` (work conserving);
    * ``|grant[i] - fractional_max_min(demands, capacity)[i]| <= 1``
      (within one node of the exact fair share).
    """
    _validate(demands, capacity)
    grants = [0] * len(demands)
    heap = [(0, i) for i, d in enumerate(demands) if d > 0]
    heapq.heapify(heap)
    units = min(capacity, sum(demands))
    while units > 0 and heap:
        grant, i = heapq.heappop(heap)
        grants[i] = grant + 1
        units -= 1
        if grants[i] < demands[i]:
            heapq.heappush(heap, (grants[i], i))
    return grants
