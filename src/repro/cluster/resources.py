"""Discrete-capacity resources: CPU core pools and bounded buffer pools.

A :class:`CorePool` models the execution cores of one node: tasks
request a core, hold it for a computed duration and release it.  The
pool records a busy-core :class:`~repro.cluster.trace.StepSeries` which
the monitoring layer turns into the CPU % panels of the paper's
figures.

A :class:`BufferPool` models Flink's network buffer pool: a counted
semaphore whose exhaustion behaviour (block vs fail) is configurable —
the paper reports failed executions when ``flink.nw.buffers`` was too
small for the parallelism and workflow operators.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from .simulation import Event, Simulation, SimulationError
from .trace import StepSeries

__all__ = ["CorePool", "BufferPool", "InsufficientBuffersError"]


class InsufficientBuffersError(SimulationError):
    """Raised when a buffer pool is exhausted and configured to fail."""


class CorePool:
    """A pool of identical execution cores with FIFO admission."""

    def __init__(self, sim: Simulation, cores: int, name: str = "cpu") -> None:
        if cores <= 0:
            raise ValueError(f"cores must be positive, got {cores}")
        self.sim = sim
        self.cores = cores
        self.name = name
        self.busy = 0
        self.busy_series = StepSeries()
        self.utilisation = StepSeries()  # percent
        self._waiters: Deque[Event] = deque()
        self.total_acquisitions = 0

    # ------------------------------------------------------------------
    def acquire(self) -> Event:
        """Request one core; the returned event fires when granted."""
        evt = self.sim.event()
        if self.busy < self.cores:
            self._grant(evt)
        else:
            self._waiters.append(evt)
        return evt

    def release(self) -> None:
        """Return one core to the pool, waking the oldest waiter."""
        if self.busy <= 0:
            raise SimulationError(f"{self.name}: release without acquire")
        if self._waiters:
            # Hand the core directly to the next waiter: busy stays equal.
            evt = self._waiters.popleft()
            self.total_acquisitions += 1
            self.sim._schedule(evt, 0.0)
        else:
            self.busy -= 1
            self._record()

    def run(self, duration: float):
        """Generator helper: hold one core for ``duration`` seconds.

        Usage inside a process: ``yield from pool.run(t)``.
        """
        yield self.acquire()
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release()

    # ------------------------------------------------------------------
    def _grant(self, evt: Event) -> None:
        self.busy += 1
        self.total_acquisitions += 1
        self._record()
        self.sim._schedule(evt, 0.0)

    def _record(self) -> None:
        now = self.sim.now
        self.busy_series.append(now, self.busy)
        self.utilisation.append(now, 100.0 * self.busy / self.cores)

    @property
    def available(self) -> int:
        return self.cores - self.busy

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def audit(self) -> list:
        """Return invariant-violation strings (empty when consistent)."""
        problems = []
        if not 0 <= self.busy <= self.cores:
            problems.append(
                f"{self.name}: busy {self.busy} outside [0, {self.cores}]")
        if self.busy and self._waiters and self.busy < self.cores:
            problems.append(
                f"{self.name}: {len(self._waiters)} tasks queued while "
                f"{self.available} cores idle (not work-conserving)")
        for _t, v in self.busy_series:
            if not 0 <= v <= self.cores:
                problems.append(
                    f"{self.name}: busy trace value {v} outside "
                    f"[0, {self.cores}]")
                break
        return problems

    def __repr__(self) -> str:
        return f"CorePool({self.name!r}, {self.busy}/{self.cores} busy)"


class BufferPool:
    """A counted pool of fixed-size buffers (Flink network buffers)."""

    def __init__(self, sim: Simulation, count: int, buffer_bytes: int,
                 name: str = "nw-buffers", fail_on_exhaustion: bool = True) -> None:
        if count <= 0:
            raise ValueError(f"buffer count must be positive, got {count}")
        self.sim = sim
        self.count = count
        self.buffer_bytes = buffer_bytes
        self.name = name
        self.in_use = 0
        self.fail_on_exhaustion = fail_on_exhaustion
        self.peak_in_use = 0
        self._waiters: Deque[Tuple[Event, int]] = deque()
        self.usage = StepSeries()

    @property
    def capacity_bytes(self) -> int:
        return self.count * self.buffer_bytes

    def acquire(self, n: int = 1) -> Event:
        """Take ``n`` buffers; fails (or blocks) when exhausted."""
        evt = self.sim.event()
        if n > self.count and self.fail_on_exhaustion:
            raise InsufficientBuffersError(
                f"{self.name}: requested {n} buffers but pool holds only "
                f"{self.count}; increase the configured buffer count")
        if self.in_use + n <= self.count:
            self._take(n)
            self.sim._schedule(evt, 0.0)
        elif self.fail_on_exhaustion:
            raise InsufficientBuffersError(
                f"{self.name}: pool exhausted ({self.in_use}/{self.count} "
                f"in use, {n} requested)")
        else:
            self._waiters.append((evt, n))
        return evt

    def release(self, n: int = 1) -> None:
        if n > self.in_use:
            raise SimulationError(f"{self.name}: releasing {n} > {self.in_use} in use")
        self.in_use -= n
        self.usage.append(self.sim.now, self.in_use)
        while self._waiters and self.in_use + self._waiters[0][1] <= self.count:
            evt, need = self._waiters.popleft()
            self._take(need)
            self.sim._schedule(evt, 0.0)

    def _take(self, n: int) -> None:
        self.in_use += n
        self.peak_in_use = max(self.peak_in_use, self.in_use)
        self.usage.append(self.sim.now, self.in_use)

    def audit(self) -> list:
        """Return invariant-violation strings (empty when consistent)."""
        problems = []
        if not 0 <= self.in_use <= self.count:
            problems.append(
                f"{self.name}: in_use {self.in_use} outside [0, {self.count}]")
        if self.peak_in_use > self.count:
            problems.append(
                f"{self.name}: peak_in_use {self.peak_in_use} > {self.count}")
        for _t, v in self.usage:
            if not 0 <= v <= self.count:
                problems.append(
                    f"{self.name}: usage trace value {v} outside "
                    f"[0, {self.count}]")
                break
        return problems

    def __repr__(self) -> str:
        return f"BufferPool({self.name!r}, {self.in_use}/{self.count})"
