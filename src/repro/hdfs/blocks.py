"""HDFS block and file metadata.

A file is a sequence of fixed-size blocks (the last one may be short);
each block has a list of replica locations (node indices).  Block size
is a first-class experiment parameter in the paper (``HDFS.block.size``
is 256 MB for Word Count / Grep and 1024 MB for Tera Sort).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

__all__ = ["Block", "HdfsFile"]


@dataclass(frozen=True)
class Block:
    """One HDFS block: ``replicas[0]`` is the primary location."""

    block_id: int
    size: float
    replicas: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"block size must be >= 0, got {self.size}")
        if not self.replicas:
            raise ValueError("block must have at least one replica")
        if len(set(self.replicas)) != len(self.replicas):
            raise ValueError(f"duplicate replica nodes: {self.replicas}")

    def is_local_to(self, node_index: int) -> bool:
        return node_index in self.replicas


@dataclass
class HdfsFile:
    """Metadata for one file in the simulated HDFS namespace."""

    name: str
    size: float
    block_size: float
    blocks: List[Block] = field(default_factory=list)

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def blocks_local_to(self, node_index: int) -> List[Block]:
        return [b for b in self.blocks if b.is_local_to(node_index)]

    def __repr__(self) -> str:
        return (f"HdfsFile({self.name!r}, {self.size / 2**30:.2f} GiB, "
                f"{self.num_blocks} blocks)")
