"""The HDFS facade: datanode I/O on top of the cluster substrate.

:class:`HDFS` combines a :class:`~repro.hdfs.namenode.NameNode` with the
:class:`~repro.cluster.topology.Cluster` to provide the two data paths
the engines use:

* :meth:`read_block` — local replica → one disk flow; remote replica →
  remote disk + both NIC directions (the classic non-local HDFS read);
* :meth:`write_bytes` — write-pipeline: a local disk write plus
  ``replication - 1`` concurrent network transfers each ending in a
  remote disk write.

All methods return kernel events so engine processes can ``yield`` them.
"""

from __future__ import annotations

from typing import Optional

from ..cluster.simulation import Event
from ..cluster.topology import Cluster
from .blocks import Block, HdfsFile
from .namenode import NameNode

__all__ = ["HDFS"]

MiB = 2**20


class HDFS:
    """A simulated HDFS deployment co-located with the compute cluster."""

    def __init__(self, cluster: Cluster, block_size: float = 256 * MiB,
                 replication: int = 3, seed: int = 0) -> None:
        self.cluster = cluster
        self.namenode = NameNode(cluster.num_nodes, block_size=block_size,
                                 replication=replication, seed=seed)
        self.bytes_read = 0.0
        self.bytes_written = 0.0
        self.remote_reads = 0
        self.local_reads = 0

    # ------------------------------------------------------------------
    # namespace passthrough
    # ------------------------------------------------------------------
    @property
    def block_size(self) -> float:
        return self.namenode.block_size

    @property
    def replication(self) -> int:
        return self.namenode.replication

    def create_file(self, name: str, size: float) -> HdfsFile:
        f = self.namenode.create_file(name, size)
        for block in f.blocks:
            for node_index in block.replicas:
                self.cluster.node(node_index).charge_disk_space(block.size)
        return f

    def lookup(self, name: str) -> HdfsFile:
        return self.namenode.lookup(name)

    def exists(self, name: str) -> bool:
        return self.namenode.exists(name)

    def delete(self, name: str) -> None:
        f = self.namenode.delete(name)
        for block in f.blocks:
            for node_index in block.replicas:
                self.cluster.node(node_index).free_disk_space(block.size)

    # ------------------------------------------------------------------
    # data paths
    # ------------------------------------------------------------------
    def read_block(self, reader_index: int, block: Block,
                   rate_cap: Optional[float] = None) -> Event:
        """Read one block from the nearest replica."""
        reader = self.cluster.node(reader_index)
        self.bytes_read += block.size
        if block.is_local_to(reader_index):
            self.local_reads += 1
            return self.cluster.disk_read(reader, block.size, rate_cap=rate_cap)
        self.remote_reads += 1
        owner = self.cluster.node(block.replicas[0])
        return self.cluster.remote_disk_read(reader, owner, block.size,
                                             rate_cap=rate_cap)

    def read_bytes(self, reader_index: int, nbytes: float, local: bool = True,
                   owner_index: Optional[int] = None,
                   rate_cap: Optional[float] = None) -> Event:
        """Read a byte range without block bookkeeping (aggregate path)."""
        reader = self.cluster.node(reader_index)
        self.bytes_read += nbytes
        if local or owner_index is None or owner_index == reader_index:
            self.local_reads += 1
            return self.cluster.disk_read(reader, nbytes, rate_cap=rate_cap)
        self.remote_reads += 1
        owner = self.cluster.node(owner_index)
        return self.cluster.remote_disk_read(reader, owner, nbytes,
                                             rate_cap=rate_cap)

    def write_bytes(self, writer_index: int, nbytes: float,
                    rate_cap: Optional[float] = None,
                    replication: Optional[int] = None) -> Event:
        """Write ``nbytes`` through the HDFS replication pipeline.

        The local disk write and the replica transfers proceed
        concurrently (HDFS pipelines block packets); the returned event
        fires when every replica is durable.  ``replication`` overrides
        the filesystem default (e.g. TeraSort output at replication 1).
        """
        writer = self.cluster.node(writer_index)
        repl = self.replication if replication is None else max(1, replication)
        repl = min(repl, self.cluster.num_nodes)
        self.bytes_written += nbytes * repl
        # The whole pipeline starts at one instant: batch the flows into
        # a single fluid solve (bit-identical to per-flow starts).
        writer.charge_disk_space(nbytes)
        requests = [(nbytes, (writer.disk,), rate_cap)]
        # Deterministic replica targets: next nodes in ring order.
        for r in range(1, repl):
            target_index = (writer_index + r) % self.cluster.num_nodes
            target = self.cluster.node(target_index)
            if target is writer:
                continue
            requests.append((nbytes, (writer.nic_out, target.nic_in),
                             rate_cap))
            target.charge_disk_space(nbytes)
            requests.append((nbytes, (target.disk,), rate_cap))
        events = self.cluster.fluid.transfer_many(requests)
        return self.cluster.sim.all_of(events)
