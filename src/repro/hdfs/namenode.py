"""Namenode: the HDFS namespace and block-placement policy.

Placement follows the HDFS default policy shape: the first replica goes
to a rotating "writer" node, the remaining replicas to distinct other
nodes chosen deterministically from a seeded RNG.  (The paper's
clusters sit in one Grid'5000 site, so there is no rack dimension.)
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from .blocks import Block, HdfsFile

__all__ = ["NameNode", "FileExistsInNamespaceError", "FileNotFoundInNamespaceError"]

MiB = 2**20


class FileExistsInNamespaceError(ValueError):
    pass


class FileNotFoundInNamespaceError(KeyError):
    pass


class NameNode:
    """Namespace + placement decisions for a simulated HDFS instance."""

    def __init__(self, num_nodes: int, block_size: float = 256 * MiB,
                 replication: int = 3, seed: int = 0) -> None:
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self.num_nodes = num_nodes
        self.block_size = float(block_size)
        self.replication = min(replication, num_nodes)
        self.files: Dict[str, HdfsFile] = {}
        self._rng = np.random.default_rng(seed)
        self._next_block_id = 0
        self._next_writer = 0
        # Per-primary candidate arrays for replica placement, built
        # lazily: every block with the same primary draws from the same
        # "all nodes but the primary" population, so rebuilding the list
        # (and converting it to an ndarray inside ``rng.choice``) per
        # block is pure overhead on large files.
        self._others: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    def create_file(self, name: str, size: float) -> HdfsFile:
        """Register a file and place its blocks; no simulated time passes.

        The paper excludes dataset import from measured execution time
        ("we import the analyzed dataset" before the runs), so creation
        is a pure metadata operation.
        """
        if name in self.files:
            raise FileExistsInNamespaceError(f"file exists: {name}")
        if size < 0:
            raise ValueError(f"file size must be >= 0, got {size}")
        f = HdfsFile(name=name, size=float(size), block_size=self.block_size)
        full_blocks = int(size // self.block_size)
        tail = size - full_blocks * self.block_size
        sizes = [self.block_size] * full_blocks + ([tail] if tail > 0 else [])
        for bsize in sizes:
            f.blocks.append(self._place_block(bsize))
        self.files[name] = f
        return f

    def _place_block(self, size: float) -> Block:
        primary = self._next_writer % self.num_nodes
        self._next_writer += 1
        others = self._others.get(primary)
        if others is None:
            others = np.array([i for i in range(self.num_nodes)
                               if i != primary])
            self._others[primary] = others
        extra = []
        if self.replication > 1 and len(others):
            k = min(self.replication - 1, len(others))
            extra = list(self._rng.choice(others, size=k, replace=False))
        block = Block(block_id=self._next_block_id, size=size,
                      replicas=tuple([primary] + [int(i) for i in extra]))
        self._next_block_id += 1
        return block

    # ------------------------------------------------------------------
    def lookup(self, name: str) -> HdfsFile:
        try:
            return self.files[name]
        except KeyError:
            raise FileNotFoundInNamespaceError(name) from None

    def exists(self, name: str) -> bool:
        return name in self.files

    def delete(self, name: str) -> HdfsFile:
        return self.files.pop(name)

    def total_bytes(self) -> float:
        return sum(f.size for f in self.files.values())

    def bytes_stored_on(self, node_index: int) -> float:
        """Physical bytes (all replicas) stored on one datanode."""
        total = 0.0
        for f in self.files.values():
            for b in f.blocks:
                if node_index in b.replicas:
                    total += b.size
        return total

    def locality_map(self, name: str) -> Dict[int, List[Block]]:
        """node index -> blocks with a local replica, for task scheduling."""
        f = self.lookup(name)
        out: Dict[int, List[Block]] = {i: [] for i in range(self.num_nodes)}
        for block in f.blocks:
            for node in block.replicas:
                out[node].append(block)
        return out

    def assign_blocks_to_readers(self, name: str) -> List[Tuple[int, Block, bool]]:
        """Greedy locality-aware assignment of each block to a reader node.

        Returns ``(reader_node, block, is_local)`` triples balancing load
        across nodes, preferring nodes that hold a replica — the same
        goal as the Hadoop input-split scheduler.
        """
        f = self.lookup(name)
        load = [0] * self.num_nodes
        out: List[Tuple[int, Block, bool]] = []
        target = math.ceil(len(f.blocks) / self.num_nodes)
        for block in f.blocks:
            local_candidates = [n for n in block.replicas if load[n] < target]
            if local_candidates:
                reader = min(local_candidates, key=lambda n: load[n])
                is_local = True
            else:
                reader = min(range(self.num_nodes), key=lambda n: load[n])
                is_local = reader in block.replicas
            load[reader] += 1
            out.append((reader, block, is_local))
        return out
