"""Simulated HDFS 2.7: namespace, block placement and datanode I/O."""

from .blocks import Block, HdfsFile
from .filesystem import HDFS
from .namenode import (FileExistsInNamespaceError,
                       FileNotFoundInNamespaceError, NameNode)

__all__ = ["Block", "HDFS", "HdfsFile", "NameNode",
           "FileExistsInNamespaceError", "FileNotFoundInNamespaceError"]
