"""Resilience sweeps: slowdown / availability versus fault rate.

The paper measured fault-free runs; its §II architecture comparison
(Spark lineage re-execution vs Flink 0.10 full-pipeline restart) only
*matters* when nodes actually fail.  A resilience sweep quantifies
that: for each engine and workload it raises the per-node fault rate
and records

* **slowdown** — faulted duration / fault-free baseline duration, and
* **availability** — the fraction of trials that still completed
  (a run "dies" when the restart budget or retry budget is exhausted,
  or an OOM is not retryable),

producing the slowdown-vs-rate and availability-vs-rate curves of
``fig19``.  Every cell is deterministic: the stochastic model compiles
to a seeded :class:`~repro.faults.plan.FaultPlan` before any
simulation runs, so the whole figure is digest-pinned and
bit-identical at any ``--jobs`` value.

The campaign layer is *itself* resilient: cells run under
:func:`~repro.harness.parallel.robust_map` (per-trial timeout, bounded
retry, graceful degradation — a crashed or hung worker fails only its
own cell, recorded as an explicit gap), and a
:class:`~repro.harness.checkpoint.CheckpointStore` journals every
finished cell so a killed campaign resumes with ``--resume`` and
reproduces the uninterrupted digests exactly.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..config.presets import (ExperimentConfig, GiB, kmeans_preset,
                              small_graph_preset, terasort_preset,
                              wordcount_grep_preset)
from ..harness.checkpoint import CheckpointStore
from ..harness.parallel import TaskFailure, robust_map
from ..validation.digest import digest_payload
from ..validation.invariants import strict_enabled
from ..workloads import (ConnectedComponents, Grep, KMeans, PageRank,
                         TeraSort, WordCount)
from ..workloads.base import Workload
from ..workloads.datagen.graphs import SMALL_GRAPH
from .stochastic import StochasticFaultModel

__all__ = ["ResilienceCell", "ResilienceCurve", "ResilienceFigure",
           "campaign_fingerprint", "default_workloads", "resilience_sweep"]

#: Test hook: wall-clock seconds to sleep per cell (stretches campaign
#: wall time for the kill-and-resume tests without touching any
#: simulated value).
ENV_DELAY = "REPRO_RESILIENCE_DELAY"

ENGINES = ("flink", "spark")


def default_workloads(nodes: int = 8
                      ) -> List[Tuple[str, Workload, ExperimentConfig]]:
    """The paper's six workloads at resilience-sweep scale.

    Small enough that a full two-engine, multi-rate campaign runs in
    CI; large enough that every workload keeps its multi-stage /
    iterative structure (the thing recovery cost depends on).
    """
    graph_cfg = small_graph_preset(nodes)
    return [
        ("wordcount", WordCount(total_bytes=nodes * 4 * GiB),
         wordcount_grep_preset(nodes)),
        ("grep", Grep(total_bytes=nodes * 4 * GiB),
         wordcount_grep_preset(nodes)),
        ("terasort",
         TeraSort(nodes * 2 * GiB,
                  num_partitions=terasort_preset(
                      nodes).flink.default_parallelism),
         terasort_preset(nodes)),
        ("kmeans", KMeans(total_bytes=2 * nodes * GiB, iterations=5),
         kmeans_preset(nodes)),
        ("pagerank",
         PageRank(SMALL_GRAPH, iterations=5,
                  edge_partitions=graph_cfg.spark.edge_partitions),
         graph_cfg),
        ("connected-components",
         ConnectedComponents(SMALL_GRAPH, iterations=5,
                             edge_partitions=graph_cfg.spark.edge_partitions),
         graph_cfg),
    ]


# ----------------------------------------------------------------------
# cells
# ----------------------------------------------------------------------
@dataclass
class ResilienceCell:
    """One data point: engine x workload x fault rate x trial."""

    engine: str
    workload: str
    nodes: int
    rate: float
    trial: int
    seed: int
    plan_digest: str = ""
    plan_events: int = 0
    success: bool = False
    baseline_seconds: float = math.nan
    faulted_seconds: float = math.nan
    retries: int = 0
    restarts: int = 0
    crashes: int = 0
    failure: Optional[str] = None
    #: Harness-level gap: the cell's worker crashed, hung or raised —
    #: nothing was simulated, so the curves must not treat it as an
    #: engine failure.
    gap: bool = False
    gap_detail: Optional[str] = None

    @property
    def slowdown(self) -> float:
        if not self.success or self.baseline_seconds <= 0:
            return math.nan
        return self.faulted_seconds / self.baseline_seconds

    def payload(self) -> Dict[str, Any]:
        return {
            "engine": self.engine, "workload": self.workload,
            "nodes": self.nodes, "rate": self.rate, "trial": self.trial,
            "seed": self.seed, "plan_digest": self.plan_digest,
            "plan_events": self.plan_events, "success": self.success,
            "baseline_seconds": self.baseline_seconds,
            "faulted_seconds": self.faulted_seconds,
            "retries": self.retries, "restarts": self.restarts,
            "crashes": self.crashes, "failure": self.failure,
            "gap": self.gap, "gap_detail": self.gap_detail,
        }

    @staticmethod
    def from_payload(payload: Dict[str, Any]) -> "ResilienceCell":
        return ResilienceCell(**payload)


def _cell_task(engine: str, workload: Workload, config: ExperimentConfig,
               workload_name: str, rate: float, trial: int, seed: int,
               stragglers: int, strict: bool) -> Dict[str, Any]:
    """Run one resilience cell; module-level and JSON-in/out so it fans
    across worker processes and journals into a checkpoint store."""
    from ..faults import FlinkRestartPolicy, RetryPolicy, run_with_faults
    from ..harness.runner import run_once
    delay = float(os.environ.get(ENV_DELAY, "0") or 0)
    if delay > 0:
        time.sleep(delay)
    model = StochasticFaultModel.from_rate(rate).with_(
        stragglers=stragglers)
    plan = model.compile(seed, config.nodes)
    baseline = run_once(engine, workload, config, seed=seed, strict=strict)
    if not baseline.success:
        raise RuntimeError(
            f"fault-free baseline failed for {engine}/{workload_name}: "
            f"{baseline.failure}")
    cell = ResilienceCell(
        engine=engine, workload=workload_name, nodes=config.nodes,
        rate=rate, trial=trial, seed=seed, plan_digest=plan.digest(),
        plan_events=len(plan.events),
        baseline_seconds=baseline.duration)
    faulted = run_with_faults(
        engine, workload, config, plan, seed=seed,
        retry_policy=RetryPolicy(), restart_policy=FlinkRestartPolicy(),
        strict=strict, baseline=baseline)
    cell.success = faulted.success
    cell.faulted_seconds = faulted.faulted_duration
    cell.retries = faulted.retry_attempts
    cell.restarts = len(faulted.restarts)
    cell.crashes = len(faulted.timeline.of_kind("node_crash"))
    cell.failure = faulted.result.failure
    return cell.payload()


# ----------------------------------------------------------------------
# curves
# ----------------------------------------------------------------------
@dataclass
class ResilienceCurve:
    """Slowdown / availability versus fault rate for one engine+workload."""

    engine: str
    workload: str
    rates: List[float]
    #: Mean slowdown over the trials that completed, per rate (NaN when
    #: none did).
    slowdowns: List[float]
    #: Fraction of *simulated* trials that completed, per rate (gaps —
    #: harness failures — are excluded from the denominator).
    availability: List[float]

    def describe(self) -> str:
        points = []
        for rate, slow, avail in zip(self.rates, self.slowdowns,
                                     self.availability):
            s = "-" if math.isnan(slow) else f"{slow:.2f}x"
            points.append(f"rate {rate:g}: {s} @{100 * avail:.0f}%")
        return (f"{self.engine:5s} {self.workload:20s} "
                f"{'; '.join(points)}")


@dataclass
class ResilienceFigure:
    """The fig19 artefact: cells plus explicit campaign gaps."""

    figure_id: str
    title: str
    nodes: int
    rates: List[float]
    trials: int
    cells: List[ResilienceCell]
    #: Harness-level failures (worker crash / hang / exception), one
    #: per unfinished cell — the campaign's explicit gap report.
    gaps: List[ResilienceCell] = field(default_factory=list)

    def curves(self) -> List[ResilienceCurve]:
        groups: Dict[Tuple[str, str], List[ResilienceCell]] = {}
        order: List[Tuple[str, str]] = []
        for cell in self.cells:
            key = (cell.engine, cell.workload)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(cell)
        out = []
        for engine, workload in order:
            cells = groups[(engine, workload)]
            slowdowns, availability = [], []
            for rate in self.rates:
                at_rate = [c for c in cells if c.rate == rate and not c.gap]
                ok = [c.slowdown for c in at_rate if c.success]
                slowdowns.append(sum(ok) / len(ok) if ok else math.nan)
                availability.append(
                    len(ok) / len(at_rate) if at_rate else math.nan)
            out.append(ResilienceCurve(
                engine=engine, workload=workload, rates=list(self.rates),
                slowdowns=slowdowns, availability=availability))
        return out

    def describe(self) -> str:
        lines = [self.title]
        lines.extend(f"  {curve.describe()}" for curve in self.curves())
        if self.gaps:
            lines.append(f"  GAPS: {len(self.gaps)} cell(s) not simulated "
                         f"(harness failures):")
            lines.extend(f"    {g.engine}/{g.workload} rate={g.rate:g} "
                         f"trial={g.trial}: {g.gap_detail}"
                         for g in self.gaps)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# the campaign
# ----------------------------------------------------------------------
def resilience_sweep(
        workloads: Optional[Sequence[Tuple[str, Workload,
                                           ExperimentConfig]]] = None,
        engines: Sequence[str] = ENGINES,
        rates: Sequence[float] = (0.0, 0.5, 1.0, 2.0),
        trials: int = 1, nodes: int = 8, seed: int = 0,
        stragglers: int = 0,
        strict: Optional[bool] = None, jobs: Optional[int] = None,
        timeout: Optional[float] = None, retries: int = 1,
        backoff: float = 0.5,
        checkpoint: Optional[CheckpointStore] = None,
        figure_id: str = "fig19") -> ResilienceFigure:
    """Run the full resilience campaign and assemble the figure.

    One cell per (workload, engine, rate, trial), all independent and
    deterministic, fanned out via :func:`robust_map`: a cell whose
    worker raises, crashes or exceeds ``timeout`` is retried up to
    ``retries`` times and then reported as an explicit gap — the
    campaign always completes.  ``checkpoint`` journals finished cells;
    pass a resumed store to continue a killed campaign (gap cells are
    *not* journaled, so they are re-attempted on resume).
    """
    if workloads is None:
        workloads = default_workloads(nodes)
    strict_flag = strict_enabled(strict)
    labels: List[Tuple[str, str, float, int, int]] = []
    tasks = []
    for name, workload, config in workloads:
        for engine in engines:
            for rate in rates:
                for trial in range(trials):
                    cell_seed = seed + 1000 * trial
                    labels.append((engine, name, rate, trial, cell_seed))
                    tasks.append((engine, workload, config, name, rate,
                                  trial, cell_seed, stragglers,
                                  strict_flag))
    keys = [digest_payload({
        "figure_id": figure_id, "engine": e, "workload": w, "rate": r,
        "trial": t, "seed": s, "nodes": nodes, "stragglers": stragglers,
    }) for e, w, r, t, s in labels]

    pending = list(range(len(tasks)))
    results: List[Optional[Dict[str, Any]]] = [None] * len(tasks)
    if checkpoint is not None:
        pending = []
        for i, key in enumerate(keys):
            if key in checkpoint:
                results[i] = checkpoint.load(key)
            else:
                pending.append(i)

    failures: List[TaskFailure] = []
    if pending:
        def _journal(pending_pos: int, payload: Dict[str, Any]) -> None:
            if checkpoint is not None:
                checkpoint.save(keys[pending[pending_pos]], payload)

        fresh, failures = robust_map(
            _cell_task, [tasks[i] for i in pending], jobs=jobs,
            timeout=timeout, retries=retries, backoff=backoff,
            on_result=_journal)
        for pos, result in zip(pending, fresh):
            results[pos] = result

    cells: List[ResilienceCell] = []
    gaps: List[ResilienceCell] = []
    failed = {pending[f.index]: f for f in failures}
    for i, (engine, name, rate, trial, cell_seed) in enumerate(labels):
        if results[i] is not None:
            cells.append(ResilienceCell.from_payload(results[i]))
            continue
        failure = failed.get(i)
        gap = ResilienceCell(
            engine=engine, workload=name, nodes=nodes, rate=rate,
            trial=trial, seed=cell_seed, gap=True,
            gap_detail=(failure.describe() if failure is not None
                        else "missing result"))
        cells.append(gap)
        gaps.append(gap)
    return ResilienceFigure(
        figure_id=figure_id,
        title=(f"Resilience under sustained fault rates ({nodes} nodes, "
               f"rates per node per run)"),
        nodes=nodes, rates=list(rates), trials=trials, cells=cells,
        gaps=gaps)


def campaign_fingerprint(figure_id: str, engines: Sequence[str],
                         workload_names: Sequence[str],
                         rates: Sequence[float], trials: int, nodes: int,
                         seed: int, stragglers: int = 0) -> Dict[str, Any]:
    """The identity payload a checkpoint store pins for a campaign."""
    return {
        "figure_id": figure_id, "engines": list(engines),
        "workloads": list(workload_names), "rates": list(rates),
        "trials": trials, "nodes": nodes, "seed": seed,
        "stragglers": stragglers,
    }
