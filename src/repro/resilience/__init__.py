"""Stochastic resilience engine (builds on :mod:`repro.faults`).

PR 2 gave the simulator deterministic single-event fault injection;
this package adds what sustained operation actually looks like:

* :mod:`repro.resilience.stochastic` — per-node Poisson (MTTF) fault
  arrivals and persistent stragglers, compiled by seed into ordinary
  deterministic :class:`~repro.faults.plan.FaultPlan` data;
* :mod:`repro.resilience.sweep` — the resilience campaign: slowdown
  and availability versus per-node fault rate, for both engines across
  the six workloads (``fig19``), run under the crash-safe harness
  (checkpointed cells, per-trial timeouts, bounded retries, explicit
  gaps instead of campaign aborts).

See ``docs/resilience.md`` for the model and the resume semantics.
"""

from .stochastic import StochasticFaultModel, straggler_plan
from .sweep import (ResilienceCell, ResilienceCurve, ResilienceFigure,
                    campaign_fingerprint, default_workloads,
                    resilience_sweep)

__all__ = [
    "ResilienceCell",
    "ResilienceCurve",
    "ResilienceFigure",
    "StochasticFaultModel",
    "campaign_fingerprint",
    "default_workloads",
    "resilience_sweep",
    "straggler_plan",
]
