"""Stochastic fault-arrival processes, compiled to deterministic plans.

PR 2's :class:`~repro.faults.plan.FaultPlan` injects hand-placed
events; resilience curves need *sustained failure rates*.  This module
models each node as a renewal process: faults arrive per-node with
exponentially distributed inter-arrival times (a Poisson process),
which is the classic MTTF model — a node whose mean time to failure is
``M`` baseline-durations has arrival rate ``lambda = 1 / M`` faults per
run.

The crucial property is that the randomness lives entirely in
**compilation**: :meth:`StochasticFaultModel.compile` consumes a seed
and emits an ordinary relative :class:`FaultPlan` (pure data, absolute
times after :meth:`~repro.faults.plan.FaultPlan.resolve`).  Same seed
=> same compiled plan => same plan digest => same simulated run, which
is what makes resilience sweeps replayable, digest-pinned and
bit-identical under ``REPRO_JOBS > 1``.

Persistent stragglers are the second ingredient: a straggler is not an
*event* but a *condition* — a node that delivers a fraction of its
bandwidth for the whole run (the paper's hardware heterogeneity remark,
and the scenario Spark's speculative execution exists for).  They
compile to permanent ``DiskSlowdown`` + ``NicSlowdown`` events at t=0.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

import numpy as np

from ..faults.plan import (DiskSlowdown, FaultEvent, FaultPlan,
                           NetworkPartition, NicSlowdown, NodeCrash)

__all__ = ["StochasticFaultModel", "straggler_plan"]

#: Relative event times are capped strictly below 1.0 (a relative
#: FaultPlan requires fractions of the baseline in [0, 1)); arrivals
#: drawn beyond the window simply never fire during the run.
_WINDOW_END = 0.999


def straggler_plan(seed: int, num_nodes: int, count: int = 1,
                   factor: float = 4.0) -> FaultPlan:
    """``count`` persistently slow nodes (disk *and* NIC at
    ``1/factor`` bandwidth for the entire run), chosen by seed.

    Stragglers interact very differently with the two engines: Spark
    can speculatively re-execute a straggler's tasks elsewhere, while a
    Flink 0.10 pipeline runs at the pace of its slowest stage — the
    contrast the resilience figure is designed to expose.
    """
    if count < 0:
        raise ValueError(f"straggler count must be >= 0, got {count}")
    if count > num_nodes:
        raise ValueError(
            f"cannot make {count} of {num_nodes} node(s) stragglers")
    rng = np.random.default_rng(seed)
    slow = sorted(int(i) for i in
                  rng.choice(num_nodes, size=count, replace=False))
    events: List[FaultEvent] = []
    for node in slow:
        events.append(DiskSlowdown(at=0.0, node=node, factor=factor,
                                   duration=None))
        events.append(NicSlowdown(at=0.0, node=node, factor=factor,
                                  duration=None))
    return FaultPlan(events=tuple(events), relative=True)


@dataclass(frozen=True)
class StochasticFaultModel:
    """Per-node Poisson fault arrivals plus persistent stragglers.

    Rates are *expected events per node per baseline run*; an MTTF of
    ``M`` baseline-durations is ``crash_rate = 1 / M``.  All durations
    and delays are fractions of the baseline, so one model transfers
    across workloads and scales (the same convention as relative
    :class:`FaultPlan` events).
    """

    #: Expected node crashes per node per baseline run (1 / MTTF).
    crash_rate: float = 0.0
    #: Expected transient disk/NIC slowdowns per node per run.
    slowdown_rate: float = 0.0
    #: Expected transient network partitions per node per run.
    partition_rate: float = 0.0
    #: Machine-return delay after a crash, as a baseline fraction
    #: (None = the machine never comes back; 0.0 = bare process kill).
    restart_after: Optional[float] = 0.05
    #: Transient slowdown severity range (bandwidth divisor).
    slowdown_factor: Tuple[float, float] = (2.0, 8.0)
    #: Transient slowdown duration range (baseline fractions).
    slowdown_duration: Tuple[float, float] = (0.05, 0.25)
    #: Partition duration range (baseline fractions).
    partition_duration: Tuple[float, float] = (0.02, 0.10)
    #: Persistently slow nodes for the whole run.
    stragglers: int = 0
    straggler_factor: float = 4.0

    def validate(self) -> None:
        for name in ("crash_rate", "slowdown_rate", "partition_rate"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.restart_after is not None and self.restart_after < 0:
            raise ValueError("restart_after must be >= 0 or None")
        for name in ("slowdown_factor", "slowdown_duration",
                     "partition_duration"):
            lo, hi = getattr(self, name)
            if not 0 < lo <= hi:
                raise ValueError(f"{name} must satisfy 0 < lo <= hi")
        if self.stragglers < 0:
            raise ValueError("stragglers must be >= 0")
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor must be >= 1")

    @property
    def total_rate(self) -> float:
        """Expected fault events per node per baseline run."""
        return self.crash_rate + self.slowdown_rate + self.partition_rate

    @staticmethod
    def from_rate(rate: float, mix: Tuple[float, float, float]
                  = (0.5, 0.35, 0.15), **kwargs) -> "StochasticFaultModel":
        """Split one aggregate fault rate into the default kind mix
        (crashes / transient slowdowns / partitions)."""
        if rate < 0:
            raise ValueError(f"fault rate must be >= 0, got {rate}")
        total = sum(mix)
        if total <= 0 or any(m < 0 for m in mix):
            raise ValueError(f"invalid kind mix {mix}")
        return StochasticFaultModel(
            crash_rate=rate * mix[0] / total,
            slowdown_rate=rate * mix[1] / total,
            partition_rate=rate * mix[2] / total, **kwargs)

    def with_(self, **kwargs) -> "StochasticFaultModel":
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    def _arrivals(self, rng: np.random.Generator, rate: float
                  ) -> List[float]:
        """Poisson arrival times in [0, 1): exponential gaps at
        ``rate`` events per unit window, truncated at the window end."""
        if rate <= 0:
            return []
        times: List[float] = []
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / rate))
            if t >= _WINDOW_END:
                return times
            times.append(t)

    def compile(self, seed: int, num_nodes: int) -> FaultPlan:
        """Draw one realisation of the process as a relative plan.

        Deterministic: one ``default_rng(seed)`` stream consumed in a
        fixed order (stragglers, then nodes in index order, each node's
        kinds in a fixed order), so the same ``(model, seed,
        num_nodes)`` always compiles to a byte-identical plan.
        """
        self.validate()
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        rng = np.random.default_rng(seed)
        events: List[FaultEvent] = []
        if self.stragglers:
            slow = sorted(int(i) for i in rng.choice(
                num_nodes, size=self.stragglers, replace=False))
            for node in slow:
                events.append(DiskSlowdown(
                    at=0.0, node=node, factor=self.straggler_factor,
                    duration=None))
                events.append(NicSlowdown(
                    at=0.0, node=node, factor=self.straggler_factor,
                    duration=None))
        for node in range(num_nodes):
            for at in self._arrivals(rng, self.crash_rate):
                events.append(NodeCrash(at=at, node=node,
                                        restart_after=self.restart_after))
            for at in self._arrivals(rng, self.slowdown_rate):
                lo, hi = self.slowdown_factor
                factor = float(rng.uniform(lo, hi))
                dlo, dhi = self.slowdown_duration
                duration = float(rng.uniform(dlo, dhi))
                kind = DiskSlowdown if rng.integers(0, 2) == 0 \
                    else NicSlowdown
                events.append(kind(at=at, node=node, factor=factor,
                                   duration=duration))
            for at in self._arrivals(rng, self.partition_rate):
                dlo, dhi = self.partition_duration
                events.append(NetworkPartition(
                    at=at, node=node,
                    duration=float(rng.uniform(dlo, dhi))))
        return FaultPlan(events=tuple(events), relative=True)

    def describe(self) -> str:
        mttf = ("inf" if self.crash_rate <= 0
                else f"{1.0 / self.crash_rate:.2f}")
        return (f"stochastic fault model: crash rate "
                f"{self.crash_rate:.3f}/node/run (MTTF {mttf} runs), "
                f"slowdowns {self.slowdown_rate:.3f}, partitions "
                f"{self.partition_rate:.3f}, {self.stragglers} "
                f"straggler(s) at 1/{self.straggler_factor:g} bandwidth")
