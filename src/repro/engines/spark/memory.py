"""Spark's static memory manager and block-manager cache model.

Spark 1.5 divides each executor heap statically:
``spark.storage.memoryFraction`` for cached RDD blocks,
``spark.shuffle.memoryFraction`` for shuffle buffers, and the remainder
for task execution (user objects).  The paper's §VIII observes that
Spark "requires that (significant) parts of the data be on the JVM's
heap for several operations; if the size of the heap is not sufficient,
the job dies" — modelled here by :meth:`SparkMemoryModel.check_task_working_set`
— and that heaps crowded with objects suffer garbage-collection
overhead — modelled by :meth:`gc_cpu_factor`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ...config.parameters import SparkConfig
from ..common.costs import CostModel
from ..common.execution import JobFailedError

__all__ = ["SparkMemoryModel", "CachedRdd"]


@dataclass
class CachedRdd:
    """One persisted RDD in the block manager (deserialised, on-heap)."""

    name: str
    logical_bytes: float
    heap_bytes: float
    storage_level: str = "MEMORY_ONLY"
    #: CPU rate (bytes/s/core) of the transformation that produced the
    #: RDD — what a MEMORY_ONLY cache miss must re-pay.
    recompute_rate: float = 0.0
    #: What the caller asked to persist (per node, logical bytes).
    requested_logical_bytes: float = 0.0

    @property
    def hit_fraction(self) -> float:
        if self.requested_logical_bytes <= 0:
            return 1.0
        return min(1.0, self.logical_bytes / self.requested_logical_bytes)


class SparkMemoryModel:
    """Per-node view of one executor's heap.

    When constructed with a cluster, heap state (cached blocks,
    iteration residue) is also charged to the simulated nodes' RAM so
    the Memory% panels of the resource figures show it.
    """

    def __init__(self, config: SparkConfig, costs: CostModel,
                 num_nodes: int, cluster=None) -> None:
        self.config = config
        self.costs = costs
        self.num_nodes = num_nodes
        self.cluster = cluster
        self.cached: Dict[str, CachedRdd] = {}
        #: Extra heap-resident state accumulated by iterations (GraphX
        #: lineage of intermediate ranks): grows superstep by superstep.
        self.iteration_residue_bytes = 0.0

    def _charge_nodes(self, bytes_per_node: float) -> None:
        if self.cluster is None or bytes_per_node <= 0:
            return
        for node in self.cluster.nodes:
            node.memory.try_reserve(bytes_per_node)

    # ------------------------------------------------------------------
    # caching (rdd.persist())
    # ------------------------------------------------------------------
    def cache_rdd(self, name: str, cluster_logical_bytes: float,
                  storage_level: str = "MEMORY_ONLY",
                  recompute_rate: float = 0.0) -> CachedRdd:
        """Persist an RDD: deserialised objects on the storage heap.

        If it does not fit in the storage fraction, the overflow is
        simply not kept in memory: MEMORY_ONLY evicts (a later miss
        recomputes), MEMORY_AND_DISK spills (a later miss re-reads) —
        callers query :meth:`cached_fraction` and :meth:`miss_costs`.
        """
        if storage_level not in ("MEMORY_ONLY", "MEMORY_AND_DISK"):
            raise ValueError(f"unknown storage level {storage_level!r}")
        per_node_logical = cluster_logical_bytes / self.num_nodes
        heap = per_node_logical * self.costs.java_object_expansion
        fit = min(heap, max(0.0, self.storage_free))
        rdd = CachedRdd(name=name,
                        logical_bytes=per_node_logical * fit / heap if heap else 0.0,
                        heap_bytes=fit, storage_level=storage_level,
                        recompute_rate=recompute_rate,
                        requested_logical_bytes=per_node_logical)
        self.cached[name] = rdd
        self._charge_nodes(fit)
        return rdd

    def miss_bytes_per_iteration(self, name: str) -> float:
        """Cluster-wide logical bytes NOT held in memory: what every
        superstep must re-obtain (recompute or re-read)."""
        rdd = self.cached.get(name)
        if rdd is None:
            return 0.0
        missing_per_node = max(0.0, rdd.requested_logical_bytes -
                               rdd.logical_bytes)
        return missing_per_node * self.num_nodes

    def miss_costs(self, name: str, miss_bytes: float) -> Dict[str, float]:
        """Cluster-wide cost of serving ``miss_bytes`` of cache misses.

        MEMORY_ONLY recomputes the partition (CPU at the producing
        transformation's rate plus the source re-read);
        MEMORY_AND_DISK re-reads the spilled blocks from local disk.
        """
        rdd = self.cached.get(name)
        if rdd is None or miss_bytes <= 0:
            return {"cpu_core_seconds": 0.0, "disk_read_bytes": miss_bytes}
        if rdd.storage_level == "MEMORY_AND_DISK":
            return {"cpu_core_seconds": 0.0, "disk_read_bytes": miss_bytes}
        cpu = (miss_bytes / rdd.recompute_rate
               if rdd.recompute_rate > 0 else 0.0)
        return {"cpu_core_seconds": cpu, "disk_read_bytes": miss_bytes}

    def cached_fraction(self, name: str, cluster_logical_bytes: float) -> float:
        """Fraction of the RDD actually held in memory."""
        rdd = self.cached.get(name)
        if rdd is None or cluster_logical_bytes <= 0:
            return 0.0
        per_node = cluster_logical_bytes / self.num_nodes
        if per_node <= 0:
            return 1.0
        return min(1.0, rdd.logical_bytes / per_node)

    def evict(self, name: str) -> None:
        self.cached.pop(name, None)

    @property
    def storage_used(self) -> float:
        return sum(r.heap_bytes for r in self.cached.values())

    @property
    def storage_free(self) -> float:
        return self.config.storage_memory - self.storage_used

    # ------------------------------------------------------------------
    # execution memory / job-death checks
    # ------------------------------------------------------------------
    def task_execution_budget(self) -> float:
        """Heap bytes one concurrently-running task may use."""
        budget = (self.config.executor_memory *
                  self.costs.graphx_task_budget_fraction)
        return budget / self.config.executor_cores

    def check_task_working_set(self, partition_bytes: float,
                               context: str) -> None:
        """Die like a real executor if a task's objects overflow the heap."""
        working = partition_bytes * self.costs.java_object_expansion
        budget = self.task_execution_budget()
        if working > budget:
            raise JobFailedError(
                f"{context}: task working set "
                f"{working / 2**30:.1f} GiB exceeds per-task heap budget "
                f"{budget / 2**30:.1f} GiB "
                f"(java.lang.OutOfMemoryError: Java heap space); "
                f"increase partitions or executor memory")

    # ------------------------------------------------------------------
    # GC model
    # ------------------------------------------------------------------
    def heap_occupancy(self, stage_working_bytes_per_node: float) -> float:
        used = (self.storage_used + self.iteration_residue_bytes +
                stage_working_bytes_per_node)
        return used / self.config.executor_memory

    def gc_cpu_factor(self, stage_working_bytes_per_node: float) -> float:
        return self.costs.gc_factor(
            self.heap_occupancy(stage_working_bytes_per_node))

    def audit(self) -> list:
        """Return invariant-violation strings (empty when consistent).

        Checked: the storage pool never oversubscribes its configured
        fraction, cached blocks never claim more logical bytes than were
        requested, hit fractions stay in [0, 1], and iteration residue
        is non-negative.
        """
        problems = []
        tol = 1.0 + 1e-9
        if self.storage_used > self.config.storage_memory * tol:
            problems.append(
                f"spark storage pool: {self.storage_used} bytes cached > "
                f"storage fraction {self.config.storage_memory}")
        if self.iteration_residue_bytes < 0:
            problems.append(
                f"spark iteration residue negative: "
                f"{self.iteration_residue_bytes}")
        for name, rdd in self.cached.items():
            if rdd.heap_bytes < 0 or rdd.logical_bytes < 0:
                problems.append(f"cached rdd {name}: negative size")
            if rdd.requested_logical_bytes > 0 and \
                    rdd.logical_bytes > rdd.requested_logical_bytes * tol:
                problems.append(
                    f"cached rdd {name}: holds {rdd.logical_bytes} logical "
                    f"bytes > requested {rdd.requested_logical_bytes}")
            if not 0.0 <= rdd.hit_fraction <= 1.0:
                problems.append(
                    f"cached rdd {name}: hit fraction {rdd.hit_fraction} "
                    f"outside [0, 1]")
        return problems

    def add_iteration_residue(self, bytes_per_node: float) -> None:
        """GraphX keeps lineage of intermediate ranks across supersteps
        ("the memory increases from one iteration to another", §VI-E)."""
        self.iteration_residue_bytes += bytes_per_node
        self._charge_nodes(bytes_per_node *
                           self.costs.java_object_expansion)

    def clear_iteration_residue(self) -> None:
        self.iteration_residue_bytes = 0.0
