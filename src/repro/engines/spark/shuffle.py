"""Spark's tungsten-sort shuffle model.

The paper initialises ``spark.shuffle.manager`` to tungsten-sort ("a
memory efficient sort-based shuffle") with file consolidation enabled,
and Spark compresses map outputs — the reason Spark "uses less network"
than Flink in the Tera Sort experiment (Fig. 9).

:func:`plan_shuffle` turns the logical bytes crossing a wide dependency
into physical demands: on-wire bytes (after serializer inflation and
compression), serialise/compress CPU on the map side,
fetch/decompress/deserialise CPU on the reduce side, plus spill traffic
when a node's shuffle working set exceeds its shuffle memory fraction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...config.parameters import SparkConfig
from ..common.costs import CostModel
from ..common.serialization import serializer_profile
from ..common.stats import DataStats

__all__ = ["ShuffleSpec", "plan_shuffle"]


@dataclass(frozen=True)
class ShuffleSpec:
    """Physical footprint of one shuffle (cluster-wide totals)."""

    #: Bytes as stored in shuffle files / sent on the wire.
    wire_bytes: float
    #: Map-side CPU: serialisation + compression + sort buffer churn.
    write_cpu_core_seconds: float
    #: Reduce-side CPU: decompression + deserialisation.
    read_cpu_core_seconds: float
    #: Extra disk traffic from sort spills (written then re-read).
    spill_bytes: float

    @property
    def total_disk_write(self) -> float:
        return self.wire_bytes + self.spill_bytes

    @property
    def total_disk_read(self) -> float:
        return self.wire_bytes + self.spill_bytes


def plan_shuffle(data: DataStats, config: SparkConfig, costs: CostModel,
                 num_nodes: int, binary: bool = False) -> ShuffleSpec:
    """Price moving ``data`` through the shuffle machinery.

    ``binary`` marks opaque byte records (TeraSort's format): generic
    serializers copy them through with neither inflation nor
    reflection CPU.
    """
    profile = serializer_profile(config.serializer)
    logical = data.total_bytes
    if binary:
        serialized = logical * 1.02
        ser_rate = costs.serialization_rate
    else:
        serialized = logical * profile.bytes_factor
        ser_rate = costs.serialization_rate / profile.cpu_factor

    if config.shuffle_compress:
        wire = serialized * costs.spark_shuffle_compression_ratio
        compress_cpu = serialized / costs.compression_rate
        decompress_cpu = serialized / costs.compression_rate
    else:
        wire = serialized
        compress_cpu = 0.0
        decompress_cpu = 0.0

    write_cpu = logical / ser_rate + compress_cpu
    read_cpu = logical / ser_rate + decompress_cpu

    # Tungsten-sort keeps serialised records in the shuffle memory
    # fraction; overflow is spilled and merged.  Small buffer sizes
    # (spark.shuffle.file.buffer) amplify spill I/O slightly.
    per_node = serialized / num_nodes
    shuffle_mem = config.shuffle_memory
    spill_per_node = max(0.0, per_node - shuffle_mem)
    buffer_penalty = 1.0 + (32 * 1024 / max(config.shuffle_file_buffer,
                                            32 * 1024) - 1.0) * 0.1
    spill = spill_per_node * num_nodes * buffer_penalty

    return ShuffleSpec(wire_bytes=wire,
                       write_cpu_core_seconds=write_cpu,
                       read_cpu_core_seconds=read_cpu,
                       spill_bytes=spill)
