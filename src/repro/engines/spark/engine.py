"""The Spark 1.5 execution model.

Spark compiles a logical plan into *stages* cut at wide dependencies
(the DAG scheduler) and executes them with a cluster-wide barrier after
each stage; iterations are regular driver for-loops executed by *loop
unrolling* — "for each iteration a new set of tasks/operators is
scheduled and executed" (paper §II-C) — so every iteration pays the
task-launch and stage-scheduling overheads again.  RDD persistence is
explicit: operators marked ``cached=True`` land in the block manager
and iterations read them from memory.

The architectural levers the paper attributes to Spark all live here:

* staged (materialising) shuffle with tungsten-sort + compression;
* Java/Kryo serialization CPU on every shuffle boundary;
* static heap fractions, GC pressure, job death on heap overflow;
* per-iteration scheduling overhead and driver ``collect`` round-trips;
* GraphX-style iteration behaviour (disk-materialised intermediate
  ranks, lineage residue growing the heap every superstep).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ...cluster.topology import Cluster
from ...config.parameters import SparkConfig
from ...hdfs.filesystem import HDFS
from ..common.costs import DEFAULT_COSTS, CostModel
from ..common.execution import (JobFailedError, JobResult, OperatorSpan,
                                PhaseExecutor, PhaseSpec,
                                speed_weighted_resources)
from ..common.operators import LogicalPlan, Op, OpKind
from ..common.planning import (Segment, chain_key, chain_label,
                               combined_output, split_segments)
from ..common.result import EngineRunResult
from ..common.serialization import serializer_profile
from ..common.stats import DataStats
from .memory import SparkMemoryModel
from .shuffle import ShuffleSpec, plan_shuffle

__all__ = ["SparkEngine"]


@dataclass
class _Stage:
    """One compiled physical stage plus its driver-side bookkeeping."""

    phase: PhaseSpec
    #: Driver time after the stage barrier (collect/commit actions).
    post_delay: float = 0.0
    #: Fold this stage's span into the previous one (a bare wide op is
    #: reported as part of its producing transformation, as the paper's
    #: panels do for ``FlatMap->MapToPair->ReduceByKey``).
    merge_span: bool = False


class SparkEngine:
    """Simulated Spark 1.5.3 standalone deployment."""

    name = "spark"

    def __init__(self, cluster: Cluster, hdfs: HDFS, config: SparkConfig,
                 costs: CostModel = DEFAULT_COSTS,
                 chunks_per_phase: int = 8) -> None:
        self.cluster = cluster
        self.hdfs = hdfs
        self.config = config
        self.costs = costs
        self.memory = SparkMemoryModel(config, costs, cluster.num_nodes,
                                       cluster=cluster)
        self.executor = PhaseExecutor(
            cluster, hdfs, chunks_per_phase=chunks_per_phase,
            jitter_sigma=costs.jitter_sigma,
            # Spark's staged execution mostly separates reads from
            # writes; interference applies only when a stage does both.
            io_interference_sigma=costs.io_interference_sigma * 0.5,
            io_interference_penalty=costs.io_interference_penalty * 0.5,
        )
        self.metrics = {"shuffle_wire_bytes": 0.0, "spill_bytes": 0.0,
                        "tasks_launched": 0.0, "stages": 0.0}
        self._last_cached_name: Optional[str] = None
        self._stage_windows: List[tuple] = []
        #: Set by :mod:`repro.faults` to a ``SparkRecoveryRuntime``;
        #: when present every stage runs fault-guarded and lost task
        #: shares are re-executed instead of failing the job.
        self.recovery = None
        #: Partition count of the cached (graph) RDD: GraphX iterations
        #: inherit it — the reason ``spark.edge.partition`` tuning is so
        #: sensitive (§VI-E).
        self._cached_partitions: Optional[int] = None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, plan: LogicalPlan) -> EngineRunResult:
        """Execute the plan to completion on the simulated cluster."""
        result = EngineRunResult(engine=self.name, workload=plan.name,
                                 nodes=self.cluster.num_nodes, success=True,
                                 start=self.cluster.now)
        self._stage_windows = []
        try:
            self.cluster.run_process(self._driver(plan, result))
            result.end = self.cluster.now
        except JobFailedError as err:
            result.success = False
            result.failure = str(err)
            result.failure_kind = "fault" if err.is_fault else "fatal"
            result.end = self.cluster.now
        result.metrics.update(self.metrics)
        result.stage_windows = list(self._stage_windows)
        return result

    def explain(self, plan: LogicalPlan) -> str:
        """Describe the stages the DAG scheduler would build, without
        executing anything (the paper's plan-plotting step, §V)."""
        from ..common.explain import explain_spark
        return explain_spark(plan, self.config, self.costs,
                             self.cluster.num_nodes, self.hdfs.block_size)

    # ------------------------------------------------------------------
    # the driver program
    # ------------------------------------------------------------------
    def _driver(self, plan: LogicalPlan, result: EngineRunResult):
        segments = split_segments(plan)
        current_job: List[OperatorSpan] = []
        job_name = "load" if any(s.head.is_iteration for s in segments) else "main"
        job_start = self.cluster.now
        pending_shuffle: Optional[Tuple[ShuffleSpec, DataStats]] = None
        tracer = self.cluster.tracer
        # A job's name is only known when the next action cuts it, so
        # the tracer span is renamed at close time and the next one is
        # opened speculatively (the one after the final job is
        # cancelled below).
        job_span = (tracer.begin("job", job_name, job_start)
                    if tracer is not None else None)

        def close_job(name: str) -> None:
            nonlocal current_job, job_start, job_span
            result.jobs.append(JobResult(name=name, start=job_start,
                                         end=self.cluster.now,
                                         spans=list(current_job)))
            current_job = []
            job_start = self.cluster.now
            if tracer is not None:
                tracer.end(job_span, self.cluster.now, name=name)
                job_span = tracer.begin("job", name, self.cluster.now)

        for si, segment in enumerate(segments):
            if segment.head.is_iteration:
                close_job(job_name)
                job_name = "post"
                yield from self._run_iterations(segment.head, current_job)
                close_job("iterations")
                continue
            next_wide = self._next_wide(segments, si)
            stages, pending_shuffle = self._compile_segment(
                segment, pending_shuffle, next_wide=next_wide)
            for stage in stages:
                yield from self._run_stage(stage, current_job)
        close_job(job_name)
        if tracer is not None:
            tracer.cancel(job_span)

    @staticmethod
    def _next_wide(segments: List[Segment], index: int) -> Optional[Op]:
        if index + 1 < len(segments):
            head = segments[index + 1].head
            if head.wide:
                return head
        return None

    def _run_stage(self, stage: _Stage, spans: List[OperatorSpan],
                   iteration: Optional[int] = None,
                   result: Optional[EngineRunResult] = None):
        self.metrics["stages"] += 1
        stage_start = self.cluster.now
        tracer = self.cluster.tracer
        stage_span = None
        if tracer is not None:
            stage_span = tracer.begin("stage", stage.phase.name,
                                      stage_start, key=stage.phase.key,
                                      iteration=iteration)
        if self.recovery is not None:
            span = yield from self.recovery.run_stage(self.executor,
                                                      stage.phase)
        else:
            span = yield from self.executor.run_phase(stage.phase)
        self._stage_windows.append((stage_start, self.cluster.now))
        span.iteration = iteration
        if stage.post_delay > 0:
            # Driver-side commit/collect time belongs to the action's
            # span (the paper's SaveAsTextFile bar includes it).
            yield self.cluster.sim.timeout(stage.post_delay)
            span.end = self.cluster.now
            span.busy += stage.post_delay
        if tracer is not None:
            tracer.end(stage_span, self.cluster.now)
        if stage.merge_span and spans:
            prev = spans[-1]
            prev.name = f"{prev.name}->{span.name}" if span.name else prev.name
            prev.key = "".join(p[0] for p in prev.name.split("->") if p)
            prev.end = max(prev.end, span.end)
        else:
            spans.append(span)

    # ------------------------------------------------------------------
    # stage compilation
    # ------------------------------------------------------------------
    def _compile_segment(
        self, segment: Segment,
        pending_shuffle: Optional[Tuple[ShuffleSpec, DataStats]],
        scale: float = 1.0,
        input_cached_as: Optional[str] = None,
        next_wide: Optional[Op] = None,
    ) -> Tuple[List[_Stage], Optional[Tuple[ShuffleSpec, DataStats]]]:
        """Compile one segment into stages (compute [+ sink/action])."""
        n = self.cluster.num_nodes
        cores_total = n * self.config.executor_cores
        compute_ops = [op for op in segment.ops
                       if op.kind is not OpKind.SINK and not op.is_action]
        tail_ops = [op for op in segment.ops
                    if op.kind is OpKind.SINK or op.is_action]

        cpu = 0.0
        disk_read = 0.0
        disk_write = 0.0
        net_in = 0.0
        net_out = 0.0
        working_per_node = 0.0

        # ---- input side -------------------------------------------------
        input_stats = segment.input_stats
        input_bytes = input_stats.total_bytes * scale
        head_bytes_override: Optional[float] = None
        if segment.starts_with_shuffle:
            if pending_shuffle is None:
                raise JobFailedError(
                    f"stage {segment.display_name()}: shuffle input missing")
            spec, shuffled_stats = pending_shuffle
            wire = spec.wire_bytes * scale
            disk_read += (wire + spec.spill_bytes * scale)
            cross = wire * (1.0 - 1.0 / n)
            net_in += cross
            net_out += cross
            cpu += spec.read_cpu_core_seconds * scale
            working_per_node += wire / n
            head_bytes_override = shuffled_stats.total_bytes * scale
            tasks = (segment.head.partitions or
                     self.config.default_parallelism)
        elif input_cached_as is not None:
            # Blocks evicted from the cache are re-obtained every
            # superstep: recomputed (MEMORY_ONLY) or re-read
            # (MEMORY_AND_DISK).  The miss volume is the cached RDD's
            # own spilled share, not the derived stream's size.
            miss = self.memory.miss_costs(
                input_cached_as,
                self.memory.miss_bytes_per_iteration(input_cached_as))
            disk_read += miss["disk_read_bytes"]
            cpu += miss["cpu_core_seconds"]
            cpu += input_bytes / (1200 * 2**20)       # memory scan is cheap
            cached_parts = (self._cached_partitions
                            if segment.head.use_cached_partitioning
                            else None)
            tasks = cached_parts or self.config.default_parallelism
        else:
            disk_read += input_bytes
            tasks = max(1, int(math.ceil(input_bytes / self.hdfs.block_size)))

        # ---- operator chain ---------------------------------------------
        for oi, (op, op_in) in enumerate(zip(segment.ops, segment.in_stats)):
            if op.kind in (OpKind.SOURCE, OpKind.SINK) or op.is_action:
                continue
            rate = self.costs.rate_for(op.kind, op.cpu_rate)
            op_bytes = op_in.total_bytes * scale
            if oi == 0 and head_bytes_override is not None:
                op_bytes = head_bytes_override
            cpu += op_bytes / rate
            if op.side_input is not None:
                disk_read += op.side_input.total_bytes * scale
                cpu += op.side_input.total_bytes * scale / rate
            if op.cached:
                out = op.apply_stats(op_in)
                self.memory.cache_rdd(op.name if op.name else "rdd",
                                      out.total_bytes,
                                      storage_level=op.storage_level,
                                      recompute_rate=rate)
                self._last_cached_name = op.name if op.name else "rdd"
                self._cached_partitions = op.partitions or tasks
            if op.materialize_to_disk:
                out = op.apply_stats(op_in)
                disk_write += out.total_bytes * scale
                self.memory.add_iteration_residue(out.total_bytes / n)

        out_stats = segment.out_stats
        assert out_stats is not None

        # ---- output side: does a wide op follow? -------------------------
        next_shuffle: Optional[Tuple[ShuffleSpec, DataStats]] = None
        if next_wide is not None:
            wide_op: Op = next_wide
            data = out_stats
            if wide_op.combinable:
                # Map-side combine runs inside this stage.
                cpu += data.total_bytes * scale / self.costs.rate_for(
                    wide_op.kind, wide_op.cpu_rate)
                data = combined_output(
                    data, max(tasks, 1),
                    pair_bytes=data.record_bytes * wide_op.bytes_ratio)
            scaled = DataStats(records=data.records * scale,
                               record_bytes=data.record_bytes,
                               key_cardinality=data.key_cardinality)
            spec = plan_shuffle(scaled, self.config, self.costs, n,
                                binary=wide_op.binary_format)
            cpu += spec.write_cpu_core_seconds
            disk_write += spec.wire_bytes + spec.spill_bytes
            working_per_node += min(scaled.total_bytes / n,
                                    self.config.shuffle_memory)
            self.metrics["shuffle_wire_bytes"] += spec.wire_bytes
            self.metrics["spill_bytes"] += spec.spill_bytes
            next_shuffle = (spec, scaled)

        # ---- scheduling overheads ----------------------------------------
        # Operators that must hold whole object groups on the heap die
        # when a partition outgrows the task budget (GraphX loads,
        # joins); sort-based aggregations spill instead.
        if segment.starts_with_shuffle and segment.head.kind in (
                OpKind.PARTITION, OpKind.JOIN, OpKind.CO_GROUP):
            self.memory.check_task_working_set(
                input_bytes / max(tasks, 1),
                context=f"stage {chain_label(compute_ops) or 'shuffle'}")
        cpu += tasks * self.costs.spark_task_launch
        self.metrics["tasks_launched"] += tasks
        cpu *= 1.0 + self.costs.partition_imbalance_coeff * math.sqrt(
            cores_total / max(tasks, 1))
        cpu *= self.memory.gc_cpu_factor(working_per_node)
        slots = min(self.config.executor_cores,
                    max(1.0, tasks / n))

        stages: List[_Stage] = []
        name = chain_label(compute_ops)
        merge = (name == "" or all(
            op.wide or op.hidden or op.kind is OpKind.SOURCE
            for op in compute_ops)) and bool(compute_ops)
        phase = PhaseSpec(
            name=name or "stage",
            key=chain_key(name) or "S",
            # Dynamic task scheduling: a slow executor just gets
            # fewer tasks, so shares track per-node speed.
            per_node=speed_weighted_resources(
                self.cluster, cpu_core_seconds=cpu, cpu_slots=slots,
                disk_read_bytes=disk_read, disk_write_bytes=disk_write,
                net_in_bytes=net_in, net_out_bytes=net_out,
                memory_bytes=working_per_node),
            startup_delay=self.costs.spark_stage_overhead,
        )
        stages.append(_Stage(phase=phase, merge_span=merge))

        # ---- sink / action stage ------------------------------------------
        for op in tail_ops:
            idx = segment.ops.index(op)
            stages.append(self._compile_tail(op, segment.in_stats[idx],
                                             scale, n))
        return stages, next_shuffle

    def _compile_tail(self, op: Op, in_stats: DataStats, scale: float,
                      n: int) -> _Stage:
        cpu = 0.0
        hdfs_write = 0.0
        net_in = 0.0
        post = 0.0
        out_bytes = op.apply_stats(in_stats).total_bytes * scale
        if op.kind is OpKind.SINK:
            out_bytes = in_stats.total_bytes * scale
        profile = serializer_profile(self.config.serializer)
        if op.kind is OpKind.SINK:
            hdfs_write = out_bytes
            cpu = out_bytes / (self.costs.serialization_rate /
                               profile.cpu_factor)
            # Commit cost saturates: the committer batches renames once
            # enough part files exist.
            post = (self.costs.spark_stage_overhead +
                    min(self.config.default_parallelism, 1200) *
                    self.costs.spark_output_commit_per_task)
        elif op.kind is OpKind.COUNT:
            post = self.costs.spark_collect_per_node * 0.2
        else:  # collect / collectAsMap
            net_in = out_bytes  # results stream to the driver
            cpu = out_bytes / self.costs.rate_for(op.kind, op.cpu_rate)
            post = self.costs.spark_collect_per_node * n / 16.0
        phase = PhaseSpec(
            name=op.name,
            key=op.name[:1].upper() if op.name else "T",
            per_node=speed_weighted_resources(
                self.cluster, cpu_core_seconds=cpu,
                cpu_slots=max(1.0, self.config.executor_cores / 2),
                net_in_bytes=net_in, hdfs_write_bytes=hdfs_write,
                hdfs_replication=op.sink_replication),
            startup_delay=0.05,
        )
        return _Stage(phase=phase, post_delay=post,
                      merge_span=op.hidden)

    # ------------------------------------------------------------------
    # iterations: loop unrolling
    # ------------------------------------------------------------------
    def _run_iterations(self, it_op: Op, spans: List[OperatorSpan]):
        body = it_op.body
        assert body is not None
        # Loop-unrolled iterations keep each superstep's message volume
        # live on the executor heaps; when it outgrows them the job dies
        # (Table VII: Page Rank's fat messages fail at 27/44 nodes,
        # Connected Components' thin ones survive).
        per_node = body.input_stats.total_bytes / self.cluster.num_nodes
        budget = (self.config.executor_memory *
                  self.costs.graphx_task_budget_fraction)
        if per_node > budget:
            raise JobFailedError(
                f"iteration working set {per_node / 2**30:.1f} GiB per node "
                f"exceeds the executor budget {budget / 2**30:.1f} GiB "
                f"(java.lang.OutOfMemoryError during message aggregation)")
        cache_name = self._find_cache_name(body) or self._last_cached_name
        body_segments = split_segments(body)
        for i in range(1, it_op.iterations + 1):
            activity = (it_op.workset_activity(i)
                        if it_op.workset_activity else 1.0)
            iter_spans: List[OperatorSpan] = []
            pending = None
            for bi, seg in enumerate(body_segments):
                stages, pending = self._compile_segment(
                    seg, pending, scale=activity,
                    input_cached_as=cache_name if bi == 0 else None,
                    next_wide=self._next_wide(body_segments, bi))
                for stage in stages:
                    yield from self._run_stage(stage, iter_spans, iteration=i)
            merged = self._merge_iteration_spans(iter_spans, body, i)
            spans.append(merged)

    @staticmethod
    def _find_cache_name(body: LogicalPlan) -> Optional[str]:
        for op in body.ops:
            if op.cached:
                return op.name
        return None

    @staticmethod
    def _merge_iteration_spans(iter_spans: List[OperatorSpan],
                               body: LogicalPlan, i: int) -> OperatorSpan:
        label = "->".join(op.name for op in body.ops if not op.hidden)
        key = "".join(p[0] for p in label.split("->") if p)
        start = min(s.start for s in iter_spans)
        end = max(s.end for s in iter_spans)
        return OperatorSpan(key=key, name=label, start=start, end=end,
                            iteration=i)
