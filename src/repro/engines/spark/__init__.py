"""The simulated Apache Spark 1.5 engine."""

from .engine import SparkEngine
from .memory import CachedRdd, SparkMemoryModel
from .shuffle import ShuffleSpec, plan_shuffle

__all__ = ["CachedRdd", "ShuffleSpec", "SparkEngine", "SparkMemoryModel",
           "plan_shuffle"]
