"""Physical execution machinery shared by the Spark and Flink models.

Both engines ultimately run *phases* on the simulated cluster.  A phase
(:class:`PhaseSpec`) is a fused group of operators — e.g. Flink's
``DataSource->FlatMap->GroupCombine`` chain or Spark's
``FlatMap->MapToPair->ReduceByKey`` stage — with per-node resource
demands (:class:`PhaseResources`).  The executor runs each node's share
as a sequence of *chunks*; within a chunk the CPU, disk and network
demands proceed concurrently (record-at-a-time streaming), and chunks
flow downstream through bounded queues.

The two execution disciplines of the paper fall out of one mechanism:

* **staged** (Spark): a barrier after every phase — all chunks of phase
  *k* complete cluster-wide before phase *k+1* starts.  This produces
  the "very clear separation between stages" of Fig. 9 (right).
* **pipelined** (Flink): consecutive phases are connected by bounded
  chunk queues, so a downstream phase starts as soon as the first chunk
  arrives and back-pressure propagates when queues fill.  This produces
  the overlapping operator spans of Fig. 9 (left) — and the read/write
  interference on the single disk that explains Flink's variance.

The executor records an :class:`OperatorSpan` per phase (cluster-wide
first-start / last-end), which is exactly what the paper's
operator-plan panels plot.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ...cluster.memory import OutOfMemoryError
from ...cluster.node import Node
from ...cluster.simulation import Event, Interrupt
from ...cluster.topology import Cluster
from ...hdfs.filesystem import HDFS

__all__ = [
    "PhaseResources", "PhaseSpec", "OperatorSpan", "JobResult",
    "JobFailedError", "JobFootprint", "TaskLostError", "PhaseExecutor",
    "ChunkQueue", "footprint_of", "uniform_resources",
]


@dataclass(frozen=True)
class JobFootprint:
    """A finished run reduced to its schedulable shape.

    The cluster scheduler (:mod:`repro.scheduler`) treats a whole
    engine run as one schedulable unit: a job that wants ``width``
    nodes and needs ``service_seconds`` of execution on them.  The
    footprint is measured by actually running the job alone via the
    legacy :func:`repro.harness.runner.run_once` path, which is what
    makes a single job admitted through the scheduler bitwise
    identical to a direct run — the profile *is* the direct run.

    ``granules`` is the preemption quantum count: Spark-style
    preemption loses only the uncommitted granule (lineage keeps the
    completed ones), Flink-style restart loses all of them.
    """

    engine: str
    workload: str
    width: int
    service_seconds: float
    granules: int = 8

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"width must be >= 1, got {self.width}")
        if not self.service_seconds > 0:
            raise ValueError(
                f"service_seconds must be > 0, got {self.service_seconds}")
        if self.granules < 1:
            raise ValueError(
                f"granules must be >= 1, got {self.granules}")


def footprint_of(result, granules: int = 8) -> JobFootprint:
    """Reduce a successful :class:`EngineRunResult` to its footprint."""
    if not result.success:
        raise ValueError(
            f"cannot take the footprint of a failed run: {result.failure}")
    return JobFootprint(engine=result.engine, workload=result.workload,
                        width=result.nodes,
                        service_seconds=result.duration,
                        granules=granules)


class JobFailedError(RuntimeError):
    """A job died (OOM, insufficient buffers/slots, ...)."""

    #: Whether the failure was caused by an injected fault (and is
    #: therefore retryable by the recovery machinery) rather than a
    #: modelling error such as OOM.  Checked duck-typed via
    #: ``getattr(err, "is_fault", False)`` so :mod:`repro.faults` never
    #: becomes an import dependency of the engines.
    is_fault = False

    def __init__(self, message: str, cause: Optional[BaseException] = None) -> None:
        super().__init__(message)
        self.cause = cause


class TaskLostError(JobFailedError):
    """Work was lost to an injected fault (node crash, partition, ...).

    Unlike its base class this is *retryable*: Spark's recovery runtime
    re-executes the lost tasks, Flink 0.10 restarts the whole pipeline.
    """

    is_fault = True


def _fault_failure(context: str, err: BaseException) -> JobFailedError:
    """Normalise a fault-caused error to a :class:`TaskLostError`.

    Injected interrupts carry their cause (usually already a
    :class:`TaskLostError`) in ``err.cause``; aborted flows raise the
    error directly.
    """
    if isinstance(err, Interrupt):
        cause = err.cause
        if isinstance(cause, JobFailedError):
            return cause
        return TaskLostError(f"{context}: interrupted by fault {cause!r}")
    if isinstance(err, JobFailedError):
        return err
    return TaskLostError(f"{context}: {err!r}", err)


@dataclass
class PhaseResources:
    """Resource demand of one phase on one node."""

    cpu_core_seconds: float = 0.0
    #: Maximum cores the phase may use simultaneously (its task slots).
    cpu_slots: float = 0.0
    disk_read_bytes: float = 0.0
    disk_write_bytes: float = 0.0
    net_in_bytes: float = 0.0
    net_out_bytes: float = 0.0
    #: Bytes written through the HDFS replication pipeline (sinks).
    hdfs_write_bytes: float = 0.0
    #: Replication of those writes (None = filesystem default).
    hdfs_replication: Optional[int] = None
    #: Disk traffic that strictly alternates with the CPU (sort-buffer
    #: spills): it extends the phase instead of overlapping it.
    cyclic_disk_bytes: float = 0.0
    #: Working memory reserved for the phase's lifetime.
    memory_bytes: float = 0.0

    def validate(self) -> None:
        for name in ("cpu_core_seconds", "disk_read_bytes", "disk_write_bytes",
                     "net_in_bytes", "net_out_bytes", "hdfs_write_bytes",
                     "cyclic_disk_bytes", "memory_bytes"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.cpu_core_seconds > 0 and self.cpu_slots <= 0:
            raise ValueError("phase with CPU work needs cpu_slots > 0")

    @property
    def is_empty(self) -> bool:
        return (self.cpu_core_seconds == 0 and self.disk_read_bytes == 0
                and self.disk_write_bytes == 0 and self.net_in_bytes == 0
                and self.net_out_bytes == 0 and self.hdfs_write_bytes == 0
                and self.cyclic_disk_bytes == 0)

    def scaled(self, factor: float) -> "PhaseResources":
        return PhaseResources(
            cpu_core_seconds=self.cpu_core_seconds * factor,
            cpu_slots=self.cpu_slots,
            disk_read_bytes=self.disk_read_bytes * factor,
            disk_write_bytes=self.disk_write_bytes * factor,
            net_in_bytes=self.net_in_bytes * factor,
            net_out_bytes=self.net_out_bytes * factor,
            hdfs_write_bytes=self.hdfs_write_bytes * factor,
            hdfs_replication=self.hdfs_replication,
            cyclic_disk_bytes=self.cyclic_disk_bytes * factor,
            memory_bytes=self.memory_bytes,
        )


_PER_NODE_KEYS = ("cpu_slots", "memory_bytes", "hdfs_replication")


def uniform_resources(num_nodes: int, **totals: float) -> List[PhaseResources]:
    """Split cluster-wide totals evenly across nodes.

    ``cpu_slots`` and ``memory_bytes`` are per-node values and are
    passed through unchanged.  This is the static assignment of Flink's
    slot model: every node gets the same share regardless of speed.
    """
    per_node = {}
    for key, value in totals.items():
        if key in _PER_NODE_KEYS:
            per_node[key] = value
        else:
            per_node[key] = value / num_nodes
    return [PhaseResources(**per_node) for _ in range(num_nodes)]


def speed_weighted_resources(cluster, **totals: float) -> List[PhaseResources]:
    """Split cluster-wide totals proportionally to each node's CPU speed.

    Models dynamic task scheduling (Spark's): a straggling executor
    simply receives fewer of the stage's tasks, so per-node work tracks
    per-node capability.  On a homogeneous cluster this is identical to
    :func:`uniform_resources`.
    """
    weights = [node.cpu.bandwidth for node in cluster.nodes]
    total_weight = sum(weights) or 1.0
    out = []
    for w in weights:
        share = w / total_weight
        per_node = {}
        for key, value in totals.items():
            if key in _PER_NODE_KEYS:
                per_node[key] = value
            else:
                per_node[key] = value * share
        out.append(PhaseResources(**per_node))
    return out


@dataclass
class PhaseSpec:
    """One fused operator group, cluster-wide."""

    name: str                      # long label: "DataSource->FlatMap->GroupCombine"
    key: str                       # short label used in figures: "DC"
    per_node: List[PhaseResources]
    #: Extra latency before the phase's first chunk (task deployment).
    startup_delay: float = 0.0
    #: Blocking phases buffer their whole input before emitting
    #: (e.g. a full sort): downstream sees no chunk until they finish.
    blocking: bool = False
    #: Anti-cyclic phases alternate CPU and I/O instead of overlapping
    #: them — the signature of Flink's sort-based combiner ("the CPU
    #: increases to 100% while the disk goes down to 0%", Fig. 3).
    anti_cyclic: bool = False

    def __post_init__(self) -> None:
        if not self.per_node:
            raise ValueError(f"phase {self.key}: no per-node resources")
        for res in self.per_node:
            res.validate()

    def total(self, attr: str) -> float:
        return sum(getattr(r, attr) for r in self.per_node)


@dataclass
class OperatorSpan:
    """Cluster-wide execution window of one phase (a bar in the paper's
    operator-plan panels)."""

    key: str
    name: str
    start: float
    end: float
    #: 1-based iteration index for spans inside unrolled loops.
    iteration: Optional[int] = None
    #: Maximum per-node busy time (chunk processing, excluding waits on
    #: upstream phases).  For pipelined tails this is the paper's bar
    #: length; ``duration`` is the wall-clock window.
    busy: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "OperatorSpan") -> bool:
        return self.start < other.end and other.start < self.end


@dataclass
class JobResult:
    """Outcome of one executed job."""

    name: str
    start: float
    end: float
    spans: List[OperatorSpan] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def span(self, key: str) -> OperatorSpan:
        for s in self.spans:
            if s.key == key:
                return s
        raise KeyError(f"no span {key!r}; have {[s.key for s in self.spans]}")


class ChunkQueue:
    """A bounded queue of chunk tokens between pipelined phases."""

    def __init__(self, cluster: Cluster, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.sim = cluster.sim
        self.capacity = capacity
        self.items = 0
        self.closed = False
        self._getters: List[Event] = []
        self._putters: List[Event] = []

    def put(self) -> Event:
        """Deposit one chunk; blocks (event) while the queue is full."""
        evt = self.sim.event()
        if self.items < self.capacity:
            self.items += 1
            self._wake_getter()
            self.sim._schedule(evt, 0.0)
        else:
            self._putters.append(evt)
        return evt

    def get(self) -> Event:
        """Take one chunk; blocks while empty (unless closed)."""
        evt = self.sim.event()
        if self.items > 0:
            self.items -= 1
            self._wake_putter()
            self.sim._schedule(evt, 0.0)
        elif self.closed:
            self.sim._schedule(evt, 0.0)  # drained: deliver immediately
        else:
            self._getters.append(evt)
        return evt

    def close(self) -> None:
        """No more puts; wake all blocked getters."""
        self.closed = True
        for evt in self._getters:
            self.sim._schedule(evt, 0.0)
        self._getters.clear()

    def _wake_getter(self) -> None:
        if self._getters:
            self.items -= 1
            self.sim._schedule(self._getters.pop(0), 0.0)

    def _wake_putter(self) -> None:
        if self._putters:
            self.items += 1
            self.sim._schedule(self._putters.pop(0), 0.0)


class PhaseExecutor:
    """Runs phase lists on a cluster, staged or pipelined."""

    def __init__(self, cluster: Cluster, hdfs: Optional[HDFS] = None,
                 chunks_per_phase: int = 12, queue_depth: int = 2,
                 jitter_sigma: float = 0.0,
                 io_interference_sigma: float = 0.0,
                 io_interference_penalty: float = 0.0) -> None:
        if chunks_per_phase < 1:
            raise ValueError("chunks_per_phase must be >= 1")
        self.cluster = cluster
        self.hdfs = hdfs
        self.chunks = chunks_per_phase
        self.queue_depth = queue_depth
        self.jitter_sigma = jitter_sigma
        self.io_interference_sigma = io_interference_sigma
        self.io_interference_penalty = io_interference_penalty
        self._rng = cluster.rng
        # Seek-amplification luck is a property of the run (layout of
        # the interleaved files on the spindle), not of each chunk:
        # drawing it once per deployment produces the run-to-run
        # variance the paper observes for Flink's Tera Sort (§VI-C).
        if io_interference_sigma > 0:
            self._run_io_factor = float(
                self._rng.lognormal(0.0, io_interference_sigma))
        else:
            self._run_io_factor = 1.0

    # ------------------------------------------------------------------
    # public entry points (generators to be wrapped in sim processes)
    # ------------------------------------------------------------------
    def run_staged(self, name: str, phases: Sequence[PhaseSpec]):
        """Barrier after every phase (Spark's stage discipline)."""
        start = self.cluster.now
        spans: List[OperatorSpan] = []
        for phase in phases:
            span = yield from self._run_phase_all_nodes(phase, None, None)
            spans.append(span)
        return JobResult(name=name, start=start, end=self.cluster.now,
                         spans=spans)

    def run_pipelined(self, name: str, phases: Sequence[PhaseSpec]):
        """Bounded-queue coupling between phases (Flink's discipline)."""
        start = self.cluster.now
        phases = list(phases)
        # One queue chain per node: phase i on node n feeds phase i+1 on
        # node n.  (Cross-node data movement is already expressed in the
        # phases' net_in/net_out demands.)
        num_nodes = self.cluster.num_nodes
        queues: List[List[Optional[ChunkQueue]]] = []
        for i in range(len(phases) - 1):
            queues.append([ChunkQueue(self.cluster, self.queue_depth)
                           for _ in range(num_nodes)])
        span_state = [self._new_span_state(p) for p in phases]
        procs = []
        for pi, phase in enumerate(phases):
            for ni in range(num_nodes):
                in_q = queues[pi - 1][ni] if pi > 0 else None
                out_q = queues[pi][ni] if pi < len(phases) - 1 else None
                proc = self.cluster.sim.process(
                    self._node_phase_proc(phase, ni, in_q, out_q,
                                          span_state[pi]))
                self._register_fault_proc(ni, proc)
                procs.append(proc)
        try:
            yield self.cluster.sim.all_of(procs)
        except Interrupt as err:
            # Flink 0.10 has no task-level recovery: any lost task
            # fails the whole pipelined job (the harness may restart it).
            raise _fault_failure(f"pipelined job {name!r}", err) from err
        spans = [OperatorSpan(p.key, p.name, st["start"], st["end"],
                              busy=max(st["busy"].values(), default=0.0))
                 for p, st in zip(phases, span_state)]
        for p, st in zip(phases, span_state):
            self._record_spans(p, st)
        return JobResult(name=name, start=start, end=self.cluster.now,
                         spans=spans)

    def run_phase(self, phase: PhaseSpec):
        """Run one phase to completion on every node; returns its span."""
        return (yield from self._run_phase_all_nodes(phase, None, None))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _new_span_state(self, phase: PhaseSpec) -> Dict:
        state = {"start": math.inf, "end": -math.inf, "busy": {},
                 "chunks": {}}
        if self.cluster.tracer is not None:
            # Per-node execution windows feed the tracer's task spans;
            # the key is absent on untraced runs so the hot loop pays
            # only a dict miss.
            state["nodes"] = {}
        return state

    def _record_spans(self, phase: PhaseSpec, state: Dict) -> None:
        """Emit one operator span plus per-node task spans from a
        finished phase's span state (no-op without a tracer)."""
        tracer = self.cluster.tracer
        if tracer is None or state["start"] == math.inf:
            return
        op_span = tracer.record(
            "operator", phase.name, state["start"], state["end"],
            key=phase.key)
        windows = state.get("nodes") or {}
        busy = state["busy"]
        chunks = state["chunks"]
        for ni in sorted(windows):
            w = windows[ni]
            tracer.record(
                "task", f"{phase.key}@node-{ni:03d}", w[0], w[1],
                parent=op_span, key=phase.key, node=ni,
                busy=busy.get(ni, 0.0), chunks=float(chunks.get(ni, 0)))

    def _register_fault_proc(self, node_index: int, proc) -> None:
        state = self.cluster.fault_state
        if state is not None:
            state.register(node_index, proc)

    def _run_phase_all_nodes(self, phase: PhaseSpec, in_qs, out_qs):
        state = self._new_span_state(phase)
        procs = []
        for ni in range(self.cluster.num_nodes):
            proc = self.cluster.sim.process(
                self._node_phase_proc(phase, ni, None, None, state))
            self._register_fault_proc(ni, proc)
            procs.append(proc)
        try:
            yield self.cluster.sim.all_of(procs)
        except Interrupt as err:
            raise _fault_failure(f"phase {phase.key!r}", err) from err
        self._record_spans(phase, state)
        return OperatorSpan(phase.key, phase.name, state["start"],
                            state["end"],
                            busy=max(state["busy"].values(), default=0.0))

    # ------------------------------------------------------------------
    # fault-tolerant entry points (used by repro.faults)
    # ------------------------------------------------------------------
    def run_phase_guarded(self, phase: PhaseSpec):
        """Run one phase with per-node fault isolation.

        Fault-caused failures (an injected :class:`~repro.cluster.
        simulation.Interrupt` or a :class:`TaskLostError` from an
        aborted flow) on one node do **not** break the cluster-wide
        barrier: surviving nodes finish their shares and the failure is
        reported to the caller, which can then re-execute the lost work
        (Spark's task-level recovery).  Non-fault errors (OOM, ...)
        still propagate.

        Returns ``(span, failures, chunks_done)`` where ``failures``
        maps node index to the fault that killed its share and
        ``chunks_done`` maps node index to completed chunk count.
        """
        state = self._new_span_state(phase)
        failures: Dict[int, BaseException] = {}
        procs = []
        for ni in range(self.cluster.num_nodes):
            proc = self.cluster.sim.process(
                self._guarded_node_proc(phase, ni, state, failures))
            self._register_fault_proc(ni, proc)
            procs.append(proc)
        yield self.cluster.sim.all_of(procs)
        if state["start"] == math.inf:
            state["start"] = state["end"] = self.cluster.now
        self._record_spans(phase, state)
        span = OperatorSpan(phase.key, phase.name, state["start"],
                            state["end"],
                            busy=max(state["busy"].values(), default=0.0))
        return span, failures, dict(state["chunks"])

    def _guarded_node_proc(self, phase: PhaseSpec, node_index: int,
                           state: Dict, failures: Dict[int, BaseException]):
        try:
            yield from self._node_phase_proc(phase, node_index, None, None,
                                             state)
        except BaseException as err:
            if isinstance(err, Interrupt) or getattr(err, "is_fault", False):
                failures[node_index] = _fault_failure(
                    f"phase {phase.key!r} share on node {node_index}", err)
            else:
                raise

    def _node_phase_proc(self, phase: PhaseSpec, node_index: int,
                         in_q: Optional[ChunkQueue],
                         out_q: Optional[ChunkQueue],
                         span_state: Dict[str, float]):
        cluster = self.cluster
        sim = cluster.sim
        node = cluster.node(node_index)
        res = phase.per_node[node_index]

        if phase.startup_delay > 0:
            yield sim.timeout(phase.startup_delay)

        if res.memory_bytes > 0:
            try:
                node.memory.reserve(res.memory_bytes)
            except OutOfMemoryError as err:
                raise JobFailedError(
                    f"phase {phase.key!r} on {node.name}: {err}", err) from err
        try:
            if res.is_empty and in_q is None:
                # Nothing to do; still emit tokens downstream.
                self._touch_span(span_state, node_index)
                if out_q is not None:
                    for _ in range(self.chunks):
                        yield out_q.put()
                    out_q.close()
                return
            n = self.chunks
            chunk = res.scaled(1.0 / n)
            both_io = 0.0
            if res.disk_read_bytes > 0 and res.disk_write_bytes > 0:
                # Seek amplification grows with how much interleaved
                # traffic the spindle carries: more data per node means
                # more interference — why Flink's Tera Sort advantage
                # grows with cluster size (§VI-C).
                both_io = min(2.0, (res.disk_read_bytes +
                                    res.disk_write_bytes) / (32 * 2**30))
            busy = span_state["busy"]
            for i in range(n):
                if in_q is not None:
                    yield in_q.get()
                self._touch_span(span_state, node_index)
                t0 = sim.now
                if phase.anti_cyclic:
                    yield from self._chunk_anti_cyclic(node, chunk, both_io)
                else:
                    yield self._chunk_events(node, chunk, both_io)
                busy[node_index] = busy.get(node_index, 0.0) + sim.now - t0
                chunks = span_state["chunks"]
                chunks[node_index] = chunks.get(node_index, 0) + 1
                self._touch_span(span_state, node_index)
                if out_q is not None and not phase.blocking:
                    yield out_q.put()
            if out_q is not None:
                if phase.blocking:
                    for _ in range(n):
                        yield out_q.put()
                out_q.close()
        finally:
            if res.memory_bytes > 0:
                node.memory.release(res.memory_bytes)

    def _chunk_anti_cyclic(self, node: Node, chunk: PhaseResources,
                           both_io: bool):
        """Sort-buffer discipline: burn CPU filling/sorting the buffer,
        then drain it to disk with the CPU idle.  Only the phase's
        ``cyclic_disk_bytes`` alternate; everything else overlaps as
        usual."""
        yield self._chunk_events(node, chunk, both_io)
        if chunk.cyclic_disk_bytes > 0:
            yield self.cluster.fluid.transfer(
                chunk.cyclic_disk_bytes * self._jitter(), [node.disk])

    def _chunk_events(self, node: Node, chunk: PhaseResources,
                      both_io: float) -> Event:
        cluster = self.cluster
        fluid = cluster.fluid
        requests = []
        jitter = self._jitter()
        if chunk.cpu_core_seconds > 0:
            requests.append((chunk.cpu_core_seconds * jitter,
                             (node.cpu,), chunk.cpu_slots))
        io_factor = jitter
        if both_io > 0:
            # Reads and writes interleaving on one spindle: seek
            # amplification plus per-run variance (paper §VI-C).
            io_factor *= (1.0 + self.io_interference_penalty * both_io) * \
                self._run_io_factor
        if chunk.disk_read_bytes > 0:
            requests.append((chunk.disk_read_bytes * io_factor,
                             (node.disk,)))
        if chunk.disk_write_bytes > 0:
            requests.append((chunk.disk_write_bytes * io_factor,
                             (node.disk,)))
        if chunk.net_in_bytes > 0:
            requests.append((chunk.net_in_bytes * jitter,
                             (node.nic_in,)))
        if chunk.net_out_bytes > 0:
            requests.append((chunk.net_out_bytes * jitter,
                             (node.nic_out,)))
        # All the chunk's flows start at this same instant: one batched
        # solve instead of a reallocation per transfer (bit-identical —
        # nothing can observe the intermediate rates).
        events = fluid.transfer_many(requests) if requests else []
        if chunk.hdfs_write_bytes > 0:
            if self.hdfs is not None:
                events.append(self.hdfs.write_bytes(
                    node.index, chunk.hdfs_write_bytes,
                    replication=chunk.hdfs_replication))
            else:
                events.append(fluid.transfer(chunk.hdfs_write_bytes,
                                             [node.disk]))
        if not events:
            return cluster.sim.timeout(0.0)
        if len(events) == 1:
            # No barrier needed for a single flow; the caller ignores the
            # event value, and an AllOf over untriggered children consumes
            # no kernel sequence numbers, so this is trace-identical.
            return events[0]
        return cluster.sim.all_of(events)

    def _jitter(self) -> float:
        if self.jitter_sigma <= 0:
            return 1.0
        return float(self._rng.lognormal(0.0, self.jitter_sigma))

    def _touch_span(self, state: Dict[str, float],
                    node_index: Optional[int] = None) -> None:
        now = self.cluster.now
        if now < state["start"]:
            state["start"] = now
        if now > state["end"]:
            state["end"] = now
        windows = state.get("nodes")
        if windows is not None and node_index is not None:
            w = windows.get(node_index)
            if w is None:
                windows[node_index] = [now, now]
            else:
                if now < w[0]:
                    w[0] = now
                if now > w[1]:
                    w[1] = now
