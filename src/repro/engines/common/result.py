"""Engine run results: what one framework execution reports back.

An :class:`EngineRunResult` corresponds to one framework execution of
one workload (possibly several framework *jobs*, e.g. Flink's separate
vertex-count job in Page Rank).  It carries enough structure for every
figure in the paper: end-to-end duration, per-job durations (Table VII
separates *Load* from *Iter.*), operator spans (the plan panels) and a
failure record (Table VII's ``no`` entries).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .execution import JobResult, OperatorSpan

__all__ = ["EngineRunResult"]


@dataclass
class EngineRunResult:
    engine: str
    workload: str
    nodes: int
    success: bool
    start: float = 0.0
    end: float = math.nan
    jobs: List[JobResult] = field(default_factory=list)
    failure: Optional[str] = None
    #: ``"fault"`` when the failure came from injected fault machinery
    #: (retryable), ``"fatal"`` for modelling failures (OOM, missing
    #: buffers), ``None`` on success.
    failure_kind: Optional[str] = None
    #: Free-form counters (shuffled bytes, spilled bytes, gc factor...).
    metrics: Dict[str, float] = field(default_factory=dict)
    #: Kernel events dispatched by the deployment that produced this
    #: result (set by the harness runner; ``None`` when the result was
    #: built outside a simulated run).  Carried as a field — not a
    #: ``metrics`` entry — so digest payloads, which hash the metrics
    #: dict, are unaffected.
    sim_events: Optional[int] = None
    #: Physical barrier windows (start, end): one per executed stage on
    #: Spark (display spans may merge several); empty for pipelined
    #: Flink jobs.  Used by the failure-recovery analysis.
    stage_windows: List[tuple] = field(default_factory=list)

    @property
    def duration(self) -> float:
        if not self.success:
            return math.nan
        return self.end - self.start

    @property
    def spans(self) -> List[OperatorSpan]:
        return [span for job in self.jobs for span in job.spans]

    def job_duration(self, name: str) -> float:
        for job in self.jobs:
            if job.name == name:
                return job.duration
        raise KeyError(f"no job {name!r}; have {[j.name for j in self.jobs]}")

    def span(self, key: str) -> OperatorSpan:
        for s in self.spans:
            if s.key == key:
                return s
        raise KeyError(f"no span {key!r}; have {[s.key for s in self.spans]}")

    def describe(self) -> str:
        """One-line human summary, as the harness logs it."""
        if not self.success:
            return (f"{self.engine} {self.workload} on {self.nodes} nodes: "
                    f"FAILED ({self.failure})")
        return (f"{self.engine} {self.workload} on {self.nodes} nodes: "
                f"{self.duration:.1f}s in {len(self.jobs)} job(s)")
