"""Operator algebra, cost model and execution machinery shared by engines."""

from .costs import DEFAULT_COSTS, CostModel
from .execution import (ChunkQueue, JobFailedError, JobResult, OperatorSpan,
                        PhaseExecutor, PhaseResources, PhaseSpec,
                        uniform_resources)
from .operators import LogicalPlan, Op, OpKind, PlanValidationError
from .planning import Segment, combined_output, expected_distinct, split_segments
from .serialization import Serializer, SerializerProfile, serializer_profile
from .stats import DataStats

__all__ = [
    "ChunkQueue", "CostModel", "DEFAULT_COSTS", "DataStats",
    "JobFailedError", "JobResult", "LogicalPlan", "Op", "OpKind",
    "OperatorSpan", "PhaseExecutor", "PhaseResources", "PhaseSpec",
    "PlanValidationError", "Segment", "Serializer", "SerializerProfile",
    "combined_output", "expected_distinct", "serializer_profile",
    "split_segments", "uniform_resources",
]
