"""Logical dataflow operator algebra shared by both engines.

Workloads are written once, as :class:`LogicalPlan` objects — linear
chains of :class:`Op` nodes (with nested plans for iterations and side
inputs for joins/broadcasts), mirroring how the paper describes each
benchmark as a sequence of operators (Table I).  Engines compile these
plans into physical execution (stages or pipelines) and the cost model
prices each operator from the :class:`~repro.engines.common.stats.DataStats`
flowing through it.

Every operator name appearing in the paper's Table I exists here, so
the ``tab01`` benchmark can reproduce the operator matrix verbatim.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from .stats import DataStats

__all__ = ["OpKind", "Op", "LogicalPlan", "PlanValidationError"]


class PlanValidationError(ValueError):
    pass


class OpKind(enum.Enum):
    """Classification of logical operators.

    ``wide`` kinds repartition data by key and therefore imply a
    shuffle; ``action`` kinds return data to the driver.
    """

    SOURCE = "source"
    MAP = "map"
    FLAT_MAP = "flatMap"
    MAP_TO_PAIR = "mapToPair"
    MAP_PARTITIONS = "mapPartitions"
    FILTER = "filter"
    REDUCE_BY_KEY = "reduceByKey"
    GROUP_REDUCE = "groupReduce"          # Flink groupBy -> sum / reduce
    DISTINCT = "distinct"
    PARTITION = "partitionCustom"          # custom range/hash partitioning
    REPARTITION_SORT = "repartitionAndSortWithinPartitions"
    SORT_PARTITION = "sortPartition"
    COALESCE = "coalesce"
    JOIN = "join"
    CO_GROUP = "coGroup"
    COUNT = "count"
    COLLECT = "collect"
    COLLECT_AS_MAP = "collectAsMap"
    BROADCAST = "withBroadcastSet"
    BULK_ITERATION = "bulkIteration"
    DELTA_ITERATION = "deltaIteration"
    SINK = "sink"


#: Kinds whose input must be repartitioned across the cluster.
WIDE_KINDS = frozenset({
    OpKind.REDUCE_BY_KEY, OpKind.GROUP_REDUCE, OpKind.DISTINCT,
    OpKind.PARTITION, OpKind.REPARTITION_SORT, OpKind.JOIN,
    OpKind.CO_GROUP,
})

#: Kinds that terminate a job by returning data to the driver.
ACTION_KINDS = frozenset({
    OpKind.COUNT, OpKind.COLLECT, OpKind.COLLECT_AS_MAP,
})

#: Aggregating wide kinds that admit a map-side combiner.
COMBINABLE_KINDS = frozenset({
    OpKind.REDUCE_BY_KEY, OpKind.GROUP_REDUCE, OpKind.DISTINCT,
})


@dataclass
class Op:
    """One logical operator in a plan."""

    kind: OpKind
    name: str = ""
    #: records out / records in.
    selectivity: float = 1.0
    #: average record size out / in.
    bytes_ratio: float = 1.0
    #: Override of the cost model's per-core processing rate (bytes/s).
    cpu_rate: Optional[float] = None
    #: New distinct-key count introduced by this operator (0 = inherit).
    output_keys: float = 0.0
    #: Stats of a secondary input (joins, coGroups) or broadcast payload.
    side_input: Optional[DataStats] = None
    #: Nested plan executed repeatedly (iteration kinds only).
    body: Optional["LogicalPlan"] = None
    iterations: int = 0
    #: For delta iterations: fraction of the workset still active at
    #: iteration ``i`` (1-based).  Defaults to constant work (bulk).
    workset_activity: Optional[Callable[[int], float]] = None
    #: Spark only: persist this operator's output in the block manager
    #: (``rdd.cache()``); iterations then read it from memory.
    cached: bool = False
    #: Persistence level when ``cached``: MEMORY_ONLY evicted blocks are
    #: *recomputed* on a miss; MEMORY_AND_DISK blocks spill and are
    #: *re-read* — the "fine-grained control over the storage approach"
    #: the paper credits to Spark (§II-C).
    storage_level: str = "MEMORY_ONLY"
    #: Spark/GraphX only: the iteration materialises this operator's
    #: output to local disk each superstep (intermediate ranks).
    materialize_to_disk: bool = False
    #: Omit this operator from span labels (the paper's plan panels do
    #: not name every physical operator).
    hidden: bool = False
    #: Wide ops only: explicit partition count (GraphX edge partitions);
    #: engines otherwise use their configured default parallelism.
    partitions: Optional[int] = None
    #: Iteration-body heads only: whether this stage runs over the
    #: cached RDD's partitioning (GraphX triplet operations do; ops on
    #: derived message/rank RDDs repartition to default parallelism).
    use_cached_partitioning: bool = True
    #: Sinks only: HDFS replication of the written output (TeraSort
    #: conventionally writes replication 1); None = filesystem default.
    sink_replication: Optional[int] = None
    #: Records crossing this wide dependency are opaque binary blobs
    #: (TeraSort's OptimizedText / byte[]): generic serializers neither
    #: inflate nor burn CPU reflecting on them.
    binary_format: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            self.name = self.kind.value
        if not (0.0 <= self.selectivity):
            raise PlanValidationError(
                f"{self.name}: selectivity must be >= 0")
        if self.bytes_ratio <= 0:
            raise PlanValidationError(
                f"{self.name}: bytes_ratio must be positive")
        if self.kind in (OpKind.BULK_ITERATION, OpKind.DELTA_ITERATION):
            if self.body is None or self.iterations <= 0:
                raise PlanValidationError(
                    f"{self.name}: iteration operators need a body plan "
                    f"and a positive iteration count")
        elif self.body is not None:
            raise PlanValidationError(
                f"{self.name}: only iteration operators carry a body")

    @property
    def wide(self) -> bool:
        return self.kind in WIDE_KINDS

    @property
    def is_action(self) -> bool:
        return self.kind in ACTION_KINDS

    @property
    def is_iteration(self) -> bool:
        return self.kind in (OpKind.BULK_ITERATION, OpKind.DELTA_ITERATION)

    @property
    def combinable(self) -> bool:
        return self.kind in COMBINABLE_KINDS

    def apply_stats(self, stats: DataStats) -> DataStats:
        """Dataset statistics after this operator."""
        out = stats.scaled(self.selectivity, self.bytes_ratio)
        if self.output_keys:
            out = out.with_keys(self.output_keys)
        if self.kind in (OpKind.REDUCE_BY_KEY, OpKind.GROUP_REDUCE,
                         OpKind.DISTINCT):
            # Full aggregations emit one record per distinct key.
            out = out.combined_to_keys()
        if self.kind is OpKind.COUNT:
            out = DataStats(records=1.0, record_bytes=8.0)
        return out

    def __repr__(self) -> str:
        return f"Op({self.name})"


@dataclass
class LogicalPlan:
    """A linear chain of operators fed by one source dataset.

    The six paper workloads are linear modulo iterations (nested plans)
    and secondary inputs (attached per-operator), which keeps plan
    compilation simple without losing any of the paper's structure.
    """

    input_stats: DataStats
    ops: List[Op] = field(default_factory=list)
    name: str = "plan"
    #: Body plans (iteration steps) need no source/sink bracketing.
    body_plan: bool = False

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if not self.ops:
            raise PlanValidationError(f"{self.name}: plan has no operators")
        if self.body_plan:
            return
        if self.ops[0].kind is not OpKind.SOURCE:
            raise PlanValidationError(
                f"{self.name}: plans must start with a source")
        for op in self.ops[1:]:
            if op.kind is OpKind.SOURCE:
                raise PlanValidationError(
                    f"{self.name}: source must be the first operator")
        terminal = self.ops[-1]
        if not (terminal.kind is OpKind.SINK or terminal.is_action):
            raise PlanValidationError(
                f"{self.name}: plans must end with a sink or an action, "
                f"got {terminal.name}")
        for op in self.ops:
            if op.body is not None:
                op.body._validate_as_body()

    def _validate_as_body(self) -> None:
        if not self.ops:
            raise PlanValidationError(f"{self.name}: empty iteration body")

    # ------------------------------------------------------------------
    def stats_through(self) -> List[DataStats]:
        """Stats on every edge: entry ``i`` is the *input* of op ``i``.

        A final entry holds the plan's output stats.  Iteration bodies
        are priced per-superstep by the engines, not here.
        """
        edges = [self.input_stats]
        current = self.input_stats
        for op in self.ops:
            if op.kind is OpKind.SOURCE:
                edges.append(current)
                continue
            current = op.apply_stats(current)
            edges.append(current)
        return edges

    def operator_names(self) -> List[str]:
        return [op.name for op in self.ops]

    def wide_ops(self) -> List[Op]:
        return [op for op in self.ops if op.wide]

    def __repr__(self) -> str:
        chain = " -> ".join(op.name for op in self.ops)
        return f"LogicalPlan({self.name}: {chain})"


def linear_plan(name: str, input_stats: DataStats,
                ops: Sequence[Op]) -> LogicalPlan:
    """Convenience constructor used by the workloads."""
    return LogicalPlan(input_stats=input_stats, ops=list(ops), name=name)
