"""Dry-run plan explanation: what each engine *would* execute.

``explain(engine, plan)`` compiles a logical plan the way the engine's
scheduler/optimizer does — stage splitting and span merging for Spark,
chaining/pipelining and combiner injection for Flink — and renders the
physical structure without running the simulation.  This mirrors the
paper's methodology step "we plot the execution plan with different
parameter settings" (§V).
"""

from __future__ import annotations

from .operators import LogicalPlan, Op, OpKind
from .planning import chain_label, combined_output, split_segments

__all__ = ["explain_spark", "explain_flink"]


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if n < 1024 or unit == "TiB":
            return f"{n:.1f} {unit}"
        n /= 1024
    return f"{n:.1f} TiB"


def explain_spark(plan: LogicalPlan, config, costs, num_nodes: int,
                  hdfs_block_size: float) -> str:
    """Describe the staged execution Spark's DAG scheduler would build."""
    from ..spark.shuffle import plan_shuffle

    lines = [f"== Spark physical plan: {plan.name} "
             f"({num_nodes} nodes, parallelism "
             f"{config.default_parallelism})"]
    stage_no = 0

    def emit_segments(segments, indent: str, scale: float = 1.0) -> None:
        nonlocal stage_no
        for si, segment in enumerate(segments):
            if segment.head.is_iteration:
                it = segment.head
                lines.append(f"{indent}loop x{it.iterations} "
                             f"(unrolled: new tasks every iteration):")
                emit_segments(split_segments(it.body), indent + "  ")
                continue
            stage_no += 1
            compute = [op for op in segment.ops
                       if op.kind is not OpKind.SINK and not op.is_action]
            label = chain_label(compute) or "shuffle"
            if segment.starts_with_shuffle:
                tasks = segment.head.partitions or config.default_parallelism
                src = "shuffle read"
            elif segment.head.kind is OpKind.SOURCE:
                tasks = max(1, int(segment.input_stats.total_bytes //
                                   hdfs_block_size))
                src = "HDFS scan"
            else:
                tasks = config.default_parallelism
                src = "parent RDD"
            lines.append(f"{indent}stage {stage_no}: {label} "
                         f"[{tasks} tasks, input: {src}]")
            next_seg = segments[si + 1] if si + 1 < len(segments) else None
            if next_seg is not None and next_seg.head.wide:
                wide = next_seg.head
                data = segment.out_stats
                if wide.combinable:
                    data = combined_output(
                        data, max(tasks, 1),
                        pair_bytes=data.record_bytes * wide.bytes_ratio)
                spec = plan_shuffle(data, config, costs, num_nodes,
                                    binary=wide.binary_format)
                combine = " (map-side combine)" if wide.combinable else ""
                lines.append(f"{indent}  -> shuffle write "
                             f"{_fmt_bytes(spec.wire_bytes)}{combine}, "
                             f"barrier")
            for op in segment.ops:
                if op.kind is OpKind.SINK:
                    lines.append(f"{indent}  -> action: save ({op.name})")
                elif op.is_action:
                    lines.append(f"{indent}  -> action: {op.name} "
                                 f"(driver collects)")
                if op.cached:
                    lines.append(f"{indent}  -> persist: {op.name} "
                                 f"(MEMORY, block manager)")
    emit_segments(split_segments(plan), "  ")
    return "\n".join(lines)


def explain_flink(plan: LogicalPlan, config, num_nodes: int) -> str:
    """Describe the pipelined job graph Flink's optimizer would build."""
    slots = max(1, -(-config.default_parallelism // num_nodes))
    lines = [f"== Flink job graph: {plan.name} "
             f"({num_nodes} nodes, parallelism "
             f"{config.default_parallelism}, {slots} slots/node, "
             f"{config.network_buffers} network buffers)"]

    def emit_segments(segments, indent: str) -> None:
        for si, segment in enumerate(segments):
            if segment.head.is_iteration:
                it = segment.head
                native = ("delta iteration (shrinking workset)"
                          if it.kind is OpKind.DELTA_ITERATION
                          else "bulk iteration (cyclic dataflow)")
                lines.append(f"{indent}{native} x{it.iterations}, "
                             f"scheduled once:")
                emit_segments(split_segments(it.body), indent + "  ")
                continue
            compute = [op for op in segment.ops
                       if op.kind is not OpKind.SINK and not op.is_action]
            next_seg = segments[si + 1] if si + 1 < len(segments) else None
            tail = None
            if next_seg is not None and next_seg.head.combinable:
                tail = "GroupCombine"
            label = chain_label(compute, extra_tail=tail) or "chain"
            coupling = ("| shuffle (pipelined over network buffers)"
                        if segment.starts_with_shuffle else "| chained")
            lines.append(f"{indent}{label} {coupling}")
            if tail:
                lines.append(f"{indent}  (optimizer chained a sort-based "
                             f"combiner)")
            for op in segment.ops:
                if op.kind is OpKind.SINK or op.is_action:
                    lines.append(f"{indent}DataSink ({op.name}) | chained")
    emit_segments(split_segments(plan), "  ")
    return "\n".join(lines)
