"""Statistical descriptors of distributed datasets.

The simulator never materialises records at cluster scale; each edge of
a logical plan carries a :class:`DataStats` describing the stream that
would flow there — record count, average record size, number of
distinct keys (for aggregations) — exactly the statistics a cost-based
optimizer reasons about.  Operators transform stats; cost models read
them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["DataStats"]


@dataclass(frozen=True)
class DataStats:
    """Size and shape of a (simulated) distributed dataset."""

    records: float
    record_bytes: float
    key_cardinality: float = 0.0

    def __post_init__(self) -> None:
        if self.records < 0:
            raise ValueError(f"records must be >= 0, got {self.records}")
        if self.record_bytes < 0:
            raise ValueError(
                f"record_bytes must be >= 0, got {self.record_bytes}")
        if self.key_cardinality < 0:
            raise ValueError(
                f"key_cardinality must be >= 0, got {self.key_cardinality}")

    @property
    def total_bytes(self) -> float:
        return self.records * self.record_bytes

    @classmethod
    def from_bytes(cls, total_bytes: float, record_bytes: float,
                   key_cardinality: float = 0.0) -> "DataStats":
        if record_bytes <= 0:
            raise ValueError("record_bytes must be positive")
        return cls(records=total_bytes / record_bytes,
                   record_bytes=record_bytes,
                   key_cardinality=key_cardinality)

    def scaled(self, record_factor: float = 1.0,
               bytes_factor: float = 1.0) -> "DataStats":
        """Apply an operator's selectivity / byte-ratio."""
        return replace(
            self,
            records=self.records * record_factor,
            record_bytes=self.record_bytes * bytes_factor,
            key_cardinality=min(self.key_cardinality,
                                self.records * record_factor)
            if self.key_cardinality else 0.0,
        )

    def with_keys(self, key_cardinality: float) -> "DataStats":
        return replace(self, key_cardinality=key_cardinality)

    def combined_to_keys(self) -> "DataStats":
        """Collapse to one record per distinct key (a full aggregation)."""
        if self.key_cardinality <= 0:
            return self
        return replace(self, records=min(self.records, self.key_cardinality))
