"""Calibration constants for the mechanistic cost model.

Every constant here is a *mechanism-level* parameter (how fast one core
tokenizes text, how much a combiner shrinks Word Count data, how long
launching one Spark task takes).  The figure-level outcomes of the
paper — who wins, by how much, where the crossovers fall — are never
encoded directly; they emerge from these constants flowing through the
engines' different execution structures.

Rates are bytes/second/core of *input* consumed by the operator and are
calibrated so the headline runs land near the paper's absolute numbers
(Word Count 768 GB / 32 nodes ≈ 543 s Flink vs 572 s Spark; Tera Sort
3.5 TB / 55 nodes ≈ 4669 s vs 5079 s; see EXPERIMENTS.md).  They are
plausible for JVM record-at-a-time processing on 2015-era Xeons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .operators import OpKind

__all__ = ["CostModel", "DEFAULT_COSTS", "MiB"]

MiB = float(2**20)


@dataclass(frozen=True)
class CostModel:
    """All tunable constants of the performance model."""

    # ------------------------------------------------------------------
    # Per-operator processing rates (bytes/s per core of operator input).
    # ------------------------------------------------------------------
    op_rates: Dict[OpKind, float] = field(default_factory=lambda: {
        # Tokenising text into words dominates Word Count's map side.
        OpKind.FLAT_MAP: 7.0 * MiB,
        OpKind.MAP: 45.0 * MiB,
        OpKind.MAP_TO_PAIR: 40.0 * MiB,
        OpKind.MAP_PARTITIONS: 45.0 * MiB,
        # Substring/regex matching per line (includes line framing /
        # text decoding, which dominates at HDFS scan rates).
        OpKind.FILTER: 6.0 * MiB,
        # Sort-based aggregation of (word, count) pairs: buffer fill,
        # quicksort, merge.  Charged on combiner input.
        OpKind.REDUCE_BY_KEY: 10.0 * MiB,
        OpKind.GROUP_REDUCE: 10.0 * MiB,
        OpKind.DISTINCT: 14.0 * MiB,
        # Assigning records to range/hash partitions + serialisation.
        OpKind.PARTITION: 30.0 * MiB,
        OpKind.REPARTITION_SORT: 9.0 * MiB,
        OpKind.SORT_PARTITION: 9.0 * MiB,
        OpKind.COALESCE: 200.0 * MiB,
        OpKind.JOIN: 14.0 * MiB,
        OpKind.CO_GROUP: 12.0 * MiB,
        OpKind.COUNT: 400.0 * MiB,
        OpKind.COLLECT: 100.0 * MiB,
        OpKind.COLLECT_AS_MAP: 100.0 * MiB,
        OpKind.BROADCAST: 200.0 * MiB,
        OpKind.SINK: 80.0 * MiB,
    })

    def rate_for(self, kind: OpKind, override: Optional[float] = None) -> float:
        if override is not None:
            return override
        try:
            return self.op_rates[kind]
        except KeyError:
            raise KeyError(f"no processing rate defined for {kind}") from None

    # ------------------------------------------------------------------
    # Scheduling overheads (seconds).
    # ------------------------------------------------------------------
    #: Driver-side cost to launch one Spark task (serialise closure,
    #: RPC, executor deserialise).  Spark's loop-unrolled iterations pay
    #: this for every task of every iteration (paper §II-C).
    spark_task_launch: float = 0.004
    #: Fixed driver overhead per Spark stage (DAG scheduling, commit).
    spark_stage_overhead: float = 0.35
    #: Driver cost of collect()-style actions per node contacted.
    spark_collect_per_node: float = 0.05
    #: Output-committer cost per task (rename/commit of one part file,
    #: serialised at the driver).  With 1024 reduce tasks this is the
    #: ~11 s SaveAsTextFile span of Fig. 3; Flink's pipelined sink has
    #: no equivalent barrier.
    spark_output_commit_per_task: float = 0.008
    #: Flink job-graph deployment: paid once per job, not per iteration
    #: ("operators are just scheduled once").
    flink_job_deploy: float = 0.8
    #: Superstep synchronisation barrier of Flink's iteration runtime.
    flink_superstep_sync: float = 0.12
    #: Flink 0.10's count() funnels records through a single-slot
    #: accumulator; effective per-core rate of that tail (bytes/s).
    flink_count_rate: float = 9.0 * MiB
    #: Record-at-a-time pipeline overhead of Flink 0.10's runtime
    #: (chained UDF dispatch + network-buffer copies on every hop),
    #: as a CPU multiplier on operator work.  Calibrated against the
    #: Word Count / Grep absolute times; Spark pays instead via GC,
    #: serializer and partition-imbalance terms.
    flink_pipeline_cpu_overhead: float = 1.08

    # ------------------------------------------------------------------
    # Memory / GC model.
    # ------------------------------------------------------------------
    #: Extra CPU per unit work at full heap: factor = 1 + coeff * occ^2.
    #: Large JVMs "overwhelmed with 1000s of new objects ... suffer from
    #: the overhead of garbage collection" (paper §VIII).
    gc_pressure_coeff: float = 0.55
    #: Spark keeps deserialised heap objects; Flink keeps packed binary
    #: pages in managed memory.  Heap expansion of object form vs
    #: binary ("Java objects increase the space overhead").
    java_object_expansion: float = 2.2
    flink_managed_page_overhead: float = 1.05

    # ------------------------------------------------------------------
    # Shuffle / network.
    # ------------------------------------------------------------------
    #: Spark compresses map outputs (spark.shuffle.compress=true) - the
    #: reason Spark "uses less network" in Fig. 9.
    spark_shuffle_compression_ratio: float = 0.55
    #: CPU cost of compressing/decompressing one byte (LZ4-class).
    compression_rate: float = 260.0 * MiB
    #: Base rate of the fastest serializer (bytes/s/core); a stack's
    #: effective rate is this divided by its profile's cpu_factor.
    serialization_rate: float = 220.0 * MiB
    #: Load imbalance across partitions: the straggler slot carries
    #: ``1 + coeff * sqrt(total_cores / partitions)`` of the mean work.
    #: More partitions balance better (the paper's observed 10% penalty
    #: at parallelism = 2 x cores), at the price of per-task overheads.
    partition_imbalance_coeff: float = 0.18

    # ------------------------------------------------------------------
    # Graph processing (§VI-E).
    # ------------------------------------------------------------------
    #: GraphX load: per-task heap working set is the edge partition in
    #: object form; the task dies when it exceeds its execution budget.
    graphx_task_budget_fraction: float = 0.67
    #: In-memory bytes per edge of Flink's vertex-centric iteration
    #: state (solution set + adjacency held by the CoGroup).
    flink_iteration_edge_state_bytes: float = 40.0
    #: Fraction of managed memory each active task slot pins for its
    #: own sorter/hash buffers, unavailable to the CoGroup solution
    #: set.  This is why reducing Flink's parallelism at 97 nodes let
    #: the Large graph run: fewer slots -> more memory per CoGroup.
    flink_per_slot_memory_fraction: float = 0.04
    #: Fraction of shuffle data that stays node-local (1/N leaves out).
    # (computed per run from the node count)

    # ------------------------------------------------------------------
    # Stochastic jitter.
    # ------------------------------------------------------------------
    #: Sigma of the lognormal multiplier applied per chunk of work.
    jitter_sigma: float = 0.03
    #: Additional jitter on disk chunks when reads and writes interleave
    #: on the same spindle (seek amplification).  Flink's pipelined
    #: execution triggers this constantly; Spark's staged execution
    #: mostly separates the two - the paper's explanation for Flink's
    #: higher Tera Sort variance.
    io_interference_sigma: float = 0.16
    io_interference_penalty: float = 0.35

    def gc_factor(self, heap_occupancy: float) -> float:
        """CPU multiplier from garbage-collection pressure."""
        occ = min(max(heap_occupancy, 0.0), 1.2)
        return 1.0 + self.gc_pressure_coeff * occ * occ


#: The canonical calibrated instance used throughout the library.
DEFAULT_COSTS = CostModel()
