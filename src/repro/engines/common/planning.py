"""Plan analysis shared by both engine compilers.

Splits a :class:`~repro.engines.common.operators.LogicalPlan` into
*segments*: maximal chains of narrow operators.  A wide operator starts
a new segment (it executes on the receiving side of its shuffle), which
is precisely Spark's stage boundary; Flink keeps the same segments but
couples them with pipelined queues instead of barriers.

Also provides the statistics helpers the cost models share, e.g. the
expected number of distinct keys in a partition (which determines how
much a map-side combiner shrinks the data).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from .operators import LogicalPlan, Op, OpKind
from .stats import DataStats

__all__ = ["Segment", "split_segments", "expected_distinct",
           "combined_output", "chain_label", "chain_key"]


def chain_label(ops, extra_tail: Optional[str] = None) -> str:
    """Display label of an operator chain, skipping hidden ops."""
    names = [op.name for op in ops if not op.hidden and op.name]
    if extra_tail:
        names.append(extra_tail)
    return "->".join(names)


def chain_key(label: str) -> str:
    """Short figure key: initials of the chain parts (``DC``, ``SSW``)."""
    return "".join(p[0] for p in label.split("->") if p)


@dataclass
class Segment:
    """A maximal narrow chain; ``ops[0]`` may be the wide op that heads it."""

    ops: List[Op] = field(default_factory=list)
    #: Stats entering each op (parallel to ``ops``).
    in_stats: List[DataStats] = field(default_factory=list)
    #: Stats leaving the segment.
    out_stats: Optional[DataStats] = None
    #: The segment begins by reading a shuffle produced upstream.
    starts_with_shuffle: bool = False

    @property
    def head(self) -> Op:
        return self.ops[0]

    @property
    def input_stats(self) -> DataStats:
        return self.in_stats[0]

    def display_name(self, extra_tail: Optional[str] = None,
                     rename: Optional[dict] = None) -> str:
        names = []
        for op in self.ops:
            if op.hidden:
                continue
            label = (rename or {}).get(op.name, op.name)
            names.append(label)
        if extra_tail:
            names.append(extra_tail)
        return "->".join(names)

    def key(self) -> str:
        """Short label: initials of the display chain (e.g. ``DC``)."""
        parts = self.display_name().split("->")
        return "".join(p[0] for p in parts if p)

    def contains_kind(self, kind: OpKind) -> bool:
        return any(op.kind is kind for op in self.ops)

    def __repr__(self) -> str:
        return f"Segment({self.display_name()})"


def split_segments(plan: LogicalPlan) -> List[Segment]:
    """Cut the plan at wide-operator boundaries.

    Iteration operators terminate the preceding segment and appear as a
    single-op segment of their own (engines expand their bodies
    recursively with engine-specific iteration semantics).
    """
    segments: List[Segment] = []
    current = Segment()
    stats = plan.input_stats
    for op in plan.ops:
        boundary = op.wide or op.is_iteration
        if boundary and current.ops:
            current.out_stats = stats
            segments.append(current)
            current = Segment(starts_with_shuffle=op.wide)
        elif op.wide and not current.ops:
            # A body plan may open directly with a wide op: the workset
            # still repartitions across the cluster every superstep.
            current.starts_with_shuffle = True
        current.ops.append(op)
        current.in_stats.append(stats)
        if op.kind is not OpKind.SOURCE:
            stats = op.apply_stats(stats)
        if op.is_iteration:
            current.out_stats = stats
            segments.append(current)
            current = Segment()
    if current.ops:
        current.out_stats = stats
        segments.append(current)
    return segments


def expected_distinct(records: float, keys: float) -> float:
    """Expected number of distinct keys among ``records`` uniform draws.

    Standard occupancy formula ``K * (1 - exp(-n/K))``.  Real text is
    Zipf-distributed, which only sharpens the collapse, so this is a
    conservative estimate of how well a combiner works.
    """
    if keys <= 0 or records <= 0:
        return 0.0
    if records / keys > 50:
        return keys
    return min(records, keys * -math.expm1(-records / keys))


def combined_output(stats: DataStats, partitions: int,
                    pair_bytes: float) -> DataStats:
    """Stats after a map-side combiner running in ``partitions`` pieces.

    Each map partition emits at most one record per distinct key *it
    saw*; across partitions duplicates remain (they are merged on the
    reduce side).
    """
    if partitions <= 0:
        raise ValueError("partitions must be positive")
    if stats.key_cardinality <= 0:
        return stats  # nothing known about keys: combiner can not shrink
    per_partition = stats.records / partitions
    distinct = expected_distinct(per_partition, stats.key_cardinality)
    total = min(stats.records, distinct * partitions)
    return DataStats(records=total, record_bytes=pair_bytes,
                     key_cardinality=stats.key_cardinality)
