"""Serializer cost models (paper §IV-D).

Serialization is one of the four parameter groups the paper singles
out.  Flink "peeks into the user data types … and exploits this
information for better internal serialization; hence, no configuration
is needed"; Spark defaults to Java serialization and can be switched to
Kryo, "which can be more efficient, trading speed for CPU cycles".

We model a serializer as two multipliers applied wherever records cross
a process/disk/network boundary:

* ``cpu_factor``   — extra CPU per serialized byte (1.0 = Flink's
  type-specialised serializer, the fastest of the three);
* ``bytes_factor`` — on-the-wire size inflation relative to the
  type-specialised binary encoding (Java object streams carry class
  descriptors and references).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Serializer", "SerializerProfile", "serializer_profile"]


class Serializer(enum.Enum):
    """The three serialization stacks that appear in the paper."""

    JAVA = "java"              # Spark default (spark.serializer)
    KRYO = "kryo"              # Spark optional, via the Kryo library
    FLINK_TYPED = "flink"      # Flink TypeInformation-based serializers


@dataclass(frozen=True)
class SerializerProfile:
    serializer: Serializer
    cpu_factor: float
    bytes_factor: float

    def __post_init__(self) -> None:
        if self.cpu_factor < 1.0:
            raise ValueError("cpu_factor is relative to the fastest stack "
                             "and must be >= 1.0")
        if self.bytes_factor < 1.0:
            raise ValueError("bytes_factor must be >= 1.0")


_PROFILES = {
    # Baseline: Flink's type-specialised serializers write compact binary
    # and avoid reflection entirely.
    Serializer.FLINK_TYPED: SerializerProfile(Serializer.FLINK_TYPED, 1.0, 1.0),
    # Kryo: registration-based, compact, but still generic-path dispatch.
    Serializer.KRYO: SerializerProfile(Serializer.KRYO, 1.20, 1.10),
    # Java object serialization: reflection + verbose stream format.  The
    # paper compensated by giving Spark more memory "because of its use
    # of the Java serializer".
    Serializer.JAVA: SerializerProfile(Serializer.JAVA, 1.55, 1.45),
}


def serializer_profile(serializer: Serializer) -> SerializerProfile:
    return _PROFILES[serializer]
