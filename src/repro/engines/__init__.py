"""Engine models: Spark (staged) and Flink (pipelined) on one substrate."""

from .common.result import EngineRunResult

__all__ = ["EngineRunResult"]
