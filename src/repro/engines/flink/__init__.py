"""The simulated Apache Flink 0.10 engine."""

from .engine import FlinkEngine
from .memory import FlinkMemoryModel

__all__ = ["FlinkEngine", "FlinkMemoryModel"]
