"""Flink's managed-memory model.

Flink 0.10 allocates a fixed fraction of each task manager's memory as
*managed memory* — binary pages used for sorting, hash tables and
caching of intermediate results, optionally off-heap.  "Most of the
operators are implemented so that they can survive with very little
memory (spilling to disk when necessary)" (paper §VIII) — except the
delta-iteration CoGroup, whose solution set is memory-resident and
killed the Large-graph runs at 27 and 44 nodes (Table VII).

:class:`FlinkMemoryModel` answers three questions per node:

* how much sort/hash spill a given working set causes;
* whether an iteration's solution set fits next to the per-slot
  operator buffers (the reason reduced parallelism saved the 97-node
  run);
* the (small) GC factor — Flink keeps data as packed binary pages, so
  heap-object pressure is low, lower still off-heap.
"""

from __future__ import annotations

from ...config.parameters import FlinkConfig
from ..common.costs import CostModel
from ..common.execution import JobFailedError

__all__ = ["FlinkMemoryModel"]


class FlinkMemoryModel:
    """Per-node view of one task manager's memory."""

    def __init__(self, config: FlinkConfig, costs: CostModel,
                 num_nodes: int) -> None:
        self.config = config
        self.costs = costs
        self.num_nodes = num_nodes

    # ------------------------------------------------------------------
    @property
    def managed_per_node(self) -> float:
        return self.config.managed_memory

    def sort_budget_per_node(self) -> float:
        """Managed pages available to one node's sorters (half of the
        managed pool; the rest serves hash tables and caching)."""
        return self.managed_per_node * 0.5

    def spill_bytes(self, working_set_per_node: float) -> float:
        """Bytes written *and re-read* when a sort overflows memory."""
        overflow = max(0.0, working_set_per_node - self.sort_budget_per_node())
        return overflow

    # ------------------------------------------------------------------
    def check_iteration_state(self, state_bytes_total: float,
                              slots_used_per_node: int,
                              context: str) -> None:
        """Fail like FLINK-2250 if the solution set cannot stay resident.

        Every active slot pins a fraction of the managed pool for its
        own sorter/hash buffers; the solution set must fit in what
        remains.
        """
        reserved = (slots_used_per_node *
                    self.costs.flink_per_slot_memory_fraction *
                    self.managed_per_node)
        available = self.managed_per_node - reserved
        per_node = state_bytes_total / self.num_nodes
        if per_node > available:
            raise JobFailedError(
                f"{context}: CoGroup solution set needs "
                f"{per_node / 2**30:.1f} GiB per node but only "
                f"{max(available, 0) / 2**30:.1f} GiB of managed memory "
                f"remains beside {slots_used_per_node} slot buffers; "
                f"the solution set is computed in memory and cannot "
                f"spill (see FLINK-2250 discussion in the paper)")

    def audit(self) -> list:
        """Return invariant-violation strings (empty when consistent).

        Flink's model is stateless, so the audit checks configuration
        consistency: the managed pool and sort budget are non-negative,
        the sort budget fits inside the managed pool, and spill volume
        is zero for working sets within budget.
        """
        problems = []
        if self.managed_per_node < 0:
            problems.append(
                f"flink managed memory negative: {self.managed_per_node}")
        budget = self.sort_budget_per_node()
        if budget < 0 or budget > self.managed_per_node * (1.0 + 1e-9):
            problems.append(
                f"flink sort budget {budget} outside "
                f"[0, {self.managed_per_node}]")
        if self.spill_bytes(budget) > 1e-6:
            problems.append(
                "flink spill model: in-budget working set reports "
                f"{self.spill_bytes(budget)} spilled bytes")
        return problems

    # ------------------------------------------------------------------
    def gc_cpu_factor(self, working_set_per_node: float) -> float:
        """Flink stores data in its dedicated memory region, so the JVM
        heap holds few objects; off-heap mode shrinks it further."""
        heap = self.config.heap_memory
        if heap <= 0:
            return 1.0
        object_share = 0.10 if self.config.off_heap else 0.30
        occupancy = min(1.0, working_set_per_node * object_share / heap)
        # Quarter of Spark's pressure curve: binary pages, not objects.
        return 1.0 + 0.25 * self.costs.gc_pressure_coeff * occupancy ** 2
