"""The Flink 0.10 execution model.

Flink compiles the whole program into one job graph, schedules it
*once*, and streams data between operators through network buffers —
"data is flowing in cycles around the operators within an iteration"
(paper §II-C).  The executable differences from Spark, each of which
the paper ties to an observed result:

* **pipelined execution**: consecutive operator groups are coupled by
  bounded chunk queues instead of stage barriers (single-stage Tera
  Sort timeline, Fig. 9 left; also the source of disk read/write
  interference and run-to-run variance, §VI-C);
* **sort-based combiner**: grouping collects records in a managed
  buffer and sorts it when full — the anti-cyclic CPU/disk pattern of
  Fig. 3 — implemented here as a blocking-free phase whose disk spills
  alternate with CPU;
* **native iterations**: bulk iterations re-run the pipeline body with
  only a superstep barrier between rounds; delta iterations shrink the
  workset per round (``workset_activity``), "the work in each iteration
  decreases as the number of iterations goes on";
* **managed memory**: operators spill instead of dying — except the
  iteration CoGroup solution set (Table VII), checked before launch;
* **mandatory resources**: the job fails up front when parallelism
  exceeds task slots or the configured network buffers cannot hold the
  shuffle fan-out, both reported verbatim in the paper.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ...cluster.topology import Cluster
from ...config.parameters import FlinkConfig
from ...hdfs.filesystem import HDFS
from ..common.costs import DEFAULT_COSTS, CostModel
from ..common.execution import (JobFailedError, JobResult, OperatorSpan,
                                PhaseExecutor, PhaseSpec, uniform_resources)
from ..common.operators import LogicalPlan, Op, OpKind
from ..common.planning import (Segment, chain_key, chain_label,
                               combined_output, split_segments)
from ..common.result import EngineRunResult
from ..common.serialization import Serializer, serializer_profile
from ..common.stats import DataStats
from .memory import FlinkMemoryModel

__all__ = ["FlinkEngine"]


class FlinkEngine:
    """Simulated Flink 0.10.2 standalone deployment."""

    name = "flink"

    def __init__(self, cluster: Cluster, hdfs: HDFS, config: FlinkConfig,
                 costs: CostModel = DEFAULT_COSTS,
                 chunks_per_phase: int = 12) -> None:
        self.cluster = cluster
        self.hdfs = hdfs
        self.config = config
        self.costs = costs
        self.memory = FlinkMemoryModel(config, costs, cluster.num_nodes)
        self.executor = PhaseExecutor(
            cluster, hdfs, chunks_per_phase=chunks_per_phase,
            queue_depth=self._queue_depth(),
            jitter_sigma=costs.jitter_sigma,
            io_interference_sigma=costs.io_interference_sigma,
            io_interference_penalty=costs.io_interference_penalty,
        )
        self.metrics = {"shuffle_wire_bytes": 0.0, "spill_bytes": 0.0,
                        "supersteps": 0.0}
        self.profile = serializer_profile(Serializer.FLINK_TYPED)

    def _queue_depth(self) -> int:
        """Pipeline depth sustained by the configured network buffers.

        Plentiful buffers let more chunks be in flight between producer
        and consumer; scarce (but sufficient) buffers throttle the
        pipeline to lock-step.
        """
        per_link = self.config.network_buffers / max(
            1, self.config.default_parallelism * 8)
        return max(1, min(4, int(per_link)))

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, plan: LogicalPlan) -> EngineRunResult:
        result = EngineRunResult(engine=self.name, workload=plan.name,
                                 nodes=self.cluster.num_nodes, success=True,
                                 start=self.cluster.now)
        try:
            self._preflight(plan)
            self.cluster.run_process(self._job(plan, result))
            result.end = self.cluster.now
        except JobFailedError as err:
            result.success = False
            result.failure = str(err)
            result.failure_kind = "fault" if err.is_fault else "fatal"
            result.end = self.cluster.now
        result.metrics.update(self.metrics)
        return result

    def explain(self, plan: LogicalPlan) -> str:
        """Describe the pipelined job graph the optimizer would build,
        without executing anything."""
        from ..common.explain import explain_flink
        return explain_flink(plan, self.config, self.cluster.num_nodes)

    # ------------------------------------------------------------------
    # pre-flight checks (Flink fails fast on misconfiguration)
    # ------------------------------------------------------------------
    def _preflight(self, plan: LogicalPlan) -> None:
        n = self.cluster.num_nodes
        slots_needed = math.ceil(self.config.default_parallelism / n)
        if slots_needed > self.config.task_slots:
            raise JobFailedError(
                f"insufficient task slots: parallelism "
                f"{self.config.default_parallelism} needs {slots_needed} "
                f"slots/node but only {self.config.task_slots} configured")
        shuffles = self._count_shuffles(plan)
        if shuffles:
            required = (self.slots_per_node * self.config.default_parallelism
                        * shuffles)
            if required > self.config.network_buffers:
                raise JobFailedError(
                    f"insufficient network buffers: job needs ~{required} "
                    f"but taskmanager.network.numberOfBuffers={self.config.network_buffers}; "
                    f"increase flink.nw.buffers (the paper had to)")
        # Iteration solution-set residency (Table VII).
        for op in plan.ops:
            if op.is_iteration and op.side_input is not None and op.body \
                    and any(b.kind is OpKind.CO_GROUP for b in op.body.ops):
                state = (op.side_input.records *
                         self.costs.flink_iteration_edge_state_bytes)
                self.memory.check_iteration_state(
                    state, self.slots_per_node,
                    context=f"{plan.name}:{op.name}")

    @property
    def slots_per_node(self) -> int:
        return max(1, math.ceil(self.config.default_parallelism /
                                self.cluster.num_nodes))

    @staticmethod
    def _count_shuffles(plan: LogicalPlan) -> int:
        count = sum(1 for op in plan.ops if op.wide)
        for op in plan.ops:
            if op.body is not None:
                count += sum(1 for b in op.body.ops if b.wide)
        return count

    # ------------------------------------------------------------------
    # job execution
    # ------------------------------------------------------------------
    def _job(self, plan: LogicalPlan, result: EngineRunResult):
        tracer = self.cluster.tracer
        # The deploy delay is part of the (single) job: Flink schedules
        # the whole graph once.
        job_span = (tracer.begin("job", plan.name, self.cluster.now)
                    if tracer is not None else None)
        yield self.cluster.sim.timeout(self.costs.flink_job_deploy)
        segments = split_segments(plan)
        job_start = self.cluster.now
        spans: List[OperatorSpan] = []

        # Split the pipeline at iteration operators: phases before an
        # iteration pipeline together, the iteration runs its own loop,
        # phases after pipeline together again.
        groups: List[List[Segment]] = [[]]
        for seg in segments:
            if seg.head.is_iteration:
                groups.append([seg])
                groups.append([])
            else:
                groups[-1].append(seg)

        for gi, group in enumerate(groups):
            if not group:
                continue
            if group[0].head.is_iteration:
                yield from self._run_iteration(group[0].head, spans)
            else:
                stage_span = None
                if tracer is not None:
                    stage_span = tracer.begin(
                        "stage", f"pipeline-{gi}", self.cluster.now)
                phases = self._compile_pipeline(group)
                job = yield from self.executor.run_pipelined(
                    plan.name, phases)
                spans.extend(job.spans)
                if tracer is not None:
                    tracer.end(stage_span, self.cluster.now)
        result.jobs.append(JobResult(name=plan.name, start=job_start,
                                     end=self.cluster.now, spans=spans))
        if tracer is not None:
            tracer.end(job_span, self.cluster.now)

    # ------------------------------------------------------------------
    # pipeline compilation
    # ------------------------------------------------------------------
    def _compile_pipeline(self, segments: List[Segment],
                          scale: float = 1.0,
                          in_memory_input: bool = False) -> List[PhaseSpec]:
        """Compile narrow-chain segments into coupled pipelined phases."""
        phases: List[PhaseSpec] = []
        for si, segment in enumerate(segments):
            next_wide = None
            if si + 1 < len(segments) and segments[si + 1].head.wide:
                next_wide = segments[si + 1].head
            subs = self._split_at_sort(segment)
            for sub_i, sub in enumerate(subs):
                phases.extend(self._compile_segment(
                    sub, next_wide if sub_i == len(subs) - 1 else None,
                    scale,
                    in_memory_input=in_memory_input and si == 0
                    and sub_i == 0))
        return phases

    @staticmethod
    def _split_at_sort(segment: Segment) -> List[Segment]:
        """A sortPartition is its own operator in Flink's plan (the
        ``SM=Sort-Partition->Map`` span of Fig. 9): cut the chain there
        so the sorter appears as a separate, pipelined-but-blocking
        phase."""
        cut = next((i for i, op in enumerate(segment.ops)
                    if op.kind is OpKind.SORT_PARTITION and i > 0), None)
        if cut is None:
            return [segment]
        first = Segment(ops=segment.ops[:cut],
                        in_stats=segment.in_stats[:cut],
                        out_stats=segment.in_stats[cut],
                        starts_with_shuffle=segment.starts_with_shuffle)
        second = Segment(ops=segment.ops[cut:],
                         in_stats=segment.in_stats[cut:],
                         out_stats=segment.out_stats,
                         starts_with_shuffle=False)
        return [first, second]

    def _compile_segment(self, segment: Segment, next_wide: Optional[Op],
                         scale: float, in_memory_input: bool = False
                         ) -> List[PhaseSpec]:
        n = self.cluster.num_nodes
        slots = self.slots_per_node
        cpu = 0.0
        disk_read = 0.0
        disk_write = 0.0
        net_in = 0.0
        net_out = 0.0
        cyclic_disk = 0.0
        working_per_node = 0.0

        compute_ops = [op for op in segment.ops
                       if op.kind is not OpKind.SINK and not op.is_action]
        tail_ops = [op for op in segment.ops
                    if op.kind is OpKind.SINK or op.is_action]

        input_stats = segment.input_stats
        input_bytes = input_stats.total_bytes * scale
        head_bytes_override: Optional[float] = None
        if segment.starts_with_shuffle:
            # Pipelined repartitioning: data crosses the wire as it is
            # produced; no shuffle files on disk (unlike Spark).
            if segment.head.combinable:
                # The chained GroupCombine upstream already shrank the
                # stream; only combined pairs travel.
                combined = combined_output(
                    input_stats, self.config.default_parallelism,
                    pair_bytes=input_stats.record_bytes *
                    segment.head.bytes_ratio)
                wire = combined.total_bytes * scale
                head_bytes_override = wire
            else:
                wire = input_bytes
            cross = wire * (1.0 - 1.0 / n)
            net_in += cross
            net_out += cross
            cpu += 2 * wire / (self.costs.serialization_rate /
                               self.profile.cpu_factor)
            self.metrics["shuffle_wire_bytes"] += wire
            # Receiving sorters/aggregators may spill.
            if any(op.kind in (OpKind.GROUP_REDUCE, OpKind.JOIN,
                               OpKind.CO_GROUP, OpKind.SORT_PARTITION)
                   or op.combinable for op in compute_ops):
                spill = self.memory.spill_bytes(wire / n) * n
                disk_read += spill
                disk_write += spill
                self.metrics["spill_bytes"] += spill
            working_per_node += min(wire / n,
                                    self.memory.sort_budget_per_node())
        elif in_memory_input:
            cpu += input_bytes / (1200 * 2**20)
        elif segment.head.kind is OpKind.SOURCE:
            disk_read += input_bytes
            # DataSource parallelism is bounded by the input splits:
            # fewer HDFS blocks than slots leaves slots idle (same
            # physics that throttles Spark's scan stages).
            splits_per_node = (input_bytes / self.hdfs.block_size) / n
            slots = max(1, min(slots, math.ceil(splits_per_node)))
        elif segment.head.kind is OpKind.SORT_PARTITION:
            # Piped into a sorter: overflow beyond the managed sort
            # buffers spills to disk and is merged back.
            spill = self.memory.spill_bytes(input_bytes / n) * n
            disk_read += spill
            disk_write += spill
            self.metrics["spill_bytes"] += spill
            working_per_node += min(input_bytes / n,
                                    self.memory.sort_budget_per_node())

        for oi, (op, op_in) in enumerate(zip(segment.ops, segment.in_stats)):
            if op.kind in (OpKind.SOURCE, OpKind.SINK) or op.is_action:
                continue
            rate = self.costs.rate_for(op.kind, op.cpu_rate)
            op_bytes = op_in.total_bytes * scale
            if oi == 0 and head_bytes_override is not None:
                op_bytes = head_bytes_override
            cpu += op_bytes / rate
            if op.side_input is not None and not op.is_iteration:
                disk_read += op.side_input.total_bytes * scale
                cpu += op.side_input.total_bytes * scale / rate

        out_stats = segment.out_stats
        assert out_stats is not None
        combine_tail: Optional[str] = None
        if next_wide is not None and next_wide.combinable:
            # The optimizer chains a sort-based GroupCombine onto this
            # segment (the "DC=DataSource->FlatMap->GroupCombine" chain).
            combine_tail = "GroupCombine"
            data_bytes = out_stats.total_bytes * scale
            cpu += data_bytes / self.costs.rate_for(next_wide.kind,
                                                    next_wide.cpu_rate)
            # Anti-cyclic spill behaviour: the combiner sorts a managed
            # buffer and drains it; spill I/O appears even when memory
            # suffices because full buffers are flushed, and it strictly
            # alternates with the sorting CPU (Fig. 3's signature).
            cyclic_disk += data_bytes * 0.20
            working_per_node += min(data_bytes / n,
                                    self.memory.sort_budget_per_node())

        cpu *= self.memory.gc_cpu_factor(working_per_node)
        cpu *= self.costs.flink_pipeline_cpu_overhead

        name = chain_label(compute_ops, extra_tail=combine_tail)
        blocking = any(op.kind is OpKind.SORT_PARTITION
                       for op in compute_ops)
        phases = [PhaseSpec(
            name=name or "chain",
            key=chain_key(name) or "C",
            per_node=uniform_resources(
                n, cpu_core_seconds=cpu, cpu_slots=float(slots),
                disk_read_bytes=disk_read, disk_write_bytes=disk_write,
                net_in_bytes=net_in, net_out_bytes=net_out,
                cyclic_disk_bytes=cyclic_disk,
                memory_bytes=working_per_node),
            blocking=blocking,
            anti_cyclic=combine_tail is not None,
        )]
        for op in tail_ops:
            idx = segment.ops.index(op)
            phases.append(self._compile_tail(op, segment.in_stats[idx],
                                             scale))
        return phases

    def _compile_tail(self, op: Op, in_stats: DataStats,
                      scale: float) -> PhaseSpec:
        """Sinks and actions become a DataSink phase.

        Flink 0.10's ``count`` is not a cheap local fold: the records
        funnel through a single-slot accumulator per node — the
        "inefficient use of the resources in the latter phase" the
        paper observes for Grep (§VI-B, Fig. 6).
        """
        n = self.cluster.num_nodes
        in_bytes = in_stats.total_bytes * scale
        if op.kind is OpKind.SINK:
            cpu = in_bytes / self.costs.serialization_rate
            return PhaseSpec(
                name="DataSink", key="DS",
                per_node=uniform_resources(
                    n, cpu_core_seconds=cpu,
                    cpu_slots=float(self.slots_per_node),
                    hdfs_write_bytes=in_bytes,
                    hdfs_replication=op.sink_replication))
        if op.kind is OpKind.COUNT:
            cpu = in_bytes / self.costs.flink_count_rate
            return PhaseSpec(
                name="DataSink", key="DS",
                per_node=uniform_resources(
                    n, cpu_core_seconds=cpu, cpu_slots=1.0,
                    net_in_bytes=in_bytes * 0.5,
                    net_out_bytes=in_bytes * 0.5))
        cpu = in_bytes / self.costs.rate_for(op.kind, op.cpu_rate)
        return PhaseSpec(
            name="DataSink", key="DS",
            per_node=uniform_resources(
                n, cpu_core_seconds=cpu, cpu_slots=2.0,
                net_out_bytes=in_bytes / max(n, 1)))

    # ------------------------------------------------------------------
    # native iterations
    # ------------------------------------------------------------------
    def _run_iteration(self, it_op: Op, spans: List[OperatorSpan]):
        body = it_op.body
        assert body is not None
        delta = it_op.kind is OpKind.DELTA_ITERATION
        # The solution set / adjacency stays resident in managed memory
        # for the whole iteration ("the memory remains constant" during
        # Flink's iterations, §VI-E).
        if it_op.side_input is not None:
            state_per_node = (it_op.side_input.records *
                              self.costs.flink_iteration_edge_state_bytes /
                              self.cluster.num_nodes)
            for node in self.cluster.nodes:
                node.memory.try_reserve(state_per_node)
        body_segments = split_segments(body)
        iter_start = self.cluster.now
        merged: dict = {}
        sync_total = 0.0
        tracer = self.cluster.tracer
        for i in range(1, it_op.iterations + 1):
            activity = (it_op.workset_activity(i)
                        if it_op.workset_activity else 1.0)
            if delta and it_op.workset_activity is None:
                activity = 1.0 / i  # generic shrinking workset
            stage_span = None
            if tracer is not None:
                # The superstep barrier (sync timeout) belongs to the
                # superstep, so the span closes after it.
                stage_span = tracer.begin(
                    "stage", f"superstep-{i}", self.cluster.now,
                    iteration=i)
            phases = self._compile_pipeline(body_segments, scale=activity,
                                            in_memory_input=True)
            job = yield from self.executor.run_pipelined(
                f"superstep-{i}", phases)
            self.metrics["supersteps"] += 1
            for span in job.spans:
                slot = merged.setdefault(
                    span.key, OperatorSpan(span.key, span.name,
                                           span.start, span.end))
                slot.start = min(slot.start, span.start)
                slot.end = max(slot.end, span.end)
            yield self.cluster.sim.timeout(self.costs.flink_superstep_sync)
            sync_total += self.costs.flink_superstep_sync
            if tracer is not None:
                tracer.end(stage_span, self.cluster.now)
        iter_end = self.cluster.now
        head_name = ("Workset" if delta else "BulkPartialSolution")
        head_key = "W" if delta else "B"
        spans.append(OperatorSpan(head_key, head_name, iter_start, iter_end))
        spans.extend(merged.values())
        spans.append(OperatorSpan(
            "SBI" if not delta else "DI",
            "Sync Bulk Iteration" if not delta else "DeltaIterations",
            iter_start, iter_start + (iter_end - iter_start)
            if delta else iter_start + sync_total))
