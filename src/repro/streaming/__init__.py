"""Streaming extension (the paper's declared future work, §VIII)."""

from .model import (StreamingResult, StreamingWorkloadModel,
                    max_stable_throughput, simulate_flink_streaming,
                    simulate_spark_dstreams)

__all__ = ["StreamingResult", "StreamingWorkloadModel",
           "max_stable_throughput", "simulate_flink_streaming",
           "simulate_spark_dstreams"]
