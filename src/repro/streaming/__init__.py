"""Streaming: the paper's declared future work (§VIII), executed.

Four layers:

* :mod:`repro.streaming.model` — the original closed-form sketch, now
  the differential oracle for the executed engines;
* :mod:`repro.streaming.arrivals` + :mod:`repro.streaming.engines` —
  seedable arrival processes compiled to deterministic plans, executed
  by a continuous-operator (Flink-style) and a micro-batch D-Stream
  (Spark-style) engine on the fluid simulation kernel;
* :mod:`repro.streaming.policies` — overload-survival policies:
  restart strategies (fixed / backoff / failure-rate cap), load
  shedding, and the PID adaptive batch-interval controller;
* :mod:`repro.streaming.sweep` — the fig20/fig21/fig22 campaigns with
  checkpointed, gap-reporting fan-out.
"""

from .arrivals import (ARRIVAL_KINDS, DEFAULT_SLICE_WIDTH, ArrivalPlan,
                       MMPPArrivals, PoissonArrivals, make_arrivals)
from .engines import (DEFAULT_BARRIER_SYNC, STREAMING_ENGINES,
                      StreamingRunResult, queue_depth_from_buffers,
                      run_streaming, stable_drain_bound)
from .model import (StreamingResult, StreamingWorkloadModel,
                    max_stable_throughput, simulate_flink_streaming,
                    simulate_spark_dstreams)
from .policies import (DEGRADE_POLICIES, RESTART_STRATEGIES,
                       AdaptiveBatchPolicy, BatchIntervalController,
                       DropTailShedding, ExponentialBackoffRestart,
                       FailureRateRestart, FixedDelayRestart,
                       ProbabilisticShedding, compile_crash_schedule,
                       make_restart_strategy, resolve_policy)
from .sweep import (DEFAULT_CHECKPOINT_INTERVALS, DEFAULT_DURATION,
                    DEFAULT_FAULT_RATES, DEFAULT_LOAD_FRACTIONS,
                    DEFAULT_LOAD_MULTIPLES, FIG21_CRASH_AT,
                    FIG21_LOAD_FRACTION, DegradationFigure, DegradeCell,
                    StreamingCell, StreamingFigure,
                    degradation_campaign_fingerprint, degradation_sweep,
                    streaming_campaign_fingerprint, streaming_sweep)

__all__ = [
    "StreamingResult", "StreamingWorkloadModel", "max_stable_throughput",
    "simulate_flink_streaming", "simulate_spark_dstreams",
    "ArrivalPlan", "PoissonArrivals", "MMPPArrivals", "make_arrivals",
    "ARRIVAL_KINDS", "DEFAULT_SLICE_WIDTH",
    "StreamingRunResult", "run_streaming", "STREAMING_ENGINES",
    "queue_depth_from_buffers", "stable_drain_bound",
    "DEFAULT_BARRIER_SYNC",
    "FixedDelayRestart", "ExponentialBackoffRestart",
    "FailureRateRestart", "make_restart_strategy", "RESTART_STRATEGIES",
    "DropTailShedding", "ProbabilisticShedding", "AdaptiveBatchPolicy",
    "BatchIntervalController", "compile_crash_schedule",
    "resolve_policy", "DEGRADE_POLICIES",
    "StreamingCell", "StreamingFigure", "streaming_sweep",
    "streaming_campaign_fingerprint", "DEFAULT_LOAD_FRACTIONS",
    "DEFAULT_CHECKPOINT_INTERVALS", "FIG21_LOAD_FRACTION",
    "FIG21_CRASH_AT", "DEFAULT_DURATION",
    "DegradeCell", "DegradationFigure", "degradation_sweep",
    "degradation_campaign_fingerprint", "DEFAULT_LOAD_MULTIPLES",
    "DEFAULT_FAULT_RATES",
]
