"""Streaming extension (the paper's §VIII future work).

"As future work, we plan to extend the evaluation with SQL and
streaming benchmarks, and examine in this context whether treating
batches as finite sets of streamed data pays off."

This module models the two streaming architectures of the era on the
same cluster substrate:

* **Flink-style true streaming** — records flow through the pipelined
  operators one at a time; per-record latency is the pipeline service
  time plus queueing;
* **Spark-style discretized streams (D-Streams)** — input is chopped
  into micro-batches of ``batch_interval`` seconds; each batch runs as
  a (small) staged job, so a record's latency is its residual wait for
  the batch boundary plus the batch's processing time.  A micro-batch
  system is *unstable* when processing time exceeds the interval —
  batches queue up and latency diverges.

The question the paper poses — does treating batches as bounded
streams pay off? — becomes quantitative: which latency profile each
architecture sustains at the same offered throughput.

Since the executed engines landed (:mod:`repro.streaming.engines`)
this closed-form model is the **differential oracle**: the executed
micro-batch engine must land on its latency curve and both engines on
its :func:`max_stable_throughput` boundary within the tolerances
documented in ``tests/streaming/test_differential.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..cluster.node import GRID5000_PARAVANCE, HardwareSpec

__all__ = ["StreamingWorkloadModel", "StreamingResult",
           "simulate_flink_streaming", "simulate_spark_dstreams",
           "max_stable_throughput"]

MiB = float(2**20)


@dataclass(frozen=True)
class StreamingWorkloadModel:
    """A windowed-aggregation streaming job (streaming Word Count)."""

    #: Mean bytes per record (an event / a line).
    record_bytes: float = 200.0
    #: Per-record processing cost, in core-seconds (parse + key +
    #: window update).  The reciprocal is the per-core record rate:
    #: exactly 40,000 records/s/core with the default value (pinned,
    #: together with every other constant here, by
    #: ``tests/streaming/test_model_constants.py``).
    core_seconds_per_record: float = 1.0 / 40000.0
    #: Records shuffled to the aggregation stage per input record.
    shuffle_fanout: float = 1.0
    #: Micro-batch fixed overhead: job scheduling, task launch, commit
    #: (Spark Streaming pays this every interval).
    batch_fixed_overhead: float = 0.15
    #: Per-record pipeline overhead of true streaming (on-the-wire
    #: framing, buffer handoff), as a CPU multiplier.
    streaming_record_overhead: float = 1.25


@dataclass
class StreamingResult:
    """Latency/throughput outcome of one streaming simulation."""

    engine: str
    records_per_second: float
    duration: float
    stable: bool
    latencies: List[float] = field(default_factory=list)

    def percentile(self, q: float) -> float:
        if not self.latencies:
            return math.nan
        return float(np.percentile(self.latencies, q))

    @property
    def mean_latency(self) -> float:
        if not self.latencies:
            return math.nan
        return float(np.mean(self.latencies))

    def describe(self) -> str:
        if not self.stable:
            return (f"{self.engine} @ {self.records_per_second:,.0f} rec/s: "
                    f"UNSTABLE (processing cannot keep up)")
        return (f"{self.engine} @ {self.records_per_second:,.0f} rec/s: "
                f"mean {1000 * self.mean_latency:.0f} ms, "
                f"p99 {1000 * self.percentile(99):.0f} ms")


def _capacity_records_per_second(model: StreamingWorkloadModel,
                                 nodes: int, cores_per_node: int,
                                 cpu_multiplier: float) -> float:
    total_cores = nodes * cores_per_node
    return total_cores / (model.core_seconds_per_record * cpu_multiplier)


def simulate_flink_streaming(model: StreamingWorkloadModel,
                             records_per_second: float, duration: float,
                             nodes: int,
                             spec: HardwareSpec = GRID5000_PARAVANCE,
                             sample_every: float = 0.5,
                             seed: int = 0) -> StreamingResult:
    """True streaming as an M/D/c fluid queue on the pipeline.

    Latency = service time + queueing; the system is stable while the
    arrival rate stays under the pipeline's record capacity.
    """
    _validate(records_per_second, duration)
    capacity = _capacity_records_per_second(
        model, nodes, spec.cores, model.streaming_record_overhead)
    utilisation = records_per_second / capacity
    service = model.core_seconds_per_record * model.streaming_record_overhead
    if utilisation >= 1.0:
        return StreamingResult("flink", records_per_second, duration,
                               stable=False)
    rng = np.random.default_rng(seed)
    latencies = []
    # Per-record latency: service + network hop + queueing that grows
    # hyperbolically with utilisation (fluid M/D/c approximation).
    base = service + 0.002  # one buffer flush + network hop
    for _t in np.arange(0.0, duration, sample_every):
        queueing = base * utilisation / (2 * (1 - utilisation))
        jitter = float(rng.lognormal(0.0, 0.25))
        latencies.append((base + queueing) * jitter)
    return StreamingResult("flink", records_per_second, duration,
                           stable=True, latencies=latencies)


def simulate_spark_dstreams(model: StreamingWorkloadModel,
                            records_per_second: float, duration: float,
                            nodes: int, batch_interval: float = 1.0,
                            spec: HardwareSpec = GRID5000_PARAVANCE,
                            seed: int = 0) -> StreamingResult:
    """Discretized streams: one small staged job per interval.

    A record waits for its batch to close (uniform 0..interval), then
    for the batch job (fixed overhead + compute).  If a batch takes
    longer than the interval, the backlog grows without bound.
    """
    _validate(records_per_second, duration)
    if batch_interval <= 0:
        raise ValueError("batch_interval must be positive")
    capacity = _capacity_records_per_second(model, nodes, spec.cores, 1.0)
    records_per_batch = records_per_second * batch_interval
    compute = records_per_batch / capacity
    batch_time = model.batch_fixed_overhead + compute
    if batch_time >= batch_interval:
        return StreamingResult("spark", records_per_second, duration,
                               stable=False)
    rng = np.random.default_rng(seed)
    latencies = []
    backlog = 0.0
    for _b in range(int(duration / batch_interval)):
        jitter = float(rng.lognormal(0.0, 0.1))
        this_batch = batch_time * jitter
        backlog = max(0.0, backlog + this_batch - batch_interval)
        # Mean residual wait for the batch boundary is interval/2.
        latencies.append(batch_interval / 2 + this_batch + backlog)
    return StreamingResult("spark", records_per_second, duration,
                           stable=True, latencies=latencies)


def max_stable_throughput(model: StreamingWorkloadModel, nodes: int,
                          engine: str, batch_interval: float = 1.0,
                          spec: HardwareSpec = GRID5000_PARAVANCE
                          ) -> float:
    """Highest sustained record rate before the system destabilises."""
    if engine == "flink":
        return _capacity_records_per_second(
            model, nodes, spec.cores, model.streaming_record_overhead)
    if engine == "spark":
        usable = batch_interval - model.batch_fixed_overhead
        if usable <= 0:
            return 0.0
        capacity = _capacity_records_per_second(model, nodes, spec.cores,
                                                1.0)
        return capacity * usable / batch_interval
    raise ValueError(f"unknown engine {engine!r}")


def _validate(records_per_second: float, duration: float) -> None:
    if records_per_second <= 0:
        raise ValueError("records_per_second must be positive")
    if duration <= 0:
        raise ValueError("duration must be positive")
