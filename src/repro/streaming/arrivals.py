"""Seedable stochastic arrival processes for the streaming engines.

Mirrors the resilience engine's discipline (:mod:`repro.resilience.
stochastic`): randomness lives *outside* the simulation.  An
:class:`ArrivalProcess` plus a seed compiles — before any simulated
event fires — into a deterministic :class:`ArrivalPlan`: the record
count of every ingest slice of the run.  The simulation then executes
the plan with no RNG of its own, so every streaming figure is
digest-pinned and bit-identical at any ``--jobs`` value.

Two processes cover the paper-era workload shapes:

* :class:`PoissonArrivals` — steady memoryless traffic (the M in the
  analytic model's M/D/c view of the pipeline);
* :class:`MMPPArrivals` — a two-state Markov-modulated Poisson process:
  calm and burst phases with exponential sojourns, the classical bursty
  workload model.  Its long-run mean equals ``rate``, so stability
  comparisons against :func:`~repro.streaming.model.
  max_stable_throughput` stay meaningful.

Records are aggregated per *slice* (a fixed ingest granularity of
:data:`DEFAULT_SLICE_WIDTH` seconds) rather than simulated one event
per record: at paper rates (10^5..10^6 records/s) per-record events
would swamp the kernel, while per-slice fluid demands keep a full
figure campaign in CI budget.  A slice's records are treated as
arriving uniformly within it; latency accounting uses the slice
midpoint (see :mod:`repro.streaming.engines`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

import numpy as np

from ..validation.digest import digest_payload

__all__ = ["ArrivalPlan", "PoissonArrivals", "MMPPArrivals",
           "ARRIVAL_KINDS", "make_arrivals", "DEFAULT_SLICE_WIDTH"]

#: Ingest granularity (seconds) the plans are compiled at.
DEFAULT_SLICE_WIDTH = 0.25


@dataclass(frozen=True)
class ArrivalPlan:
    """A compiled arrival trace: one record count per ingest slice.

    Slice ``k`` covers simulated time ``[k*w, (k+1)*w)`` and becomes
    processable when it closes at ``(k+1)*w``.
    """

    kind: str
    rate: float          # requested long-run mean (records/second)
    duration: float
    slice_width: float
    seed: int
    counts: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.slice_width <= 0:
            raise ValueError("slice_width must be positive")
        if any(c < 0 for c in self.counts):
            raise ValueError("slice counts must be >= 0")

    @property
    def num_slices(self) -> int:
        return len(self.counts)

    @property
    def total_records(self) -> int:
        return int(sum(self.counts))

    @property
    def offered_rate(self) -> float:
        """Realised mean rate of the compiled trace."""
        if self.duration <= 0:
            return 0.0
        return self.total_records / self.duration

    def slice_close(self, k: int) -> float:
        """Time the slice becomes available to the engines."""
        return (k + 1) * self.slice_width

    def slice_midpoint(self, k: int) -> float:
        """Mean arrival time of the slice's records (event time)."""
        return (k + 0.5) * self.slice_width

    def payload(self) -> Dict[str, Any]:
        return {
            "kind": self.kind, "rate": self.rate,
            "duration": self.duration, "slice_width": self.slice_width,
            "seed": self.seed, "counts": [int(c) for c in self.counts],
        }

    def digest(self) -> str:
        return digest_payload(self.payload())


def _num_slices(duration: float, slice_width: float) -> int:
    if duration <= 0:
        raise ValueError("duration must be positive")
    return max(1, int(round(duration / slice_width)))


@dataclass(frozen=True)
class PoissonArrivals:
    """Steady traffic: i.i.d. Poisson counts per slice."""

    rate: float
    kind: str = "poisson"

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")

    def compile(self, seed: int, duration: float,
                slice_width: float = DEFAULT_SLICE_WIDTH) -> ArrivalPlan:
        n = _num_slices(duration, slice_width)
        rng = np.random.default_rng([int(seed), 0x5EA])
        counts = rng.poisson(self.rate * slice_width, size=n)
        return ArrivalPlan(kind=self.kind, rate=self.rate,
                           duration=duration, slice_width=slice_width,
                           seed=int(seed),
                           counts=tuple(int(c) for c in counts))


@dataclass(frozen=True)
class MMPPArrivals:
    """Bursty traffic: a two-state Markov-modulated Poisson process.

    The chain alternates exponential sojourns in a *calm* and a *burst*
    state whose rates are ``rate * calm_factor`` and ``rate *
    burst_factor``.  The defaults are chosen so the stationary mean is
    exactly ``rate``: with mean sojourns 6 s calm / 2 s burst the chain
    spends 3/4 of its time calm, and ``0.75*0.8 + 0.25*1.6 = 1``.
    The burst factor of 1.6 keeps bursts *transiently* above capacity
    only once the mean load passes ~0.6 of it, so the long-run
    stability boundary stays governed by the mean rate while the tail
    percentiles (the fig20 story) feel the bursts.
    The modulating state is sampled at slice granularity (the state at
    a slice's open governs its whole slice).
    """

    rate: float
    calm_factor: float = 0.8
    burst_factor: float = 1.6
    calm_sojourn: float = 6.0
    burst_sojourn: float = 2.0
    kind: str = "mmpp"

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if min(self.calm_factor, self.burst_factor) < 0:
            raise ValueError("rate factors must be >= 0")
        if min(self.calm_sojourn, self.burst_sojourn) <= 0:
            raise ValueError("sojourn times must be positive")

    @property
    def stationary_mean_factor(self) -> float:
        total = self.calm_sojourn + self.burst_sojourn
        return (self.calm_sojourn * self.calm_factor
                + self.burst_sojourn * self.burst_factor) / total

    def compile(self, seed: int, duration: float,
                slice_width: float = DEFAULT_SLICE_WIDTH) -> ArrivalPlan:
        n = _num_slices(duration, slice_width)
        rng = np.random.default_rng([int(seed), 0xB5B])
        counts = []
        burst = False            # start calm: bursts are the exception
        switch_at = float(rng.exponential(self.calm_sojourn))
        for k in range(n):
            t = k * slice_width
            while t >= switch_at:
                burst = not burst
                sojourn = (self.burst_sojourn if burst
                           else self.calm_sojourn)
                switch_at += float(rng.exponential(sojourn))
            factor = self.burst_factor if burst else self.calm_factor
            counts.append(int(rng.poisson(self.rate * factor
                                          * slice_width)))
        return ArrivalPlan(kind=self.kind, rate=self.rate,
                           duration=duration, slice_width=slice_width,
                           seed=int(seed), counts=tuple(counts))


ARRIVAL_KINDS = ("poisson", "mmpp")


def make_arrivals(kind: str, rate: float):
    """Factory keyed by the CLI/figure spelling of the process."""
    if kind == "poisson":
        return PoissonArrivals(rate)
    if kind == "mmpp":
        return MMPPArrivals(rate)
    raise ValueError(f"unknown arrival process {kind!r}; "
                     f"one of {ARRIVAL_KINDS}")
