"""Overload-survival policies for the executed streaming engines.

PR 6's engines survive exactly one scripted crash with a hardcoded
restart delay, and above :func:`~repro.streaming.model.
max_stable_throughput` their queues grow without bound.  This module
supplies the three policy families that turn "recovers from one crash"
into "survives production weather":

* **Restart strategies** — mirrors of Flink's real restart-strategy
  configurations.  :class:`FixedDelayRestart` waits a constant delay
  (optionally giving up after ``max_restarts``),
  :class:`ExponentialBackoffRestart` grows the delay geometrically
  with deterministic seeded jitter, and :class:`FailureRateRestart`
  declares the **job failed** when more than ``max_failures`` crashes
  land inside a sliding ``window`` — the engine then stops with an
  explicit ``job_failed`` result instead of restarting forever.

* **Load shedding** for the continuous engine — a bounded source
  queue.  :class:`DropTailShedding` drops whole arriving slices once
  ``max_queue_slices`` slices are waiting; :class:`ProbabilisticShedding`
  sheds an increasing *fraction* of each arriving slice as the queue
  climbs from ``target_queue_slices`` to ``max_queue_slices`` (the
  expected-value drop count, so runs stay digest-pinned without the
  engine drawing random numbers).  Either way the source queue — and
  with it the latency of every record the engine *keeps* — is bounded
  at the measured cost of a loss fraction.

* **Adaptive micro-batching** for the D-Stream engine —
  :class:`AdaptiveBatchPolicy` + :class:`BatchIntervalController`, a
  deterministic PID-style feedback loop in the spirit of Spark
  Streaming's backpressure rate controller (``PIDRateEstimator``): the
  measured batch-time/interval ratio steers the next batch interval
  inside ``[min_interval, max_interval]`` (bounded staleness), and when
  stretching the interval cannot close the gap the receiver sheds
  records beyond the measured sustainable rate (bounded latency at the
  cost of a loss fraction).

Crash *schedules* come from PR 5's stochastic fault model:
:func:`compile_crash_schedule` compiles per-node Poisson crash
arrivals into a sorted tuple of absolute crash times, replacing the
single ``crash_at``.  All randomness (jitter, arrivals) is a pure
function of the seed and is spent before or outside the simulation, so
every run remains bit-identical at any ``--jobs``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "RESTART_STRATEGIES", "FixedDelayRestart", "ExponentialBackoffRestart",
    "FailureRateRestart", "make_restart_strategy",
    "DropTailShedding", "ProbabilisticShedding",
    "AdaptiveBatchPolicy", "BatchIntervalController",
    "compile_crash_schedule", "resolve_policy", "DEGRADE_POLICIES",
]

RESTART_STRATEGIES = ("fixed", "backoff", "failure-rate")

#: Policy labels a degradation campaign sweeps: ``"none"`` is the PR 6
#: behaviour (fixed-delay restarts, no shedding), ``"degrade"`` maps to
#: each engine's graceful-degradation bundle (see :func:`resolve_policy`).
DEGRADE_POLICIES = ("none", "degrade")

#: Seed-stream tag for backoff jitter (spawn-key style, like the
#: arrival compilers' ``[seed, 0x5EA]``).
_JITTER_KEY = 0xB0FF


# ----------------------------------------------------------------------
# restart strategies
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FixedDelayRestart:
    """Flink's ``fixed-delay`` restart strategy: wait ``delay`` seconds
    after every crash, give up after ``max_restarts`` restarts
    (``None`` = never)."""

    kind = "fixed"
    delay: float = 2.0
    max_restarts: Optional[int] = None

    def validate(self) -> None:
        if self.delay < 0:
            raise ValueError("restart delay must be >= 0")
        if self.max_restarts is not None and self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0 or None")

    def decide(self, crashes: Sequence[float],
               seed: int) -> Optional[float]:
        """Restart delay for the crash sequence so far (the current
        crash is ``crashes[-1]``); ``None`` declares the job failed."""
        if (self.max_restarts is not None
                and len(crashes) > self.max_restarts):
            return None
        return self.delay

    def payload(self) -> Dict[str, Any]:
        return {"kind": self.kind, "delay": self.delay,
                "max_restarts": self.max_restarts}


@dataclass(frozen=True)
class ExponentialBackoffRestart:
    """Flink's ``exponential-delay`` restart strategy: the delay grows
    geometrically per consecutive crash, capped at ``max_delay``, with
    ``jitter`` relative randomisation.  The jitter is a pure function
    of ``(seed, attempt)`` — drawn from a spawn-keyed generator, never
    from simulation state — so repeated runs are bit-identical."""

    kind = "backoff"
    initial_delay: float = 0.5
    max_delay: float = 8.0
    multiplier: float = 2.0
    jitter: float = 0.1
    max_restarts: Optional[int] = None

    def validate(self) -> None:
        if self.initial_delay <= 0:
            raise ValueError("initial_delay must be > 0")
        if self.max_delay < self.initial_delay:
            raise ValueError("max_delay must be >= initial_delay")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0 <= self.jitter < 1:
            raise ValueError("jitter must be in [0, 1)")
        if self.max_restarts is not None and self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0 or None")

    def decide(self, crashes: Sequence[float],
               seed: int) -> Optional[float]:
        if (self.max_restarts is not None
                and len(crashes) > self.max_restarts):
            return None
        attempt = len(crashes) - 1
        base = min(self.max_delay,
                   self.initial_delay * self.multiplier ** attempt)
        if self.jitter <= 0:
            return base
        rng = np.random.default_rng([seed, _JITTER_KEY, attempt])
        swing = float(rng.uniform(-1.0, 1.0))
        return base * (1.0 + self.jitter * swing)

    def payload(self) -> Dict[str, Any]:
        return {"kind": self.kind, "initial_delay": self.initial_delay,
                "max_delay": self.max_delay,
                "multiplier": self.multiplier, "jitter": self.jitter,
                "max_restarts": self.max_restarts}


@dataclass(frozen=True)
class FailureRateRestart:
    """Flink's ``failure-rate`` restart strategy: restart after
    ``delay`` seconds, but declare the job failed when *more than*
    ``max_failures`` crashes land within any sliding ``window``
    seconds — the guard that keeps a flapping job from restarting
    forever."""

    kind = "failure-rate"
    max_failures: int = 3
    window: float = 10.0
    delay: float = 1.0

    def validate(self) -> None:
        if self.max_failures < 1:
            raise ValueError("max_failures must be >= 1")
        if self.window <= 0:
            raise ValueError("window must be > 0")
        if self.delay < 0:
            raise ValueError("restart delay must be >= 0")

    def decide(self, crashes: Sequence[float],
               seed: int) -> Optional[float]:
        now = crashes[-1]
        recent = sum(1 for t in crashes if t > now - self.window - 1e-12)
        if recent > self.max_failures:
            return None
        return self.delay

    def payload(self) -> Dict[str, Any]:
        return {"kind": self.kind, "max_failures": self.max_failures,
                "window": self.window, "delay": self.delay}


def make_restart_strategy(kind: str, **kwargs):
    """Factory by strategy name (CLI/test convenience)."""
    classes = {"fixed": FixedDelayRestart,
               "backoff": ExponentialBackoffRestart,
               "failure-rate": FailureRateRestart}
    if kind not in classes:
        raise ValueError(f"unknown restart strategy {kind!r}; "
                         f"one of {RESTART_STRATEGIES}")
    strategy = classes[kind](**kwargs)
    strategy.validate()
    return strategy


# ----------------------------------------------------------------------
# load shedding (continuous engine)
# ----------------------------------------------------------------------
class _BoundedQueueShedding:
    """Shared latency/drain bounds for bounded-source-queue policies.

    With at most ``max_queue_slices`` slices queued at the source plus
    the pipeline's in-flight depth (<= 4), every *kept* record waits a
    bounded number of slice services; under overload each service is a
    small multiple of the slice width (the pipeline still drains at
    capacity), so the bounds below are generous constants, not tuning
    knobs.  Crash downtime and checkpoint replay are accounted for
    separately by the auditor."""

    max_queue_slices: int

    def p99_bound(self, slice_width: float) -> float:
        """Latency every kept record stays under while shedding is on."""
        return (self.max_queue_slices + 8) * 4.0 * slice_width

    def drain_bound(self, slice_width: float) -> float:
        """Post-load drain bound: the residual queue is bounded, so the
        drain is too — a shedding run is *stable* by construction."""
        return (self.max_queue_slices + 8) * 3.0 * slice_width


@dataclass(frozen=True)
class DropTailShedding(_BoundedQueueShedding):
    """Bounded source buffer with drop-tail semantics: an arriving
    slice is admitted while fewer than ``max_queue_slices`` slices are
    queued, and dropped whole otherwise."""

    kind = "drop-tail"
    max_queue_slices: int = 8

    def validate(self) -> None:
        if self.max_queue_slices < 1:
            raise ValueError("max_queue_slices must be >= 1")

    def shed(self, queued: int, count: int) -> int:
        """Records to drop from an arriving slice of ``count`` records
        given ``queued`` slices already waiting at the source."""
        return count if queued >= self.max_queue_slices else 0

    def payload(self) -> Dict[str, Any]:
        return {"kind": self.kind,
                "max_queue_slices": self.max_queue_slices}


@dataclass(frozen=True)
class ProbabilisticShedding(_BoundedQueueShedding):
    """Probabilistic (random early drop) shedding: below
    ``target_queue_slices`` nothing is shed; between target and
    ``max_queue_slices`` each arriving record would be dropped with
    probability rising linearly to 1.  The engine sheds the
    deterministic expected count ``round(p * count)`` instead of
    flipping coins, keeping runs digest-pinned."""

    kind = "probabilistic"
    max_queue_slices: int = 8
    target_queue_slices: int = 3

    def validate(self) -> None:
        if self.max_queue_slices < 1:
            raise ValueError("max_queue_slices must be >= 1")
        if not 0 <= self.target_queue_slices < self.max_queue_slices:
            raise ValueError("need 0 <= target_queue_slices "
                             "< max_queue_slices")

    def shed(self, queued: int, count: int) -> int:
        if queued <= self.target_queue_slices:
            return 0
        if queued >= self.max_queue_slices:
            return count
        span = self.max_queue_slices - self.target_queue_slices
        fraction = (queued - self.target_queue_slices) / span
        return min(count, int(count * fraction + 0.5))

    def payload(self) -> Dict[str, Any]:
        return {"kind": self.kind,
                "max_queue_slices": self.max_queue_slices,
                "target_queue_slices": self.target_queue_slices}


# ----------------------------------------------------------------------
# adaptive micro-batching (D-Stream engine)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AdaptiveBatchPolicy:
    """Deterministic PID-style batch-interval controller with
    receiver-side shedding (Spark Streaming's backpressure rate
    controller, made exact).

    After every batch the controller observes the utilisation
    ``busy / interval`` and steers the next interval toward
    ``target_utilisation`` with proportional/integral/derivative
    terms, clamped to ``[min_interval, max_interval]`` — longer
    intervals trade staleness for throughput (capacity approaches the
    raw rate as the fixed per-batch overhead amortises).  When ``shed``
    is on, the receiver additionally admits at most
    ``target_utilisation * interval * measured_rate`` records per
    batch (drop-tail on the newest arrivals), which is what bounds
    latency once even ``max_interval`` cannot absorb the offered load.
    """

    kind = "pid"
    target_utilisation: float = 0.85
    kp: float = 0.6
    ki: float = 0.15
    kd: float = 0.1
    #: Lower interval clamp; ``None`` = the run's initial batch interval.
    min_interval: Optional[float] = None
    max_interval: float = 2.0
    shed: bool = True

    def validate(self) -> None:
        if not 0 < self.target_utilisation <= 1:
            raise ValueError("target_utilisation must be in (0, 1]")
        if self.min_interval is not None and self.min_interval <= 0:
            raise ValueError("min_interval must be > 0 or None")
        if self.max_interval <= 0:
            raise ValueError("max_interval must be > 0")
        if (self.min_interval is not None
                and self.max_interval < self.min_interval):
            raise ValueError("max_interval must be >= min_interval")

    def p99_bound(self, batch_interval: float) -> float:
        """Latency bound while the controller (with shedding) is on:
        at most the wait for a ``max_interval`` batch to close plus a
        few batch services — generous, crash-free."""
        top = max(self.max_interval, batch_interval)
        return 4.0 * top + 2.0

    def drain_bound(self, batch_interval: float,
                    batch_fixed_overhead: float) -> float:
        """Post-load drain bound: the final (possibly stretched and
        late) batch still has to run."""
        top = max(self.max_interval, batch_interval)
        return 2.5 * top + batch_fixed_overhead

    def payload(self) -> Dict[str, Any]:
        return {"kind": self.kind,
                "target_utilisation": self.target_utilisation,
                "kp": self.kp, "ki": self.ki, "kd": self.kd,
                "min_interval": self.min_interval,
                "max_interval": self.max_interval, "shed": self.shed}


class BatchIntervalController:
    """Mutable per-run state of one :class:`AdaptiveBatchPolicy`.

    Pure arithmetic over observed (admitted, busy-seconds) pairs — no
    randomness, no wall clock — so the control trajectory is a
    deterministic function of the run."""

    #: Integral-term windup clamp (utilisation-error units).
    INTEGRAL_CLAMP = 3.0
    #: Per-step interval change clamp (multiplicative).
    STEP_CLAMP = 2.0

    def __init__(self, policy: AdaptiveBatchPolicy,
                 initial_interval: float) -> None:
        policy.validate()
        self.policy = policy
        self.interval = float(initial_interval)
        self.floor = (policy.min_interval
                      if policy.min_interval is not None
                      else float(initial_interval))
        self.ceiling = max(policy.max_interval, self.floor)
        self.integral = 0.0
        self.prev_error = 0.0
        #: Measured sustainable processing rate (records / busy second);
        #: infinite until the first non-empty batch completes.
        self.rate_estimate = math.inf
        self.intervals: List[float] = []

    def admissible(self) -> float:
        """Record budget for the next batch (inf = no shedding)."""
        if not self.policy.shed or not math.isfinite(self.rate_estimate):
            return math.inf
        return (self.rate_estimate * self.policy.target_utilisation
                * self.interval)

    def observe(self, admitted: int, busy: float) -> None:
        """Feed back one finished batch: ``admitted`` records processed
        in ``busy`` seconds; updates the interval for the next batch."""
        interval = self.interval
        self.intervals.append(interval)
        if admitted > 0 and busy > 0:
            self.rate_estimate = admitted / busy
        error = busy / interval - self.policy.target_utilisation
        clamp = self.INTEGRAL_CLAMP
        self.integral = max(-clamp, min(clamp, self.integral + error))
        derivative = error - self.prev_error
        self.prev_error = error
        scale = (1.0 + self.policy.kp * error
                 + self.policy.ki * self.integral
                 + self.policy.kd * derivative)
        scale = max(1.0 / self.STEP_CLAMP, min(self.STEP_CLAMP, scale))
        self.interval = max(self.floor,
                            min(self.ceiling, interval * scale))


# ----------------------------------------------------------------------
# crash schedules from the PR 5 stochastic fault model
# ----------------------------------------------------------------------
def compile_crash_schedule(seed: int, nodes: int, duration: float,
                           crash_rate: float,
                           model=None) -> Tuple[float, ...]:
    """Compile a repeated-crash schedule for one streaming run.

    Draws per-node Poisson crash arrivals from PR 5's
    :class:`~repro.resilience.stochastic.StochasticFaultModel`
    (``crash_rate`` expected crashes per node per run) and resolves the
    relative plan against ``duration``.  Any node's crash kills the
    whole pipeline (the Flink 0.10 / D-Stream driver failure model),
    so the nodes' arrivals merge into one sorted timeline.  Times of
    0.0 are nudged to the first representable instant after the run
    starts; the result is deterministic per ``(seed, nodes, duration,
    crash_rate)``.
    """
    if duration <= 0:
        raise ValueError("duration must be > 0")
    if nodes < 1:
        raise ValueError("nodes must be >= 1")
    from ..faults.plan import NodeCrash
    from ..resilience.stochastic import StochasticFaultModel
    if model is None:
        model = StochasticFaultModel(crash_rate=crash_rate)
    plan = model.compile(seed, nodes)
    times = sorted(max(1e-9, event.at) * duration
                   for event in plan.events
                   if isinstance(event, NodeCrash))
    return tuple(float(t) for t in times)


# ----------------------------------------------------------------------
# campaign policy bundles
# ----------------------------------------------------------------------
def resolve_policy(engine: str, policy: str, restart_delay: float = 2.0):
    """Map a campaign policy label to one engine's mechanism bundle:
    ``(restart_strategy, shedding, batch_policy)``.

    ``"none"`` is the PR 6 baseline (fixed-delay restarts, queues grow
    without bound under overload); ``"degrade"`` enables exponential
    backoff restarts plus probabilistic source shedding (continuous
    engine) or the PID batch-interval controller (D-Stream engine).
    """
    if policy == "none":
        return FixedDelayRestart(delay=restart_delay), None, None
    if policy == "degrade":
        strategy = ExponentialBackoffRestart()
        if engine == "flink":
            return strategy, ProbabilisticShedding(), None
        return strategy, None, AdaptiveBatchPolicy()
    raise ValueError(f"unknown degradation policy {policy!r}; "
                     f"one of {DEGRADE_POLICIES}")
