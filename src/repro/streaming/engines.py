"""Executed streaming engines on the fluid simulation kernel.

This is the paper's §VIII future-work question made executable.  The
analytic sketch in :mod:`repro.streaming.model` answers it in closed
form; this module answers it by *running* the two architectures on the
same cluster substrate the batch engines use, and the analytic model is
demoted to a differential oracle (see ``tests/streaming``).

* **Continuous-operator engine** (Flink-style, ``engine="flink"``) —
  a pipelined ``source -> keyBy/shuffle -> window-aggregate`` chain.
  Ingest slices flow through the operators as fluid demands (CPU on
  every node, all-to-all shuffle on the NICs); at most ``queue_depth``
  slices are in flight, where the depth is derived from Flink's
  network-buffer pool exactly like the batch engine derives its
  pipeline depth — a full buffer pool blocks the sources, which is
  backpressure.  The event-time watermark advances over the completed
  slice prefix, and an aligned barrier checkpoint stalls the pipeline
  for :data:`DEFAULT_BARRIER_SYNC` seconds once per checkpoint
  interval (the latency cost of Chandy-Lamport alignment).

* **Micro-batch D-Stream engine** (Spark-style, ``engine="spark"``) —
  arrivals are chopped into ``batch_interval`` batches; each batch runs
  as a small two-phase staged job through the shared
  :class:`~repro.engines.common.execution.PhaseExecutor` (receive/map,
  then shuffle/aggregate, with the per-batch scheduling overhead as the
  first phase's startup delay).  The driver is serial, so when a batch
  takes longer than the interval the next batch starts late and the
  backlog — the micro-batch instability of the analytic model —
  emerges from execution rather than being assumed.

**Failure model**: each entry of the crash schedule (``crash_times``,
or the single legacy ``crash_at``) kills the whole pipeline — Flink
0.10 restarts from the last completed barrier and replays, Spark loses
the unckeckpointed batch state and lineage-recomputes the window since
the last RDD checkpoint as one parallel job.  The wait before each
restart comes from the run's *restart strategy* (:mod:`repro.
streaming.policies`): fixed delay, exponential backoff with seeded
jitter, or a failure-rate cap that declares the **job failed** and
stops the run with an explicit ``job_failed`` result.  A crash whose
time passes while the pipeline is already down fires immediately after
the restart — repeated crash sequences, not one-shot flags.  Recovery
time is measured from the *last* crash as the first time the ingest
lag returns to its level before the *first* crash.

**Overload survival**: above capacity the baseline queues grow without
bound.  A *shedding policy* (continuous engine) bounds the source
queue by dropping arriving records — drop-tail or probabilistic — and
a *batch policy* (D-Stream engine) adapts the batch interval with a
PID controller and sheds at the receiver beyond the measured
sustainable rate.  Every run accounts exactly:
``total == processed + dropped + lost`` (``lost`` only when the job
failed), audited by :meth:`~repro.validation.invariants.
InvariantChecker.audit_streaming` under strict mode.

Everything is deterministic: the arrival randomness is compiled into
an :class:`~repro.streaming.arrivals.ArrivalPlan` before the cluster
exists, crash schedules and backoff jitter are pure functions of the
seed, and the engines themselves draw no random numbers.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..cluster.node import GRID5000_PARAVANCE, HardwareSpec
from ..cluster.topology import Cluster
from ..engines.common.execution import (PhaseExecutor, PhaseSpec,
                                        uniform_resources)
from ..validation.invariants import InvariantChecker, strict_enabled
from .arrivals import DEFAULT_SLICE_WIDTH, ArrivalPlan
from .model import StreamingWorkloadModel
from .policies import BatchIntervalController, FixedDelayRestart

__all__ = ["StreamingRunResult", "run_streaming", "STREAMING_ENGINES",
           "queue_depth_from_buffers", "stable_drain_bound",
           "DEFAULT_BARRIER_SYNC"]

STREAMING_ENGINES = ("flink", "spark")

#: Pipeline stall per aligned barrier checkpoint (seconds): barrier
#: alignment plus the synchronous part of the state snapshot.
DEFAULT_BARRIER_SYNC = 0.05


def queue_depth_from_buffers(network_buffers: int,
                             parallelism: int) -> int:
    """Pipeline depth (in-flight ingest slices) from the network-buffer
    pool — the same derivation the batch Flink engine uses for its
    chunk queues: each of the ``parallelism``\\ *8 logical channels
    owns a share of the pool, clamped to a sane pipelining range."""
    per_link = network_buffers / max(1, parallelism * 8)
    return max(1, min(4, int(per_link)))


def stable_drain_bound(engine: str, model: StreamingWorkloadModel,
                       batch_interval: float,
                       slice_width: float = DEFAULT_SLICE_WIDTH) -> float:
    """Documented stability test: a run is *stable* when, after the
    offered load ends, the engine drains its backlog within this bound.

    For the continuous engine the steady in-flight residue is at most
    ``queue_depth`` slices of service (each under one slice width when
    stable); for the micro-batch engine the final batch still has to
    run after it closes, so up to one batch time (< interval when
    stable) plus the fixed overhead remains.  Overload instead leaves a
    backlog that grows linearly in the run length, so with the default
    40 s campaigns the boundary resolves ``max_stable_throughput``
    to within ~10-15% (asserted in ``tests/streaming``).  Runs with a
    degradation policy use the policy's own ``drain_bound`` instead —
    a bounded queue drains in bounded time by construction.
    """
    if engine == "flink":
        return max(1.0, 6.0 * slice_width)
    return 1.25 * batch_interval + model.batch_fixed_overhead


# ----------------------------------------------------------------------
# result
# ----------------------------------------------------------------------
def _weighted_percentile(samples: List[Tuple[float, float]],
                         q: float) -> float:
    """Percentile of (value, weight) samples; NaN when empty."""
    if not samples:
        return math.nan
    ordered = sorted(samples)
    total = sum(w for _v, w in ordered)
    if total <= 0:
        return math.nan
    target = (q / 100.0) * total
    acc = 0.0
    for value, weight in ordered:
        acc += weight
        if acc >= target - 1e-12:
            return float(value)
    return float(ordered[-1][0])


@dataclass
class StreamingRunResult:
    """Full observable outcome of one executed streaming run."""

    engine: str
    arrival_kind: str
    offered_rate: float          # realised mean of the compiled plan
    duration: float
    nodes: int
    seed: int
    batch_interval: float
    checkpoint_interval: float
    plan_digest: str
    total_records: int
    processed_records: int
    #: One entry per non-empty ingest slice: ``(latency, floor,
    #: weight)`` where latency is final completion minus mean event
    #: time, ``floor`` the architectural lower bound for that slice
    #: (ingest granularity for continuous, residual batch wait for
    #: micro-batch) and ``weight`` the record count kept after
    #: shedding.
    samples: List[Tuple[float, float, float]] = field(default_factory=list)
    #: Event-time watermark trace: ``(sim_time, watermark)``.
    watermarks: List[Tuple[float, float]] = field(default_factory=list)
    checkpoints: int = 0
    makespan: float = 0.0
    drain_seconds: float = 0.0
    stable: bool = True
    crash_at: Optional[float] = None
    crashed: bool = False
    replayed_records: int = 0
    recovery_seconds: float = math.nan
    sim_events: int = 0
    #: Full scheduled crash sequence (absolute seconds; trailing
    #: entries may land past the makespan and never fire).
    crash_schedule: List[float] = field(default_factory=list)
    #: Crashes that actually hit the run, in order.
    crashes: List[float] = field(default_factory=list)
    restarts: int = 0
    #: The restart strategy declared the job failed (failure-rate cap
    #: exceeded or restart budget exhausted).
    job_failed: bool = False
    failed_at: Optional[float] = None
    #: Total pipeline-down time across all crashes (drain + restart).
    downtime_seconds: float = 0.0
    #: Records dropped by the shedding/batch policy (exact count).
    dropped_records: int = 0
    #: Records admitted but never processed (job failed mid-run).
    lost_records: int = 0
    shed_events: int = 0
    #: Sanctioned watermark-regression times (one per restart rollback).
    rollbacks: List[float] = field(default_factory=list)
    #: Active policy payloads (None = PR 6 baseline behaviour).
    restart_strategy: Optional[Dict[str, Any]] = None
    policy: Optional[Dict[str, Any]] = None
    #: Realised batch intervals (adaptive D-Stream runs only).
    batch_intervals: List[float] = field(default_factory=list)
    #: The active policy's latency guarantee (NaN without a policy);
    #: audited against the crash-free part of p99 under strict mode.
    p99_bound: float = math.nan

    def percentile(self, q: float) -> float:
        return _weighted_percentile(
            [(lat, w) for lat, _f, w in self.samples], q)

    @property
    def mean_latency(self) -> float:
        total = sum(w for _l, _f, w in self.samples)
        if total <= 0:
            return math.nan
        return sum(lat * w for lat, _f, w in self.samples) / total

    @property
    def final_watermark(self) -> float:
        return self.watermarks[-1][1] if self.watermarks else 0.0

    @property
    def goodput(self) -> float:
        """Processed records per second of offered load."""
        if self.duration <= 0:
            return math.nan
        return self.processed_records / self.duration

    @property
    def loss_fraction(self) -> float:
        """Fraction of ingested records shed or lost."""
        if self.total_records <= 0:
            return 0.0
        return ((self.dropped_records + self.lost_records)
                / self.total_records)

    @property
    def availability(self) -> float:
        """Fraction of the offered-load window the pipeline was up:
        downtime after crashes counts against it, and a failed job is
        down from the failure to the end of the window."""
        if self.duration <= 0:
            return math.nan
        end = self.duration
        if self.job_failed and self.failed_at is not None:
            end = min(self.failed_at, self.duration)
        up = max(0.0, end - self.downtime_seconds)
        return min(1.0, up / self.duration)

    def describe(self) -> str:
        head = (f"{self.engine:5s} {self.arrival_kind:7s} "
                f"@ {self.offered_rate:,.0f} rec/s")
        if self.job_failed:
            return (f"{head}: JOB FAILED at {self.failed_at:.1f}s "
                    f"after {self.restarts} restart(s), "
                    f"lost {self.lost_records:,d} records")
        if not self.stable:
            return f"{head}: UNSTABLE (drained {self.drain_seconds:.1f}s "\
                   f"past end)"
        parts = [f"p50 {1000 * self.percentile(50):.0f} ms",
                 f"p99 {1000 * self.percentile(99):.0f} ms",
                 f"{self.checkpoints} ckpt"]
        if self.dropped_records:
            parts.append(f"shed {self.loss_fraction:.1%}")
        if self.crashed:
            rec = ("never" if math.isnan(self.recovery_seconds)
                   else f"{self.recovery_seconds:.1f}s")
            parts.append(f"crash@{self.crashes[0]:.0f}s"
                         + (f" (+{len(self.crashes) - 1} more)"
                            if len(self.crashes) > 1 else "")
                         + f" recovered {rec}")
        return f"{head}: " + ", ".join(parts)

    def payload(self) -> Dict[str, Any]:
        return {
            "engine": self.engine, "arrival_kind": self.arrival_kind,
            "offered_rate": self.offered_rate, "duration": self.duration,
            "nodes": self.nodes, "seed": self.seed,
            "batch_interval": self.batch_interval,
            "checkpoint_interval": self.checkpoint_interval,
            "plan_digest": self.plan_digest,
            "total_records": self.total_records,
            "processed_records": self.processed_records,
            "samples": [list(s) for s in self.samples],
            "watermarks": [list(w) for w in self.watermarks],
            "checkpoints": self.checkpoints, "makespan": self.makespan,
            "drain_seconds": self.drain_seconds, "stable": self.stable,
            "crash_at": self.crash_at, "crashed": self.crashed,
            "replayed_records": self.replayed_records,
            "recovery_seconds": self.recovery_seconds,
            "sim_events": self.sim_events,
            "crash_schedule": list(self.crash_schedule),
            "crashes": list(self.crashes), "restarts": self.restarts,
            "job_failed": self.job_failed, "failed_at": self.failed_at,
            "downtime_seconds": self.downtime_seconds,
            "dropped_records": self.dropped_records,
            "lost_records": self.lost_records,
            "shed_events": self.shed_events,
            "rollbacks": list(self.rollbacks),
            "restart_strategy": self.restart_strategy,
            "policy": self.policy,
            "batch_intervals": list(self.batch_intervals),
            "p99_bound": self.p99_bound,
        }


# ----------------------------------------------------------------------
# shared run state
# ----------------------------------------------------------------------
class _StreamState:
    """Mutable bookkeeping shared by a driver and its slice workers."""

    def __init__(self, plan: ArrivalPlan) -> None:
        self.plan = plan
        n = plan.num_slices
        self.done = [False] * n
        self.completion: List[Optional[float]] = [None] * n
        #: True while the pipeline is down after a crash: in-flight
        #: slices still drain (wasted work) but must not advance the
        #: externally visible watermark — their results die with the
        #: pipeline.
        self.halted = False
        self.frontier = 0                  # first not-yet-done slice
        self.watermark = 0.0
        self.watermarks: List[Tuple[float, float]] = []
        self.checkpoints = 0
        self.ckpt_watermark = 0.0          # replay point on failure
        self.replayed_records = 0
        self.node_windows: Dict[int, List[float]] = {}
        self.node_busy: Dict[int, float] = {}
        self.first_launch = math.inf
        self.last_completion = 0.0
        #: Records shed per slice (policy decisions, made exactly once
        #: per slice at source admission).
        self.dropped = [0] * n
        self.shed_decided = [False] * n
        #: One entry per shed decision: (time, slice, dropped, queue).
        self.shed_events: List[Tuple[float, int, int, int]] = []
        #: Sanctioned watermark-regression times (restart rollbacks).
        self.rollbacks: List[float] = []
        self.downtime = 0.0
        #: Per-slice latency floor override (adaptive batching assigns
        #: slices to dynamic batch boundaries; None = static formula).
        self.floors: List[Optional[float]] = [None] * n

    def admitted(self, k: int) -> int:
        return self.plan.counts[k] - self.dropped[k]

    def advance_watermark(self, now: float) -> None:
        if self.halted:
            # Pipeline is down: draining slices burn resources but
            # their results are lost, so the watermark must not move
            # (rollback() recomputes the frontier afterwards).
            return
        moved = False
        while (self.frontier < self.plan.num_slices
               and self.done[self.frontier]):
            self.frontier += 1
            moved = True
        if moved:
            self.watermark = self.plan.slice_close(self.frontier - 1)
            self.watermarks.append((now, self.watermark))

    def rollback(self, now: float) -> List[int]:
        """Roll back to the last checkpoint; returns the slices to
        replay (completed or in flight past the checkpoint)."""
        replay = [k for k in range(self.plan.num_slices)
                  if self.plan.slice_close(k) > self.ckpt_watermark
                  and self.completion[k] is not None]
        for k in replay:
            self.done[k] = False
            self.completion[k] = None
            self.replayed_records += self.admitted(k)
        self.frontier = 0
        while (self.frontier < self.plan.num_slices
               and self.done[self.frontier]):
            self.frontier += 1
        self.watermark = self.ckpt_watermark
        self.watermarks.append((now, self.watermark))
        self.rollbacks.append(now)
        return replay

    def record_shed(self, now: float, k: int, dropped: int,
                    queued: int, tracer) -> None:
        self.dropped[k] += dropped
        self.shed_events.append((now, k, dropped, queued))
        if tracer is not None:
            tracer.record("operator", f"shed-{k:04d}", now, now,
                          key="SHED", dropped=dropped, queue=queued)

    def touch_node(self, node_index: int, start: float,
                   end: float) -> None:
        window = self.node_windows.get(node_index)
        if window is None:
            self.node_windows[node_index] = [start, end]
        else:
            window[0] = min(window[0], start)
            window[1] = max(window[1], end)
        self.node_busy[node_index] = (
            self.node_busy.get(node_index, 0.0) + (end - start))


# ----------------------------------------------------------------------
# crash-sequence cursor (shared by both drivers)
# ----------------------------------------------------------------------
class _CrashCursor:
    """Replaces the one-shot ``crash_log["crashed"]`` guard: walks a
    sorted crash schedule, asking the restart strategy after every hit.
    A crash whose time passes while the pipeline is down simply fires
    on the next pending check after the restart."""

    def __init__(self, sim, schedule: Sequence[float], strategy,
                 seed: int, crash_log: Dict[str, Any], tracer) -> None:
        self.sim = sim
        self.schedule = tuple(schedule)
        self.strategy = strategy
        self.seed = seed
        self.log = crash_log
        self.tracer = tracer

    def next_crash(self) -> Optional[float]:
        i = len(self.log["crashes"])
        return self.schedule[i] if i < len(self.schedule) else None

    def pending(self) -> bool:
        if self.log["job_failed"]:
            return False
        nxt = self.next_crash()
        return nxt is not None and self.sim.now >= nxt - 1e-12

    def hit(self) -> float:
        """Record the crash; returns its time."""
        crash_time = self.sim.now
        self.log["crashes"].append(crash_time)
        return crash_time

    def restart_delay(self) -> Optional[float]:
        """Consult the strategy (None = job failed, side effects
        recorded)."""
        delay = self.strategy.decide(self.log["crashes"], self.seed)
        if delay is None:
            crash_time = self.log["crashes"][-1]
            self.log["job_failed"] = True
            self.log["failed_at"] = crash_time
            if self.tracer is not None:
                self.tracer.record("operator", "job-failed", crash_time,
                                   self.sim.now, key="RESTART",
                                   attempt=len(self.log["crashes"]))
        return delay

    def record_restart(self, crash_time: float) -> None:
        self.log["restarts"].append((crash_time, self.sim.now))
        if self.tracer is not None:
            n = len(self.log["restarts"]) - 1
            self.tracer.record("operator", f"restart-{n:02d}",
                               crash_time, self.sim.now, key="RESTART",
                               attempt=n)


def _new_crash_log() -> Dict[str, Any]:
    return {"crashes": [], "restarts": [], "job_failed": False,
            "failed_at": None, "barriers": []}


# ----------------------------------------------------------------------
# continuous-operator engine (Flink-style)
# ----------------------------------------------------------------------
class _TokenPool:
    """Counting semaphore over simulation events: ``acquire`` blocks
    while ``capacity`` tokens are out — the network-buffer pool whose
    exhaustion is backpressure."""

    def __init__(self, sim, capacity: int) -> None:
        self.sim = sim
        self.capacity = capacity
        self.in_flight = 0
        self._waiters: List[Any] = []

    def acquire(self):
        evt = self.sim.event()
        if self.in_flight < self.capacity:
            self.in_flight += 1
            self.sim._schedule(evt, 0.0)
        else:
            self._waiters.append(evt)
        return evt

    def release(self) -> None:
        if self._waiters:
            self.sim._schedule(self._waiters.pop(0), 0.0)
        else:
            self.in_flight -= 1


def _continuous_slice_proc(cluster: Cluster, state: _StreamState,
                           model: StreamingWorkloadModel, k: int,
                           tokens: _TokenPool, done_evt) -> Any:
    plan = state.plan
    count = state.admitted(k)
    n = cluster.num_nodes
    fluid = cluster.fluid
    share = count / n
    cpu = (share * model.core_seconds_per_record
           * model.streaming_record_overhead)
    shuffle = (share * model.record_bytes * model.shuffle_fanout
               * (n - 1) / n)
    start = cluster.now
    events = []
    for node in cluster.nodes:
        if cpu > 0:
            events.append(fluid.transfer(cpu, [node.cpu]))
        if shuffle > 0:
            events.append(fluid.transfer(shuffle, [node.nic_out]))
            events.append(fluid.transfer(shuffle, [node.nic_in]))
    if len(events) == 1:
        yield events[0]
    elif events:
        yield cluster.sim.all_of(events)
    now = cluster.now
    state.completion[k] = now
    state.done[k] = True
    state.last_completion = max(state.last_completion, now)
    for ni in range(n):
        state.touch_node(ni, start, now)
    state.advance_watermark(now)
    done_evt.succeed()
    tokens.release()


def _continuous_driver(cluster: Cluster, state: _StreamState,
                       model: StreamingWorkloadModel,
                       checkpoint_interval: float, barrier_sync: float,
                       queue_depth: int, cursor: _CrashCursor,
                       shedding, crash_log: Dict[str, Any]):
    sim = cluster.sim
    plan = state.plan
    tracer = cluster.tracer
    tokens = _TokenPool(sim, queue_depth)
    done_evts: Dict[int, Any] = {}
    work = deque(range(plan.num_slices))
    next_ckpt = checkpoint_interval
    barriers: List[Tuple[float, float]] = []

    def do_crash():
        crash_time = cursor.hit()
        # In-flight slices finish burning resources but their results
        # are lost with the pipeline (wasted work), then the process
        # restarts and replays from the last completed barrier.
        state.halted = True
        outstanding = [evt for k, evt in done_evts.items()
                       if not state.done[k]]
        if outstanding:
            yield sim.all_of(outstanding)
        delay = cursor.restart_delay()
        if delay is None:
            state.downtime += sim.now - crash_time
            return
        yield sim.timeout(delay)
        state.downtime += sim.now - crash_time
        cursor.record_restart(crash_time)
        replay = state.rollback(sim.now)
        state.halted = False
        merged = sorted(set(replay) | set(work))
        work.clear()
        work.extend(merged)

    def shed_arrivals() -> None:
        """Source-buffer admission: decide each newly closed slice's
        fate exactly once, in arrival order, against the current queue
        of already-admitted waiting slices."""
        now = sim.now
        removed = None
        queued = 0
        for j in work:
            if plan.slice_close(j) > now + 1e-12:
                break
            if state.shed_decided[j]:
                queued += 1
                continue
            state.shed_decided[j] = True
            admitted = state.admitted(j)
            drop = 0
            if admitted > 0:
                drop = max(0, min(admitted,
                                  shedding.shed(queued, admitted)))
            if drop > 0:
                state.record_shed(now, j, drop, queued, tracer)
            if state.dropped[j] >= plan.counts[j]:
                # Nothing left to process (fully shed, or an empty
                # slice): event time still advances past it.
                state.done[j] = True
                if removed is None:
                    removed = set()
                removed.add(j)
            else:
                queued += 1
        if removed:
            remaining = [j for j in work if j not in removed]
            work.clear()
            work.extend(remaining)
            state.advance_watermark(now)

    while True:
        while work:
            if crash_log["job_failed"]:
                break
            if cursor.pending():
                yield from do_crash()
                continue
            if shedding is not None:
                shed_arrivals()
                if not work:
                    continue
            k = work[0]
            avail = plan.slice_close(k)
            if sim.now < avail:
                nxt = cursor.next_crash()
                if nxt is not None and nxt < avail:
                    yield sim.timeout(max(0.0, nxt - sim.now))
                    continue
                yield sim.timeout(avail - sim.now)
            if state.watermark >= next_ckpt - 1e-12:
                # Aligned barrier: the pipeline stalls while operators
                # align and snapshot; the checkpoint pins the replay
                # point for failure recovery.
                yield sim.timeout(barrier_sync)
                state.checkpoints += 1
                state.ckpt_watermark = state.watermark
                barriers.append((sim.now, state.watermark))
                next_ckpt += checkpoint_interval
                continue
            yield tokens.acquire()
            work.popleft()
            state.first_launch = min(state.first_launch, sim.now)
            evt = sim.event()
            done_evts[k] = evt
            sim.process(_continuous_slice_proc(
                cluster, state, model, k, tokens, evt))
        outstanding = [evt for k, evt in done_evts.items()
                       if not state.done[k]]
        if outstanding:
            yield sim.all_of(outstanding)
        if crash_log["job_failed"]:
            break
        if cursor.pending():
            yield from do_crash()
            continue
        break
    crash_log["barriers"] = barriers


# ----------------------------------------------------------------------
# micro-batch engine (Spark-style D-Streams)
# ----------------------------------------------------------------------
def _batch_phases(model: StreamingWorkloadModel, nodes: int, cores: int,
                  records: int, overhead: float) -> List[PhaseSpec]:
    cpu_total = records * model.core_seconds_per_record
    shuffle_total = (records * model.record_bytes * model.shuffle_fanout
                     * (nodes - 1) / nodes)
    return [
        PhaseSpec("Receive->FlatMap->MapToPair", "RM",
                  uniform_resources(nodes,
                                    cpu_core_seconds=cpu_total * 0.6,
                                    cpu_slots=cores,
                                    net_out_bytes=shuffle_total),
                  startup_delay=overhead),
        PhaseSpec("Shuffle->ReduceByKey->UpdateState", "SA",
                  uniform_resources(nodes,
                                    cpu_core_seconds=cpu_total * 0.4,
                                    cpu_slots=cores,
                                    net_in_bytes=shuffle_total)),
    ]


def _dstream_crash(cluster: Cluster, state: _StreamState,
                   model: StreamingWorkloadModel,
                   executor: PhaseExecutor, cursor: _CrashCursor):
    """One D-Stream crash/restart cycle: the driver restarts after the
    strategy's delay and lineage-recomputes everything since the last
    RDD/WAL checkpoint as one parallel job (no per-batch scheduling
    overhead — it is a single recovery job)."""
    sim = cluster.sim
    plan = state.plan
    tracer = cluster.tracer
    crash_time = cursor.hit()
    delay = cursor.restart_delay()
    if delay is None:
        return
    yield sim.timeout(delay)
    state.downtime += sim.now - crash_time
    cursor.record_restart(crash_time)
    replay = state.rollback(sim.now)
    records = sum(state.admitted(k) for k in replay)
    restored = max([plan.slice_close(k) for k in replay],
                   default=state.ckpt_watermark)
    if replay:
        span = None
        if tracer is not None:
            span = tracer.begin("job", "lineage-recovery", sim.now)
        yield from executor.run_staged(
            "lineage-recovery",
            _batch_phases(model, cluster.num_nodes, cluster.spec.cores,
                          records, overhead=0.0))
        if tracer is not None:
            tracer.end(span, sim.now)
        now = sim.now
        for k in replay:
            state.completion[k] = now
            state.done[k] = True
        state.advance_watermark(now)
        assert state.watermark >= restored - 1e-9


def _dstream_driver(cluster: Cluster, state: _StreamState,
                    model: StreamingWorkloadModel, batch_interval: float,
                    checkpoint_interval: float, cursor: _CrashCursor,
                    crash_log: Dict[str, Any]):
    sim = cluster.sim
    plan = state.plan
    cores = cluster.spec.cores
    n = cluster.num_nodes
    executor = PhaseExecutor(cluster, hdfs=None, chunks_per_phase=4)
    tracer = cluster.tracer
    num_batches = max(1, int(math.ceil(
        plan.duration / batch_interval - 1e-9)))
    # Slice k belongs to the batch open when it closes.
    batches: List[List[int]] = [[] for _ in range(num_batches)]
    for k in range(plan.num_slices):
        b = min(num_batches - 1,
                int((plan.slice_close(k) - 1e-9) // batch_interval))
        batches[b].append(k)
    next_ckpt = checkpoint_interval

    for b, members in enumerate(batches):
        close = (b + 1) * batch_interval
        while sim.now < close:
            if cursor.pending():
                yield from _dstream_crash(cluster, state, model,
                                          executor, cursor)
                if crash_log["job_failed"]:
                    return
                continue
            nxt = cursor.next_crash()
            if nxt is not None and nxt < close:
                yield sim.timeout(max(0.0, nxt - sim.now))
            else:
                yield sim.timeout(close - sim.now)
        if cursor.pending():
            yield from _dstream_crash(cluster, state, model,
                                      executor, cursor)
            if crash_log["job_failed"]:
                return
        records = sum(plan.counts[k] for k in members)
        state.first_launch = min(state.first_launch, sim.now)
        start = sim.now
        span = None
        if tracer is not None:
            span = tracer.begin("job", f"batch-{b:04d}", start)
        yield from executor.run_staged(
            f"batch-{b:04d}",
            _batch_phases(model, n, cores, records,
                          overhead=model.batch_fixed_overhead))
        if tracer is not None:
            tracer.end(span, sim.now)
        now = sim.now
        state.last_completion = max(state.last_completion, now)
        for k in members:
            state.completion[k] = now
            state.done[k] = True
        for ni in range(n):
            state.touch_node(ni, start, now)
        state.advance_watermark(now)
        if close >= next_ckpt - 1e-9:
            # The RDD/state checkpoint piggybacks on the batch job, so
            # unlike the continuous engine's barrier it adds no stall;
            # its cost shows up at recovery time instead.
            state.checkpoints += 1
            state.ckpt_watermark = close
            while close >= next_ckpt - 1e-9:
                next_ckpt += checkpoint_interval
    while cursor.pending():
        yield from _dstream_crash(cluster, state, model, executor, cursor)
        if crash_log["job_failed"]:
            return


def _dstream_adaptive_driver(cluster: Cluster, state: _StreamState,
                             model: StreamingWorkloadModel,
                             batch_interval: float,
                             checkpoint_interval: float,
                             cursor: _CrashCursor, batch_policy,
                             crash_log: Dict[str, Any]):
    """The D-Stream driver under an :class:`AdaptiveBatchPolicy`:
    batch boundaries advance by the controller's current interval
    (bounded staleness), and the receiver sheds arrivals beyond the
    measured sustainable rate (bounded latency at a loss fraction)."""
    sim = cluster.sim
    plan = state.plan
    cores = cluster.spec.cores
    n = cluster.num_nodes
    executor = PhaseExecutor(cluster, hdfs=None, chunks_per_phase=4)
    tracer = cluster.tracer
    controller = BatchIntervalController(batch_policy, batch_interval)
    crash_log["controller"] = controller
    next_ckpt = checkpoint_interval
    next_slice = 0
    b = 0
    close = controller.interval

    while True:
        while sim.now < close:
            if cursor.pending():
                yield from _dstream_crash(cluster, state, model,
                                          executor, cursor)
                if crash_log["job_failed"]:
                    return
                continue
            nxt = cursor.next_crash()
            if nxt is not None and nxt < close:
                yield sim.timeout(max(0.0, nxt - sim.now))
            else:
                yield sim.timeout(close - sim.now)
        if cursor.pending():
            yield from _dstream_crash(cluster, state, model,
                                      executor, cursor)
            if crash_log["job_failed"]:
                return
        # Assemble the batch: every slice closed by this boundary.
        members: List[int] = []
        while (next_slice < plan.num_slices
               and plan.slice_close(next_slice) <= close + 1e-9):
            members.append(next_slice)
            next_slice += 1
        # Receiver-side shedding: admit up to the measured sustainable
        # budget, drop-tail on the newest arrivals beyond it.
        budget = controller.admissible()
        records = 0
        for k in members:
            state.floors[k] = close - plan.slice_midpoint(k)
            state.shed_decided[k] = True
            admitted = plan.counts[k]
            if math.isfinite(budget) and records + admitted > budget:
                keep = max(0, int(budget) - records)
                drop = admitted - keep
                if drop > 0:
                    state.record_shed(sim.now, k, drop, b, tracer)
                admitted = keep
            records += admitted
        start = sim.now
        span = None
        if tracer is not None:
            span = tracer.begin("job", f"batch-{b:04d}", start)
        yield from executor.run_staged(
            f"batch-{b:04d}",
            _batch_phases(model, n, cores, records,
                          overhead=model.batch_fixed_overhead))
        if tracer is not None:
            tracer.end(span, sim.now)
        now = sim.now
        state.first_launch = min(state.first_launch, start)
        state.last_completion = max(state.last_completion, now)
        for k in members:
            if state.admitted(k) > 0 or plan.counts[k] == 0:
                state.completion[k] = now
            state.done[k] = True
        for ni in range(n):
            state.touch_node(ni, start, now)
        state.advance_watermark(now)
        controller.observe(records, now - start)
        if close >= next_ckpt - 1e-9:
            state.checkpoints += 1
            state.ckpt_watermark = min(close, plan.duration)
            while close >= next_ckpt - 1e-9:
                next_ckpt += checkpoint_interval
        if next_slice >= plan.num_slices:
            break
        close += controller.interval
        b += 1
    while cursor.pending():
        yield from _dstream_crash(cluster, state, model, executor, cursor)
        if crash_log["job_failed"]:
            return


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def _recovery_seconds(watermarks: List[Tuple[float, float]],
                      first_crash: float, last_crash: float,
                      tolerance: float) -> float:
    """First time after the last crash at which the ingest lag (sim
    time minus watermark) returns to its level before the first crash,
    as seconds since the last crash; NaN when the run never catches
    back up."""
    pre = [(t, wm) for t, wm in watermarks if t <= first_crash]
    if not pre:
        return math.nan
    t0, wm0 = pre[-1]
    steady_lag = t0 - wm0
    for t, wm in watermarks:
        if t <= last_crash:
            continue
        if t - wm <= steady_lag + tolerance:
            return t - last_crash
    return math.nan


def run_streaming(engine: str, arrivals, *, duration: float = 30.0,
                  nodes: int = 8,
                  model: Optional[StreamingWorkloadModel] = None,
                  spec: HardwareSpec = GRID5000_PARAVANCE, seed: int = 0,
                  batch_interval: float = 1.0,
                  checkpoint_interval: float = 10.0,
                  barrier_sync: float = DEFAULT_BARRIER_SYNC,
                  network_buffers: int = 2048, parallelism: int = 16,
                  crash_at: Optional[float] = None,
                  crash_times: Optional[Sequence[float]] = None,
                  restart_delay: float = 2.0,
                  restart_strategy=None, shedding=None,
                  batch_policy=None,
                  strict: Optional[bool] = None, tracer=None,
                  trace_detail: str = "coarse") -> StreamingRunResult:
    """Execute one streaming run on the fluid kernel.

    ``arrivals`` is either a compiled :class:`~repro.streaming.
    arrivals.ArrivalPlan` (its duration wins) or an arrival process
    with a ``compile(seed, duration)`` method.  ``engine`` selects the
    continuous-operator pipeline (``"flink"``) or the micro-batch
    D-Stream driver (``"spark"``).

    Failures: ``crash_times`` (plus the legacy single ``crash_at``)
    form the sorted crash schedule — compile one from a fault rate
    with :func:`~repro.streaming.policies.compile_crash_schedule`.
    ``restart_strategy`` (default: fixed delay of ``restart_delay``
    seconds) decides the wait after each crash or declares the job
    failed.  Overload: pass ``shedding`` (continuous engine) or
    ``batch_policy`` (D-Stream engine) from :mod:`repro.streaming.
    policies` to bound latency at a measured loss fraction.
    Deterministic for fixed inputs.
    """
    if engine not in STREAMING_ENGINES:
        raise ValueError(f"unknown streaming engine {engine!r}; "
                         f"one of {STREAMING_ENGINES}")
    if batch_interval <= 0:
        raise ValueError("batch_interval must be positive")
    if checkpoint_interval <= 0:
        raise ValueError("checkpoint_interval must be positive")
    schedule: List[float] = []
    if crash_at is not None:
        if crash_at <= 0:
            raise ValueError("crash_at must be positive")
        schedule.append(float(crash_at))
    if crash_times:
        if any(t <= 0 for t in crash_times):
            raise ValueError("crash times must be positive")
        schedule.extend(float(t) for t in crash_times)
    schedule.sort()
    strategy = (restart_strategy if restart_strategy is not None
                else FixedDelayRestart(delay=restart_delay))
    strategy.validate()
    if shedding is not None:
        if engine != "flink":
            raise ValueError("shedding policies apply to the "
                             "continuous engine (flink)")
        shedding.validate()
    if batch_policy is not None:
        if engine != "spark":
            raise ValueError("batch policies apply to the micro-batch "
                             "engine (spark)")
        batch_policy.validate()
    model = model if model is not None else StreamingWorkloadModel()
    if isinstance(arrivals, ArrivalPlan):
        plan = arrivals
    else:
        plan = arrivals.compile(seed, duration)

    cluster = Cluster(nodes, spec=spec, seed=seed,
                      trace_detail=trace_detail)
    cluster.tracer = tracer
    checker = None
    if strict_enabled(strict):
        checker = InvariantChecker().attach(cluster)
    state = _StreamState(plan)
    crash_log = _new_crash_log()

    run_span = job_span = None
    if tracer is not None:
        run_span = tracer.begin(
            "run", f"streaming-{engine}-{plan.kind}", 0.0)
    cursor = _CrashCursor(cluster.sim, schedule, strategy, seed,
                          crash_log, tracer)
    if engine == "flink":
        depth = queue_depth_from_buffers(network_buffers, parallelism)
        if tracer is not None:
            job_span = tracer.begin("job", "continuous-pipeline", 0.0)
        driver = _continuous_driver(
            cluster, state, model, checkpoint_interval, barrier_sync,
            depth, cursor, shedding, crash_log)
    elif batch_policy is not None:
        driver = _dstream_adaptive_driver(
            cluster, state, model, batch_interval, checkpoint_interval,
            cursor, batch_policy, crash_log)
    else:
        driver = _dstream_driver(
            cluster, state, model, batch_interval, checkpoint_interval,
            cursor, crash_log)
    cluster.run_process(driver)
    makespan = cluster.now

    if tracer is not None:
        if engine == "flink" and state.first_launch < math.inf:
            op = tracer.record(
                "operator", "Source->KeyBy->WindowAggregate",
                state.first_launch, state.last_completion, key="SKW",
                parent=job_span)
            for ni in sorted(state.node_windows):
                window = state.node_windows[ni]
                tracer.record("task", f"SKW@node-{ni:03d}", window[0],
                              window[1], parent=op, key="SKW", node=ni,
                              busy=state.node_busy.get(ni, 0.0))
            for i, (t, wm) in enumerate(crash_log.get("barriers", [])):
                tracer.record("operator", f"barrier-{i:03d}",
                              t - barrier_sync, t, key="CKPT",
                              parent=job_span, watermark=wm)
        if job_span is not None:
            tracer.end(job_span, makespan)
        tracer.end(run_span, makespan)

    crashes = list(crash_log["crashes"])
    crashed = bool(crashes)
    job_failed = bool(crash_log["job_failed"])
    tolerance = (2.0 * plan.slice_width if engine == "flink"
                 else max(plan.slice_width, 0.25 * batch_interval))
    recovery = math.nan
    if crashed and not job_failed:
        recovery = _recovery_seconds(state.watermarks, crashes[0],
                                     crashes[-1], tolerance)
    drain = max(0.0, makespan - plan.duration)
    if crashed:
        drain = max(0.0, drain - state.downtime)
    if job_failed:
        stable = False
    elif crashed:
        stable = not math.isnan(recovery)
    elif shedding is not None:
        stable = drain <= shedding.drain_bound(plan.slice_width)
    elif batch_policy is not None:
        stable = drain <= batch_policy.drain_bound(
            batch_interval, model.batch_fixed_overhead)
    else:
        stable = drain <= stable_drain_bound(
            engine, model, batch_interval, plan.slice_width)

    samples: List[Tuple[float, float, float]] = []
    processed = 0
    lost = 0
    for k in range(plan.num_slices):
        admitted = state.admitted(k)
        completion = state.completion[k]
        if completion is None:
            lost += admitted
            continue
        processed += admitted
        if admitted == 0:
            continue
        mid = plan.slice_midpoint(k)
        if state.floors[k] is not None:
            floor = state.floors[k]
        elif engine == "flink":
            floor = plan.slice_close(k) - mid
        else:
            b = min(int(math.ceil(plan.duration / batch_interval
                                  - 1e-9)) - 1,
                    int((plan.slice_close(k) - 1e-9) // batch_interval))
            floor = (b + 1) * batch_interval - mid
        samples.append((completion - mid, floor, float(admitted)))

    p99_bound = math.nan
    if shedding is not None:
        p99_bound = shedding.p99_bound(plan.slice_width)
    elif batch_policy is not None:
        p99_bound = batch_policy.p99_bound(batch_interval)
    controller = crash_log.get("controller")

    result = StreamingRunResult(
        engine=engine, arrival_kind=plan.kind,
        offered_rate=plan.offered_rate, duration=plan.duration,
        nodes=nodes, seed=seed, batch_interval=batch_interval,
        checkpoint_interval=checkpoint_interval,
        plan_digest=plan.digest(), total_records=plan.total_records,
        processed_records=processed, samples=samples,
        watermarks=list(state.watermarks),
        checkpoints=state.checkpoints, makespan=makespan,
        drain_seconds=drain, stable=stable,
        crash_at=(schedule[0] if schedule else None),
        crashed=crashed, replayed_records=state.replayed_records,
        recovery_seconds=recovery,
        sim_events=cluster.sim.steps_executed,
        crash_schedule=list(schedule), crashes=crashes,
        restarts=len(crash_log["restarts"]), job_failed=job_failed,
        failed_at=crash_log["failed_at"],
        downtime_seconds=state.downtime,
        dropped_records=sum(state.dropped), lost_records=lost,
        shed_events=len(state.shed_events),
        rollbacks=list(state.rollbacks),
        restart_strategy=strategy.payload(),
        policy=(shedding.payload() if shedding is not None
                else batch_policy.payload() if batch_policy is not None
                else None),
        batch_intervals=(list(controller.intervals)
                         if controller is not None else []),
        p99_bound=p99_bound)

    if checker is not None:
        checker.audit_cluster(cluster)
        checker.audit_streaming(result)
        checker.require_clean(f"streaming {engine}/{plan.kind}")

    return result
