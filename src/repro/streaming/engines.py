"""Executed streaming engines on the fluid simulation kernel.

This is the paper's §VIII future-work question made executable.  The
analytic sketch in :mod:`repro.streaming.model` answers it in closed
form; this module answers it by *running* the two architectures on the
same cluster substrate the batch engines use, and the analytic model is
demoted to a differential oracle (see ``tests/streaming``).

* **Continuous-operator engine** (Flink-style, ``engine="flink"``) —
  a pipelined ``source -> keyBy/shuffle -> window-aggregate`` chain.
  Ingest slices flow through the operators as fluid demands (CPU on
  every node, all-to-all shuffle on the NICs); at most ``queue_depth``
  slices are in flight, where the depth is derived from Flink's
  network-buffer pool exactly like the batch engine derives its
  pipeline depth — a full buffer pool blocks the sources, which is
  backpressure.  The event-time watermark advances over the completed
  slice prefix, and an aligned barrier checkpoint stalls the pipeline
  for :data:`DEFAULT_BARRIER_SYNC` seconds once per checkpoint
  interval (the latency cost of Chandy-Lamport alignment).

* **Micro-batch D-Stream engine** (Spark-style, ``engine="spark"``) —
  arrivals are chopped into ``batch_interval`` batches; each batch runs
  as a small two-phase staged job through the shared
  :class:`~repro.engines.common.execution.PhaseExecutor` (receive/map,
  then shuffle/aggregate, with the per-batch scheduling overhead as the
  first phase's startup delay).  The driver is serial, so when a batch
  takes longer than the interval the next batch starts late and the
  backlog — the micro-batch instability of the analytic model —
  emerges from execution rather than being assumed.

**Failure model** (fig21): a node crash at ``crash_at`` kills the
whole pipeline for Flink 0.10 (full restart from the last completed
checkpoint, then replay) and loses the in-flight/unckeckpointed batch
state for Spark (driver restarts, lineage recomputes the window since
the last RDD checkpoint as one parallel job).  The crashed process
restarts after ``restart_delay`` seconds on the same machine, so
steady-state capacity is unchanged; recovery time is measured as the
first time the ingest lag returns to its pre-crash level.

Everything is deterministic: the arrival randomness is compiled into
an :class:`~repro.streaming.arrivals.ArrivalPlan` before the cluster
exists, and the engines themselves draw no random numbers.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..cluster.node import GRID5000_PARAVANCE, HardwareSpec
from ..cluster.topology import Cluster
from ..engines.common.execution import (PhaseExecutor, PhaseSpec,
                                        uniform_resources)
from ..validation.invariants import InvariantChecker, strict_enabled
from .arrivals import DEFAULT_SLICE_WIDTH, ArrivalPlan
from .model import StreamingWorkloadModel

__all__ = ["StreamingRunResult", "run_streaming", "STREAMING_ENGINES",
           "queue_depth_from_buffers", "stable_drain_bound",
           "DEFAULT_BARRIER_SYNC"]

STREAMING_ENGINES = ("flink", "spark")

#: Pipeline stall per aligned barrier checkpoint (seconds): barrier
#: alignment plus the synchronous part of the state snapshot.
DEFAULT_BARRIER_SYNC = 0.05


def queue_depth_from_buffers(network_buffers: int,
                             parallelism: int) -> int:
    """Pipeline depth (in-flight ingest slices) from the network-buffer
    pool — the same derivation the batch Flink engine uses for its
    chunk queues: each of the ``parallelism``\\ *8 logical channels
    owns a share of the pool, clamped to a sane pipelining range."""
    per_link = network_buffers / max(1, parallelism * 8)
    return max(1, min(4, int(per_link)))


def stable_drain_bound(engine: str, model: StreamingWorkloadModel,
                       batch_interval: float,
                       slice_width: float = DEFAULT_SLICE_WIDTH) -> float:
    """Documented stability test: a run is *stable* when, after the
    offered load ends, the engine drains its backlog within this bound.

    For the continuous engine the steady in-flight residue is at most
    ``queue_depth`` slices of service (each under one slice width when
    stable); for the micro-batch engine the final batch still has to
    run after it closes, so up to one batch time (< interval when
    stable) plus the fixed overhead remains.  Overload instead leaves a
    backlog that grows linearly in the run length, so with the default
    40 s campaigns the boundary resolves ``max_stable_throughput``
    to within ~10-15% (asserted in ``tests/streaming``).
    """
    if engine == "flink":
        return max(1.0, 6.0 * slice_width)
    return 1.25 * batch_interval + model.batch_fixed_overhead


# ----------------------------------------------------------------------
# result
# ----------------------------------------------------------------------
def _weighted_percentile(samples: List[Tuple[float, float]],
                         q: float) -> float:
    """Percentile of (value, weight) samples; NaN when empty."""
    if not samples:
        return math.nan
    ordered = sorted(samples)
    total = sum(w for _v, w in ordered)
    if total <= 0:
        return math.nan
    target = (q / 100.0) * total
    acc = 0.0
    for value, weight in ordered:
        acc += weight
        if acc >= target - 1e-12:
            return float(value)
    return float(ordered[-1][0])


@dataclass
class StreamingRunResult:
    """Full observable outcome of one executed streaming run."""

    engine: str
    arrival_kind: str
    offered_rate: float          # realised mean of the compiled plan
    duration: float
    nodes: int
    seed: int
    batch_interval: float
    checkpoint_interval: float
    plan_digest: str
    total_records: int
    processed_records: int
    #: One entry per non-empty ingest slice: ``(latency, floor,
    #: weight)`` where latency is final completion minus mean event
    #: time, ``floor`` the architectural lower bound for that slice
    #: (ingest granularity for continuous, residual batch wait for
    #: micro-batch) and ``weight`` the record count.
    samples: List[Tuple[float, float, float]] = field(default_factory=list)
    #: Event-time watermark trace: ``(sim_time, watermark)``.
    watermarks: List[Tuple[float, float]] = field(default_factory=list)
    checkpoints: int = 0
    makespan: float = 0.0
    drain_seconds: float = 0.0
    stable: bool = True
    crash_at: Optional[float] = None
    crashed: bool = False
    replayed_records: int = 0
    recovery_seconds: float = math.nan
    sim_events: int = 0

    def percentile(self, q: float) -> float:
        return _weighted_percentile(
            [(lat, w) for lat, _f, w in self.samples], q)

    @property
    def mean_latency(self) -> float:
        total = sum(w for _l, _f, w in self.samples)
        if total <= 0:
            return math.nan
        return sum(lat * w for lat, _f, w in self.samples) / total

    @property
    def final_watermark(self) -> float:
        return self.watermarks[-1][1] if self.watermarks else 0.0

    def describe(self) -> str:
        head = (f"{self.engine:5s} {self.arrival_kind:7s} "
                f"@ {self.offered_rate:,.0f} rec/s")
        if not self.stable:
            return f"{head}: UNSTABLE (drained {self.drain_seconds:.1f}s "\
                   f"past end)"
        parts = [f"p50 {1000 * self.percentile(50):.0f} ms",
                 f"p99 {1000 * self.percentile(99):.0f} ms",
                 f"{self.checkpoints} ckpt"]
        if self.crashed:
            rec = ("never" if math.isnan(self.recovery_seconds)
                   else f"{self.recovery_seconds:.1f}s")
            parts.append(f"crash@{self.crash_at:.0f}s recovered {rec}")
        return f"{head}: " + ", ".join(parts)

    def payload(self) -> Dict[str, Any]:
        return {
            "engine": self.engine, "arrival_kind": self.arrival_kind,
            "offered_rate": self.offered_rate, "duration": self.duration,
            "nodes": self.nodes, "seed": self.seed,
            "batch_interval": self.batch_interval,
            "checkpoint_interval": self.checkpoint_interval,
            "plan_digest": self.plan_digest,
            "total_records": self.total_records,
            "processed_records": self.processed_records,
            "samples": [list(s) for s in self.samples],
            "watermarks": [list(w) for w in self.watermarks],
            "checkpoints": self.checkpoints, "makespan": self.makespan,
            "drain_seconds": self.drain_seconds, "stable": self.stable,
            "crash_at": self.crash_at, "crashed": self.crashed,
            "replayed_records": self.replayed_records,
            "recovery_seconds": self.recovery_seconds,
            "sim_events": self.sim_events,
        }


# ----------------------------------------------------------------------
# shared run state
# ----------------------------------------------------------------------
class _StreamState:
    """Mutable bookkeeping shared by a driver and its slice workers."""

    def __init__(self, plan: ArrivalPlan) -> None:
        self.plan = plan
        n = plan.num_slices
        self.done = [False] * n
        self.completion: List[Optional[float]] = [None] * n
        #: True while the pipeline is down after a crash: in-flight
        #: slices still drain (wasted work) but must not advance the
        #: externally visible watermark — their results die with the
        #: pipeline.
        self.halted = False
        self.frontier = 0                  # first not-yet-done slice
        self.watermark = 0.0
        self.watermarks: List[Tuple[float, float]] = []
        self.checkpoints = 0
        self.ckpt_watermark = 0.0          # replay point on failure
        self.replayed_records = 0
        self.node_windows: Dict[int, List[float]] = {}
        self.node_busy: Dict[int, float] = {}
        self.first_launch = math.inf
        self.last_completion = 0.0

    def advance_watermark(self, now: float) -> None:
        if self.halted:
            # Pipeline is down: draining slices burn resources but
            # their results are lost, so the watermark must not move
            # (rollback() recomputes the frontier afterwards).
            return
        moved = False
        while (self.frontier < self.plan.num_slices
               and self.done[self.frontier]):
            self.frontier += 1
            moved = True
        if moved:
            self.watermark = self.plan.slice_close(self.frontier - 1)
            self.watermarks.append((now, self.watermark))

    def rollback(self, now: float) -> List[int]:
        """Roll back to the last checkpoint; returns the slices to
        replay (completed or in flight past the checkpoint)."""
        replay = [k for k in range(self.plan.num_slices)
                  if self.plan.slice_close(k) > self.ckpt_watermark
                  and self.completion[k] is not None]
        for k in replay:
            self.done[k] = False
            self.completion[k] = None
            self.replayed_records += self.plan.counts[k]
        self.frontier = 0
        while (self.frontier < self.plan.num_slices
               and self.done[self.frontier]):
            self.frontier += 1
        self.watermark = self.ckpt_watermark
        self.watermarks.append((now, self.watermark))
        return replay

    def touch_node(self, node_index: int, start: float,
                   end: float) -> None:
        window = self.node_windows.get(node_index)
        if window is None:
            self.node_windows[node_index] = [start, end]
        else:
            window[0] = min(window[0], start)
            window[1] = max(window[1], end)
        self.node_busy[node_index] = (
            self.node_busy.get(node_index, 0.0) + (end - start))


# ----------------------------------------------------------------------
# continuous-operator engine (Flink-style)
# ----------------------------------------------------------------------
class _TokenPool:
    """Counting semaphore over simulation events: ``acquire`` blocks
    while ``capacity`` tokens are out — the network-buffer pool whose
    exhaustion is backpressure."""

    def __init__(self, sim, capacity: int) -> None:
        self.sim = sim
        self.capacity = capacity
        self.in_flight = 0
        self._waiters: List[Any] = []

    def acquire(self):
        evt = self.sim.event()
        if self.in_flight < self.capacity:
            self.in_flight += 1
            self.sim._schedule(evt, 0.0)
        else:
            self._waiters.append(evt)
        return evt

    def release(self) -> None:
        if self._waiters:
            self.sim._schedule(self._waiters.pop(0), 0.0)
        else:
            self.in_flight -= 1


def _continuous_slice_proc(cluster: Cluster, state: _StreamState,
                           model: StreamingWorkloadModel, k: int,
                           tokens: _TokenPool, done_evt) -> Any:
    plan = state.plan
    count = plan.counts[k]
    n = cluster.num_nodes
    fluid = cluster.fluid
    share = count / n
    cpu = (share * model.core_seconds_per_record
           * model.streaming_record_overhead)
    shuffle = (share * model.record_bytes * model.shuffle_fanout
               * (n - 1) / n)
    start = cluster.now
    events = []
    for node in cluster.nodes:
        if cpu > 0:
            events.append(fluid.transfer(cpu, [node.cpu]))
        if shuffle > 0:
            events.append(fluid.transfer(shuffle, [node.nic_out]))
            events.append(fluid.transfer(shuffle, [node.nic_in]))
    if len(events) == 1:
        yield events[0]
    elif events:
        yield cluster.sim.all_of(events)
    now = cluster.now
    state.completion[k] = now
    state.done[k] = True
    state.last_completion = max(state.last_completion, now)
    for ni in range(n):
        state.touch_node(ni, start, now)
    state.advance_watermark(now)
    done_evt.succeed()
    tokens.release()


def _continuous_driver(cluster: Cluster, state: _StreamState,
                       model: StreamingWorkloadModel,
                       checkpoint_interval: float, barrier_sync: float,
                       queue_depth: int, crash_at: Optional[float],
                       restart_delay: float, crash_log: Dict[str, Any]):
    sim = cluster.sim
    plan = state.plan
    tokens = _TokenPool(sim, queue_depth)
    done_evts: Dict[int, Any] = {}
    work = deque(range(plan.num_slices))
    next_ckpt = checkpoint_interval
    barriers: List[Tuple[float, float]] = []

    def crash_pending() -> bool:
        return (crash_at is not None and not crash_log["crashed"]
                and sim.now >= crash_at - 1e-12)

    def do_crash():
        crash_log["crashed"] = True
        crash_log["crash_time"] = sim.now
        # In-flight slices finish burning resources but their results
        # are lost with the pipeline (wasted work), then the process
        # restarts and replays from the last completed barrier.
        state.halted = True
        outstanding = [evt for k, evt in done_evts.items()
                       if not state.done[k]]
        if outstanding:
            yield sim.all_of(outstanding)
        yield sim.timeout(restart_delay)
        replay = state.rollback(sim.now)
        state.halted = False
        merged = sorted(set(replay) | set(work))
        work.clear()
        work.extend(merged)

    while True:
        while work:
            if crash_pending():
                yield from do_crash()
                continue
            k = work[0]
            avail = plan.slice_close(k)
            if sim.now < avail:
                if (crash_at is not None and not crash_log["crashed"]
                        and crash_at < avail):
                    yield sim.timeout(max(0.0, crash_at - sim.now))
                    continue
                yield sim.timeout(avail - sim.now)
            if state.watermark >= next_ckpt - 1e-12:
                # Aligned barrier: the pipeline stalls while operators
                # align and snapshot; the checkpoint pins the replay
                # point for failure recovery.
                yield sim.timeout(barrier_sync)
                state.checkpoints += 1
                state.ckpt_watermark = state.watermark
                barriers.append((sim.now, state.watermark))
                next_ckpt += checkpoint_interval
                continue
            yield tokens.acquire()
            work.popleft()
            state.first_launch = min(state.first_launch, sim.now)
            evt = sim.event()
            done_evts[k] = evt
            sim.process(_continuous_slice_proc(
                cluster, state, model, k, tokens, evt))
        outstanding = [evt for k, evt in done_evts.items()
                       if not state.done[k]]
        if outstanding:
            yield sim.all_of(outstanding)
        if crash_pending():
            yield from do_crash()
            continue
        break
    crash_log["barriers"] = barriers


# ----------------------------------------------------------------------
# micro-batch engine (Spark-style D-Streams)
# ----------------------------------------------------------------------
def _batch_phases(model: StreamingWorkloadModel, nodes: int, cores: int,
                  records: int, overhead: float) -> List[PhaseSpec]:
    cpu_total = records * model.core_seconds_per_record
    shuffle_total = (records * model.record_bytes * model.shuffle_fanout
                     * (nodes - 1) / nodes)
    return [
        PhaseSpec("Receive->FlatMap->MapToPair", "RM",
                  uniform_resources(nodes,
                                    cpu_core_seconds=cpu_total * 0.6,
                                    cpu_slots=cores,
                                    net_out_bytes=shuffle_total),
                  startup_delay=overhead),
        PhaseSpec("Shuffle->ReduceByKey->UpdateState", "SA",
                  uniform_resources(nodes,
                                    cpu_core_seconds=cpu_total * 0.4,
                                    cpu_slots=cores,
                                    net_in_bytes=shuffle_total)),
    ]


def _dstream_driver(cluster: Cluster, state: _StreamState,
                    model: StreamingWorkloadModel, batch_interval: float,
                    checkpoint_interval: float,
                    crash_at: Optional[float], restart_delay: float,
                    crash_log: Dict[str, Any]):
    sim = cluster.sim
    plan = state.plan
    cores = cluster.spec.cores
    n = cluster.num_nodes
    executor = PhaseExecutor(cluster, hdfs=None, chunks_per_phase=4)
    tracer = cluster.tracer
    num_batches = max(1, int(math.ceil(
        plan.duration / batch_interval - 1e-9)))
    # Slice k belongs to the batch open when it closes.
    batches: List[List[int]] = [[] for _ in range(num_batches)]
    for k in range(plan.num_slices):
        b = min(num_batches - 1,
                int((plan.slice_close(k) - 1e-9) // batch_interval))
        batches[b].append(k)
    next_ckpt = checkpoint_interval

    def crash_pending() -> bool:
        return (crash_at is not None and not crash_log["crashed"]
                and sim.now >= crash_at - 1e-12)

    def do_crash():
        crash_log["crashed"] = True
        crash_log["crash_time"] = sim.now
        yield sim.timeout(restart_delay)
        # Lineage recomputation: everything since the last RDD/WAL
        # checkpoint is recomputed as one parallel job (no per-batch
        # scheduling overhead — it is a single recovery job).
        replay = state.rollback(sim.now)
        records = sum(plan.counts[k] for k in replay)
        restored = max([plan.slice_close(k) for k in replay],
                       default=state.ckpt_watermark)
        if replay:
            span = None
            if tracer is not None:
                span = tracer.begin("job", "lineage-recovery", sim.now)
            yield from executor.run_staged(
                "lineage-recovery",
                _batch_phases(model, n, cores, records, overhead=0.0))
            if tracer is not None:
                tracer.end(span, sim.now)
            now = sim.now
            for k in replay:
                state.completion[k] = now
                state.done[k] = True
            state.advance_watermark(now)
            assert state.watermark >= restored - 1e-9

    for b, members in enumerate(batches):
        close = (b + 1) * batch_interval
        while sim.now < close:
            if crash_pending():
                yield from do_crash()
                continue
            if (crash_at is not None and not crash_log["crashed"]
                    and crash_at < close):
                yield sim.timeout(max(0.0, crash_at - sim.now))
            else:
                yield sim.timeout(close - sim.now)
        if crash_pending():
            yield from do_crash()
        records = sum(plan.counts[k] for k in members)
        state.first_launch = min(state.first_launch, sim.now)
        start = sim.now
        span = None
        if tracer is not None:
            span = tracer.begin("job", f"batch-{b:04d}", start)
        yield from executor.run_staged(
            f"batch-{b:04d}",
            _batch_phases(model, n, cores, records,
                          overhead=model.batch_fixed_overhead))
        if tracer is not None:
            tracer.end(span, sim.now)
        now = sim.now
        state.last_completion = max(state.last_completion, now)
        for k in members:
            state.completion[k] = now
            state.done[k] = True
        for ni in range(n):
            state.touch_node(ni, start, now)
        state.advance_watermark(now)
        if close >= next_ckpt - 1e-9:
            # The RDD/state checkpoint piggybacks on the batch job, so
            # unlike the continuous engine's barrier it adds no stall;
            # its cost shows up at recovery time instead.
            state.checkpoints += 1
            state.ckpt_watermark = close
            while close >= next_ckpt - 1e-9:
                next_ckpt += checkpoint_interval
    if crash_pending():
        yield from do_crash()


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def _recovery_seconds(watermarks: List[Tuple[float, float]],
                      crash_time: float, tolerance: float) -> float:
    """First time after the crash at which the ingest lag (sim time
    minus watermark) returns to its pre-crash level, as seconds since
    the crash; NaN when the run never catches back up."""
    pre = [(t, wm) for t, wm in watermarks if t <= crash_time]
    if not pre:
        return math.nan
    t0, wm0 = pre[-1]
    steady_lag = t0 - wm0
    for t, wm in watermarks:
        if t <= crash_time:
            continue
        if t - wm <= steady_lag + tolerance:
            return t - crash_time
    return math.nan


def run_streaming(engine: str, arrivals, *, duration: float = 30.0,
                  nodes: int = 8,
                  model: Optional[StreamingWorkloadModel] = None,
                  spec: HardwareSpec = GRID5000_PARAVANCE, seed: int = 0,
                  batch_interval: float = 1.0,
                  checkpoint_interval: float = 10.0,
                  barrier_sync: float = DEFAULT_BARRIER_SYNC,
                  network_buffers: int = 2048, parallelism: int = 16,
                  crash_at: Optional[float] = None,
                  restart_delay: float = 2.0,
                  strict: Optional[bool] = None, tracer=None,
                  trace_detail: str = "coarse") -> StreamingRunResult:
    """Execute one streaming run on the fluid kernel.

    ``arrivals`` is either a compiled :class:`~repro.streaming.
    arrivals.ArrivalPlan` (its duration wins) or an arrival process
    with a ``compile(seed, duration)`` method.  ``engine`` selects the
    continuous-operator pipeline (``"flink"``) or the micro-batch
    D-Stream driver (``"spark"``).  Deterministic for fixed inputs.
    """
    if engine not in STREAMING_ENGINES:
        raise ValueError(f"unknown streaming engine {engine!r}; "
                         f"one of {STREAMING_ENGINES}")
    if batch_interval <= 0:
        raise ValueError("batch_interval must be positive")
    if checkpoint_interval <= 0:
        raise ValueError("checkpoint_interval must be positive")
    if crash_at is not None and crash_at <= 0:
        raise ValueError("crash_at must be positive")
    model = model if model is not None else StreamingWorkloadModel()
    if isinstance(arrivals, ArrivalPlan):
        plan = arrivals
    else:
        plan = arrivals.compile(seed, duration)

    cluster = Cluster(nodes, spec=spec, seed=seed,
                      trace_detail=trace_detail)
    cluster.tracer = tracer
    checker = None
    if strict_enabled(strict):
        checker = InvariantChecker().attach(cluster)
    state = _StreamState(plan)
    crash_log: Dict[str, Any] = {"crashed": False, "crash_time": None}

    run_span = job_span = None
    if tracer is not None:
        run_span = tracer.begin(
            "run", f"streaming-{engine}-{plan.kind}", 0.0)
    if engine == "flink":
        depth = queue_depth_from_buffers(network_buffers, parallelism)
        if tracer is not None:
            job_span = tracer.begin("job", "continuous-pipeline", 0.0)
        driver = _continuous_driver(
            cluster, state, model, checkpoint_interval, barrier_sync,
            depth, crash_at, restart_delay, crash_log)
    else:
        driver = _dstream_driver(
            cluster, state, model, batch_interval, checkpoint_interval,
            crash_at, restart_delay, crash_log)
    cluster.run_process(driver)
    makespan = cluster.now

    if tracer is not None:
        if engine == "flink" and state.first_launch < math.inf:
            op = tracer.record(
                "operator", "Source->KeyBy->WindowAggregate",
                state.first_launch, state.last_completion, key="SKW",
                parent=job_span)
            for ni in sorted(state.node_windows):
                window = state.node_windows[ni]
                tracer.record("task", f"SKW@node-{ni:03d}", window[0],
                              window[1], parent=op, key="SKW", node=ni,
                              busy=state.node_busy.get(ni, 0.0))
            for i, (t, wm) in enumerate(crash_log.get("barriers", [])):
                tracer.record("operator", f"barrier-{i:03d}",
                              t - barrier_sync, t, key="CKPT",
                              parent=job_span, watermark=wm)
        if job_span is not None:
            tracer.end(job_span, makespan)
        tracer.end(run_span, makespan)

    crashed = bool(crash_log["crashed"])
    tolerance = (2.0 * plan.slice_width if engine == "flink"
                 else max(plan.slice_width, 0.25 * batch_interval))
    recovery = math.nan
    if crashed:
        recovery = _recovery_seconds(state.watermarks,
                                     crash_log["crash_time"], tolerance)
    drain = max(0.0, makespan - plan.duration)
    if crashed:
        drain = max(0.0, drain - restart_delay)
        stable = not math.isnan(recovery)
    else:
        stable = drain <= stable_drain_bound(
            engine, model, batch_interval, plan.slice_width)

    samples: List[Tuple[float, float, float]] = []
    processed = 0
    for k in range(plan.num_slices):
        count = plan.counts[k]
        completion = state.completion[k]
        if completion is None:
            continue
        processed += count
        if count == 0:
            continue
        mid = plan.slice_midpoint(k)
        if engine == "flink":
            floor = plan.slice_close(k) - mid
        else:
            b = min(int(math.ceil(plan.duration / batch_interval
                                  - 1e-9)) - 1,
                    int((plan.slice_close(k) - 1e-9) // batch_interval))
            floor = (b + 1) * batch_interval - mid
        samples.append((completion - mid, floor, float(count)))

    if checker is not None:
        checker.audit_cluster(cluster)
        checker.require_clean(f"streaming {engine}/{plan.kind}")

    return StreamingRunResult(
        engine=engine, arrival_kind=plan.kind,
        offered_rate=plan.offered_rate, duration=plan.duration,
        nodes=nodes, seed=seed, batch_interval=batch_interval,
        checkpoint_interval=checkpoint_interval,
        plan_digest=plan.digest(), total_records=plan.total_records,
        processed_records=processed, samples=samples,
        watermarks=list(state.watermarks),
        checkpoints=state.checkpoints, makespan=makespan,
        drain_seconds=drain, stable=stable, crash_at=crash_at,
        crashed=crashed, replayed_records=state.replayed_records,
        recovery_seconds=recovery,
        sim_events=cluster.sim.steps_executed)
