"""Streaming campaigns: the fig20/fig21/fig22 artefacts.

Three figures answer the §VIII question quantitatively on the executed
engines (:mod:`repro.streaming.engines`):

* **fig20** — latency percentiles versus offered load, both engines,
  steady Poisson *and* bursty MMPP arrivals.  The continuous-operator
  engine holds sub-second percentiles until its capacity; the
  micro-batch engine pays the residual batch wait everywhere and
  destabilises earlier under bursts.
* **fig21** — recovery time after a node crash versus checkpoint
  interval.  Longer intervals mean more replay (Flink: from the last
  barrier; Spark: lineage since the last RDD checkpoint), so recovery
  time grows with the interval on both engines.
* **fig22** — overload survival: goodput, loss fraction, p99 latency
  and availability versus offered load (1.0x-2.0x the stability
  boundary) x fault rate x degradation policy, per engine.  The
  ``"none"`` policy is the PR 6 baseline (fixed-delay restarts, no
  shedding): above 1x its latency diverges with the run length.  The
  ``"degrade"`` policy (:func:`~repro.streaming.policies.
  resolve_policy`: backoff restarts plus probabilistic shedding on the
  continuous engine / PID-adaptive batching on the micro-batch engine)
  keeps p99 within the policy's pinned bound at the measured cost of a
  loss fraction.  Crash schedules come from PR 5's
  :class:`~repro.resilience.stochastic.StochasticFaultModel` with
  common random numbers: the same seed x fault rate gives every
  engine x policy the identical crash sequence.

The campaign layer mirrors :mod:`repro.resilience.sweep`: every cell
is deterministic (arrival randomness is compiled into an
:class:`~repro.streaming.arrivals.ArrivalPlan` before any simulation),
cells fan out via :func:`~repro.harness.parallel.robust_map` with
explicit gap reporting, and a
:class:`~repro.harness.checkpoint.CheckpointStore` journals finished
cells so a SIGKILLed campaign resumes bit-identically.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..harness.checkpoint import CheckpointStore
from ..harness.parallel import TaskFailure, robust_map
from ..validation.digest import digest_payload
from ..validation.invariants import strict_enabled
from .arrivals import ARRIVAL_KINDS, make_arrivals
from .engines import STREAMING_ENGINES, run_streaming
from .model import StreamingWorkloadModel, max_stable_throughput

__all__ = ["StreamingCell", "StreamingFigure", "streaming_sweep",
           "streaming_campaign_fingerprint", "DEFAULT_LOAD_FRACTIONS",
           "DEFAULT_CHECKPOINT_INTERVALS", "FIG21_LOAD_FRACTION",
           "FIG21_CRASH_AT", "DEFAULT_DURATION", "ENV_DELAY",
           "DegradeCell", "DegradationFigure", "degradation_sweep",
           "degradation_campaign_fingerprint", "DEFAULT_LOAD_MULTIPLES",
           "DEFAULT_FAULT_RATES"]

#: Test hook: wall-clock seconds to sleep per cell (stretches campaign
#: wall time for the kill-and-resume tests without touching any
#: simulated value).
ENV_DELAY = "REPRO_STREAMING_DELAY"

#: fig20 x-axis: offered load as a fraction of each engine's own
#: analytic ``max_stable_throughput`` (so both engines are compared at
#: the same *relative* pressure).
DEFAULT_LOAD_FRACTIONS = (0.3, 0.6, 0.8, 0.95)

#: fig21 x-axis.  Chosen so no two intervals share their last
#: checkpoint boundary before the crash at ``FIG21_CRASH_AT`` — the
#: replay volume, and hence recovery time, differs at every point.
DEFAULT_CHECKPOINT_INTERVALS = (1.5, 3.0, 6.0, 12.0)

#: fig21 runs at half capacity: enough headroom that even the longest
#: checkpoint interval catches back up within the run.
FIG21_LOAD_FRACTION = 0.5
FIG21_CRASH_AT = 23.0

DEFAULT_DURATION = 40.0

#: fig22 x-axis: offered load as a *multiple* of each engine's
#: stability boundary — everything at or above 1.0 overloads the
#: baseline.
DEFAULT_LOAD_MULTIPLES = (1.0, 1.25, 1.5, 2.0)

#: fig22 fault axis: expected crashes per node over the run's relative
#: window (PR 5's :class:`StochasticFaultModel` ``crash_rate``); 0.0 is
#: the overload-only story, the positive rate adds repeated crashes.
DEFAULT_FAULT_RATES = (0.0, 0.5)


# ----------------------------------------------------------------------
# cells
# ----------------------------------------------------------------------
@dataclass
class StreamingCell:
    """One data point: engine x arrival process x load (fig20) or
    engine x checkpoint interval (fig21)."""

    engine: str
    arrival_kind: str
    load_fraction: float
    checkpoint_interval: float
    nodes: int
    seed: int
    duration: float
    batch_interval: float
    crash_at: Optional[float] = None
    offered_rate: float = math.nan     # realised mean of the plan
    plan_digest: str = ""
    total_records: int = 0
    processed_records: int = 0
    p50: float = math.nan
    p95: float = math.nan
    p99: float = math.nan
    mean_latency: float = math.nan
    stable: bool = False
    drain_seconds: float = math.nan
    checkpoints: int = 0
    makespan: float = math.nan
    crashed: bool = False
    replayed_records: int = 0
    recovery_seconds: float = math.nan
    sim_events: int = 0
    #: Harness-level gap: the cell's worker crashed, hung or raised —
    #: nothing was simulated.
    gap: bool = False
    gap_detail: Optional[str] = None

    def payload(self) -> Dict[str, Any]:
        return {
            "engine": self.engine, "arrival_kind": self.arrival_kind,
            "load_fraction": self.load_fraction,
            "checkpoint_interval": self.checkpoint_interval,
            "nodes": self.nodes, "seed": self.seed,
            "duration": self.duration,
            "batch_interval": self.batch_interval,
            "crash_at": self.crash_at,
            "offered_rate": self.offered_rate,
            "plan_digest": self.plan_digest,
            "total_records": self.total_records,
            "processed_records": self.processed_records,
            "p50": self.p50, "p95": self.p95, "p99": self.p99,
            "mean_latency": self.mean_latency, "stable": self.stable,
            "drain_seconds": self.drain_seconds,
            "checkpoints": self.checkpoints, "makespan": self.makespan,
            "crashed": self.crashed,
            "replayed_records": self.replayed_records,
            "recovery_seconds": self.recovery_seconds,
            "sim_events": self.sim_events,
            "gap": self.gap, "gap_detail": self.gap_detail,
        }

    @staticmethod
    def from_payload(payload: Dict[str, Any]) -> "StreamingCell":
        return StreamingCell(**payload)

    def describe(self) -> str:
        head = (f"{self.engine:5s} {self.arrival_kind:7s} "
                f"load {self.load_fraction:.2f} ck {self.checkpoint_interval:g}s")
        if self.gap:
            return f"{head}: GAP ({self.gap_detail})"
        if not self.stable:
            return f"{head}: UNSTABLE (drain {self.drain_seconds:.1f}s)"
        parts = [f"p50 {1000 * self.p50:.0f} ms",
                 f"p99 {1000 * self.p99:.0f} ms"]
        if self.crashed:
            rec = ("never" if math.isnan(self.recovery_seconds)
                   else f"{self.recovery_seconds:.1f}s")
            parts.append(f"recovered {rec} "
                         f"(replayed {self.replayed_records:,d})")
        return f"{head}: " + ", ".join(parts)


def _cell_task(engine: str, kind: str, load_fraction: float,
               checkpoint_interval: float, nodes: int, seed: int,
               duration: float, batch_interval: float,
               crash_at: Optional[float], strict: bool) -> Dict[str, Any]:
    """Run one streaming cell; module-level and JSON-in/out so it fans
    across worker processes and journals into a checkpoint store."""
    delay = float(os.environ.get(ENV_DELAY, "0") or 0)
    if delay > 0:
        time.sleep(delay)
    model = StreamingWorkloadModel()
    capacity = max_stable_throughput(model, nodes, engine,
                                     batch_interval=batch_interval)
    arrivals = make_arrivals(kind, load_fraction * capacity)
    result = run_streaming(
        engine, arrivals, duration=duration, nodes=nodes, model=model,
        seed=seed, batch_interval=batch_interval,
        checkpoint_interval=checkpoint_interval, crash_at=crash_at,
        strict=strict)
    cell = StreamingCell(
        engine=engine, arrival_kind=kind, load_fraction=load_fraction,
        checkpoint_interval=checkpoint_interval, nodes=nodes, seed=seed,
        duration=duration, batch_interval=batch_interval,
        crash_at=crash_at, offered_rate=result.offered_rate,
        plan_digest=result.plan_digest,
        total_records=result.total_records,
        processed_records=result.processed_records,
        p50=result.percentile(50), p95=result.percentile(95),
        p99=result.percentile(99), mean_latency=result.mean_latency,
        stable=result.stable, drain_seconds=result.drain_seconds,
        checkpoints=result.checkpoints, makespan=result.makespan,
        crashed=result.crashed,
        replayed_records=result.replayed_records,
        recovery_seconds=result.recovery_seconds,
        sim_events=result.sim_events)
    return cell.payload()


# ----------------------------------------------------------------------
# figure
# ----------------------------------------------------------------------
@dataclass
class StreamingFigure:
    """A fig20 or fig21 artefact: cells plus explicit campaign gaps."""

    figure_id: str
    title: str
    nodes: int
    duration: float
    cells: List[StreamingCell]
    gaps: List[StreamingCell] = field(default_factory=list)

    def describe(self) -> str:
        lines = [self.title]
        lines.extend(f"  {cell.describe()}" for cell in self.cells)
        if self.gaps:
            lines.append(f"  GAPS: {len(self.gaps)} cell(s) not simulated "
                         f"(harness failures)")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# the campaign
# ----------------------------------------------------------------------
def streaming_sweep(
        figure_id: str = "fig20",
        engines: Sequence[str] = STREAMING_ENGINES,
        arrival_kinds: Sequence[str] = ARRIVAL_KINDS,
        load_fractions: Sequence[float] = DEFAULT_LOAD_FRACTIONS,
        checkpoint_intervals: Optional[Sequence[float]] = None,
        nodes: int = 8, seed: int = 0, duration: float = DEFAULT_DURATION,
        batch_interval: float = 1.0,
        crash_at: Optional[float] = None,
        strict: Optional[bool] = None, jobs: Optional[int] = None,
        timeout: Optional[float] = None, retries: int = 1,
        backoff: float = 0.5,
        checkpoint: Optional[CheckpointStore] = None) -> StreamingFigure:
    """Run a streaming campaign and assemble the figure.

    Two shapes, selected by ``figure_id``-style arguments:

    * latency sweep (fig20): one cell per engine x arrival kind x load
      fraction, at a fixed checkpoint interval;
    * recovery sweep (fig21): pass ``checkpoint_intervals`` and
      ``crash_at`` — one cell per engine x interval, at a fixed load
      fraction (the first entry of ``load_fractions``) with Poisson
      arrivals.

    Cells are independent and deterministic, fanned out via
    :func:`robust_map`; a cell whose worker raises, crashes or exceeds
    ``timeout`` is retried and then reported as an explicit gap.
    ``checkpoint`` journals finished cells for kill-and-resume.
    """
    labels: List[Tuple[str, str, float, float]] = []
    if checkpoint_intervals is not None:
        fraction = load_fractions[0]
        for engine in engines:
            for interval in checkpoint_intervals:
                labels.append((engine, "poisson", fraction, interval))
        title = (f"Recovery time vs checkpoint interval "
                 f"({nodes} nodes, load {fraction:.0%} of capacity, "
                 f"crash at {crash_at:g}s)")
    else:
        default_ckpt = 10.0
        for engine in engines:
            for kind in arrival_kinds:
                for fraction in load_fractions:
                    labels.append((engine, kind, fraction, default_ckpt))
        title = (f"Latency percentiles vs offered load "
                 f"({nodes} nodes, {duration:g}s campaigns)")

    strict_flag = strict_enabled(strict)
    tasks = [(engine, kind, fraction, interval, nodes, seed, duration,
              batch_interval, crash_at, strict_flag)
             for engine, kind, fraction, interval in labels]
    keys = [digest_payload({
        "figure_id": figure_id, "engine": e, "arrival_kind": k,
        "load_fraction": f, "checkpoint_interval": i, "nodes": nodes,
        "seed": seed, "duration": duration,
        "batch_interval": batch_interval, "crash_at": crash_at,
    }) for e, k, f, i in labels]

    pending = list(range(len(tasks)))
    results: List[Optional[Dict[str, Any]]] = [None] * len(tasks)
    if checkpoint is not None:
        pending = []
        for i, key in enumerate(keys):
            if key in checkpoint:
                results[i] = checkpoint.load(key)
            else:
                pending.append(i)

    failures: List[TaskFailure] = []
    if pending:
        def _journal(pending_pos: int, payload: Dict[str, Any]) -> None:
            if checkpoint is not None:
                checkpoint.save(keys[pending[pending_pos]], payload)

        fresh, failures = robust_map(
            _cell_task, [tasks[i] for i in pending], jobs=jobs,
            timeout=timeout, retries=retries, backoff=backoff,
            on_result=_journal)
        for pos, result in zip(pending, fresh):
            results[pos] = result

    cells: List[StreamingCell] = []
    gaps: List[StreamingCell] = []
    failed = {pending[f.index]: f for f in failures}
    for i, (engine, kind, fraction, interval) in enumerate(labels):
        if results[i] is not None:
            cells.append(StreamingCell.from_payload(results[i]))
            continue
        failure = failed.get(i)
        gap = StreamingCell(
            engine=engine, arrival_kind=kind, load_fraction=fraction,
            checkpoint_interval=interval, nodes=nodes, seed=seed,
            duration=duration, batch_interval=batch_interval,
            crash_at=crash_at, gap=True,
            gap_detail=(failure.describe() if failure is not None
                        else "missing result"))
        cells.append(gap)
        gaps.append(gap)
    return StreamingFigure(figure_id=figure_id, title=title, nodes=nodes,
                           duration=duration, cells=cells, gaps=gaps)


def streaming_campaign_fingerprint(
        figure_id: str, engines: Sequence[str],
        arrival_kinds: Sequence[str], load_fractions: Sequence[float],
        checkpoint_intervals: Optional[Sequence[float]], nodes: int,
        seed: int, duration: float, batch_interval: float,
        crash_at: Optional[float]) -> Dict[str, Any]:
    """The identity payload a checkpoint store pins for a campaign."""
    return {
        "figure_id": figure_id, "engines": list(engines),
        "arrival_kinds": list(arrival_kinds),
        "load_fractions": list(load_fractions),
        "checkpoint_intervals": (list(checkpoint_intervals)
                                 if checkpoint_intervals is not None
                                 else None),
        "nodes": nodes, "seed": seed, "duration": duration,
        "batch_interval": batch_interval, "crash_at": crash_at,
    }


# ----------------------------------------------------------------------
# fig22: the degradation campaign
# ----------------------------------------------------------------------
@dataclass
class DegradeCell:
    """One fig22 data point: engine x load multiple x fault rate x
    degradation policy."""

    engine: str
    load_multiple: float
    fault_rate: float
    policy: str                        # "none" | "degrade"
    nodes: int
    seed: int
    duration: float
    batch_interval: float
    offered_rate: float = math.nan
    plan_digest: str = ""
    crash_schedule: List[float] = field(default_factory=list)
    total_records: int = 0
    processed_records: int = 0
    dropped_records: int = 0
    lost_records: int = 0
    goodput: float = math.nan
    loss_fraction: float = math.nan
    p50: float = math.nan
    p99: float = math.nan
    p99_bound: float = math.nan
    availability: float = math.nan
    crashes: int = 0
    restarts: int = 0
    job_failed: bool = False
    stable: bool = False
    makespan: float = math.nan
    downtime_seconds: float = math.nan
    shed_events: int = 0
    recovery_seconds: float = math.nan
    sim_events: int = 0
    gap: bool = False
    gap_detail: Optional[str] = None

    def payload(self) -> Dict[str, Any]:
        return {
            "engine": self.engine, "load_multiple": self.load_multiple,
            "fault_rate": self.fault_rate, "policy": self.policy,
            "nodes": self.nodes, "seed": self.seed,
            "duration": self.duration,
            "batch_interval": self.batch_interval,
            "offered_rate": self.offered_rate,
            "plan_digest": self.plan_digest,
            "crash_schedule": list(self.crash_schedule),
            "total_records": self.total_records,
            "processed_records": self.processed_records,
            "dropped_records": self.dropped_records,
            "lost_records": self.lost_records,
            "goodput": self.goodput,
            "loss_fraction": self.loss_fraction,
            "p50": self.p50, "p99": self.p99,
            "p99_bound": self.p99_bound,
            "availability": self.availability,
            "crashes": self.crashes, "restarts": self.restarts,
            "job_failed": self.job_failed, "stable": self.stable,
            "makespan": self.makespan,
            "downtime_seconds": self.downtime_seconds,
            "shed_events": self.shed_events,
            "recovery_seconds": self.recovery_seconds,
            "sim_events": self.sim_events,
            "gap": self.gap, "gap_detail": self.gap_detail,
        }

    @staticmethod
    def from_payload(payload: Dict[str, Any]) -> "DegradeCell":
        return DegradeCell(**payload)

    def describe(self) -> str:
        head = (f"{self.engine:5s} {self.load_multiple:.2f}x "
                f"faults {self.fault_rate:g} {self.policy:7s}")
        if self.gap:
            return f"{head}: GAP ({self.gap_detail})"
        if self.job_failed:
            return (f"{head}: JOB FAILED after {self.restarts} "
                    f"restart(s), availability {self.availability:.0%}")
        parts = [f"goodput {self.goodput:,.0f} rec/s",
                 f"loss {self.loss_fraction:.1%}",
                 f"p99 {self.p99:.2f}s",
                 f"avail {self.availability:.0%}"]
        if not self.stable:
            parts.append(f"UNSTABLE (drained to {self.makespan:.0f}s)")
        if self.crashes:
            parts.append(f"{self.crashes} crash(es)")
        return f"{head}: " + ", ".join(parts)


def _degrade_task(engine: str, load_multiple: float, fault_rate: float,
                  policy: str, nodes: int, seed: int, duration: float,
                  batch_interval: float,
                  strict: bool) -> Dict[str, Any]:
    """Run one fig22 cell (module-level, JSON-in/out for robust_map)."""
    from .policies import compile_crash_schedule, resolve_policy
    delay = float(os.environ.get(ENV_DELAY, "0") or 0)
    if delay > 0:
        time.sleep(delay)
    model = StreamingWorkloadModel()
    capacity = max_stable_throughput(model, nodes, engine,
                                     batch_interval=batch_interval)
    arrivals = make_arrivals("poisson", load_multiple * capacity)
    # Common random numbers: the schedule depends only on
    # (seed, nodes, duration, fault_rate), so every engine x policy at
    # a given fault rate faces the identical crash sequence.
    schedule = compile_crash_schedule(seed, nodes, duration, fault_rate)
    strategy, shedding, batch_policy = resolve_policy(engine, policy)
    result = run_streaming(
        engine, arrivals, duration=duration, nodes=nodes, model=model,
        seed=seed, batch_interval=batch_interval,
        checkpoint_interval=10.0, crash_times=schedule,
        restart_strategy=strategy, shedding=shedding,
        batch_policy=batch_policy, strict=strict)
    cell = DegradeCell(
        engine=engine, load_multiple=load_multiple,
        fault_rate=fault_rate, policy=policy, nodes=nodes, seed=seed,
        duration=duration, batch_interval=batch_interval,
        offered_rate=result.offered_rate,
        plan_digest=result.plan_digest,
        crash_schedule=list(result.crash_schedule),
        total_records=result.total_records,
        processed_records=result.processed_records,
        dropped_records=result.dropped_records,
        lost_records=result.lost_records, goodput=result.goodput,
        loss_fraction=result.loss_fraction,
        p50=result.percentile(50), p99=result.percentile(99),
        p99_bound=result.p99_bound, availability=result.availability,
        crashes=len(result.crashes), restarts=result.restarts,
        job_failed=result.job_failed, stable=result.stable,
        makespan=result.makespan,
        downtime_seconds=result.downtime_seconds,
        shed_events=result.shed_events,
        recovery_seconds=result.recovery_seconds,
        sim_events=result.sim_events)
    return cell.payload()


@dataclass
class DegradationFigure:
    """The fig22 artefact: cells plus explicit campaign gaps."""

    figure_id: str
    title: str
    nodes: int
    duration: float
    cells: List[DegradeCell]
    gaps: List[DegradeCell] = field(default_factory=list)

    def describe(self) -> str:
        lines = [self.title]
        lines.extend(f"  {cell.describe()}" for cell in self.cells)
        if self.gaps:
            lines.append(f"  GAPS: {len(self.gaps)} cell(s) not "
                         f"simulated (harness failures)")
        return "\n".join(lines)


def degradation_sweep(
        figure_id: str = "fig22",
        engines: Sequence[str] = STREAMING_ENGINES,
        load_multiples: Sequence[float] = DEFAULT_LOAD_MULTIPLES,
        fault_rates: Sequence[float] = DEFAULT_FAULT_RATES,
        policies: Sequence[str] = ("none", "degrade"),
        nodes: int = 8, seed: int = 0,
        duration: float = DEFAULT_DURATION,
        batch_interval: float = 1.0,
        strict: Optional[bool] = None, jobs: Optional[int] = None,
        timeout: Optional[float] = None, retries: int = 1,
        backoff: float = 0.5,
        checkpoint: Optional[CheckpointStore] = None
) -> DegradationFigure:
    """Run the fig22 degradation campaign and assemble the figure.

    One cell per engine x load multiple x fault rate x policy, fanned
    out via :func:`robust_map` exactly like :func:`streaming_sweep`
    (gaps, retries, checkpoint journaling, bit-identical at any
    ``jobs``).
    """
    labels: List[Tuple[str, float, float, str]] = []
    for engine in engines:
        for multiple in load_multiples:
            for rate in fault_rates:
                for policy in policies:
                    labels.append((engine, multiple, rate, policy))
    title = (f"Overload survival: goodput/loss/p99/availability vs "
             f"load multiple x fault rate x policy "
             f"({nodes} nodes, {duration:g}s campaigns)")

    strict_flag = strict_enabled(strict)
    tasks = [(engine, multiple, rate, policy, nodes, seed, duration,
              batch_interval, strict_flag)
             for engine, multiple, rate, policy in labels]
    keys = [digest_payload({
        "figure_id": figure_id, "engine": e, "load_multiple": m,
        "fault_rate": r, "policy": p, "nodes": nodes, "seed": seed,
        "duration": duration, "batch_interval": batch_interval,
    }) for e, m, r, p in labels]

    pending = list(range(len(tasks)))
    results: List[Optional[Dict[str, Any]]] = [None] * len(tasks)
    if checkpoint is not None:
        pending = []
        for i, key in enumerate(keys):
            if key in checkpoint:
                results[i] = checkpoint.load(key)
            else:
                pending.append(i)

    failures: List[TaskFailure] = []
    if pending:
        def _journal(pending_pos: int, payload: Dict[str, Any]) -> None:
            if checkpoint is not None:
                checkpoint.save(keys[pending[pending_pos]], payload)

        fresh, failures = robust_map(
            _degrade_task, [tasks[i] for i in pending], jobs=jobs,
            timeout=timeout, retries=retries, backoff=backoff,
            on_result=_journal)
        for pos, result in zip(pending, fresh):
            results[pos] = result

    cells: List[DegradeCell] = []
    gaps: List[DegradeCell] = []
    failed = {pending[f.index]: f for f in failures}
    for i, (engine, multiple, rate, policy) in enumerate(labels):
        if results[i] is not None:
            cells.append(DegradeCell.from_payload(results[i]))
            continue
        failure = failed.get(i)
        gap = DegradeCell(
            engine=engine, load_multiple=multiple, fault_rate=rate,
            policy=policy, nodes=nodes, seed=seed, duration=duration,
            batch_interval=batch_interval, gap=True,
            gap_detail=(failure.describe() if failure is not None
                        else "missing result"))
        cells.append(gap)
        gaps.append(gap)
    return DegradationFigure(figure_id=figure_id, title=title,
                             nodes=nodes, duration=duration,
                             cells=cells, gaps=gaps)


def degradation_campaign_fingerprint(
        figure_id: str, engines: Sequence[str],
        load_multiples: Sequence[float], fault_rates: Sequence[float],
        policies: Sequence[str], nodes: int, seed: int, duration: float,
        batch_interval: float) -> Dict[str, Any]:
    """The identity payload a checkpoint store pins for fig22."""
    return {
        "figure_id": figure_id, "engines": list(engines),
        "load_multiples": list(load_multiples),
        "fault_rates": list(fault_rates),
        "policies": list(policies), "nodes": nodes, "seed": seed,
        "duration": duration, "batch_interval": batch_interval,
    }
