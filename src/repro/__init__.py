"""repro — a full reproduction of *"Spark versus Flink: Understanding
Performance in Big Data Analytics Frameworks"* (Marcu, Costan, Antoniu,
Pérez-Hernández; IEEE CLUSTER 2016).

The package contains three cooperating systems:

1. **A deterministic cluster simulator** (:mod:`repro.cluster`,
   :mod:`repro.hdfs`) modelling the paper's Grid'5000 testbed, with
   mechanistic models of Spark 1.5 (:mod:`repro.engines.spark`) and
   Flink 0.10 (:mod:`repro.engines.flink`) running the paper's six
   workloads (:mod:`repro.workloads`) at published scales (up to 100
   nodes / 3.5 TB).

2. **The paper's methodology as a library** (:mod:`repro.core`,
   :mod:`repro.monitoring`): correlate operator execution plans with
   resource utilisation, analyse weak/strong scalability, derive the
   take-away insights, render the figures.

3. **Really-executable mini-engines** (:mod:`repro.localexec`): a
   staged RDD runtime and a pipelined DataSet runtime that compute the
   six workloads on real data, proving the two execution models are
   semantically equivalent.

Quickstart::

    from repro import run_once, wordcount_grep_preset, WordCount
    GiB = 2**30
    result = run_once("flink", WordCount(8 * 24 * GiB),
                      wordcount_grep_preset(8))
    print(result.describe())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure and table.
"""

from .cluster import Cluster, HardwareSpec
from .config import (ExperimentConfig, FlinkConfig, SparkConfig,
                     kmeans_preset, large_graph_preset, medium_graph_preset,
                     small_graph_preset, terasort_preset,
                     wordcount_grep_preset)
from .core import (CorrelatedRun, ScalingSeries, compare_engines, correlate,
                   render_bar_table, render_run)
from .engines.common.result import EngineRunResult
from .engines.flink import FlinkEngine
from .engines.spark import SparkEngine
from .harness import figures, run_correlated, run_once, run_trials
from .hdfs import HDFS
from .localexec import LocalEnvironment, LocalSparkContext
from .monitoring import ClusterMonitor, Metric
from .workloads import (ALL_WORKLOADS, ConnectedComponents, Grep, KMeans,
                        PageRank, TeraSort, WordCount, Workload)

__version__ = "1.0.0"

__all__ = [
    "ALL_WORKLOADS", "Cluster", "ClusterMonitor", "ConnectedComponents",
    "CorrelatedRun", "EngineRunResult", "ExperimentConfig", "FlinkConfig",
    "FlinkEngine", "Grep", "HDFS", "HardwareSpec", "KMeans",
    "LocalEnvironment", "LocalSparkContext", "Metric", "PageRank",
    "ScalingSeries", "SparkConfig", "SparkEngine", "TeraSort", "WordCount",
    "Workload", "__version__", "compare_engines", "correlate", "figures",
    "kmeans_preset", "large_graph_preset", "medium_graph_preset",
    "render_bar_table", "render_run", "run_correlated", "run_once",
    "run_trials", "small_graph_preset", "terasort_preset",
    "wordcount_grep_preset",
]
