"""Canonical trace digests: the determinism claim, made checkable.

A digest is a SHA-256 over a *canonical serialisation* of a run's
observable outputs: trial durations for the scaling figures, the full
resampled metric panels plus run metrics for the resource figures, and
the Load/Iter cell grid for Table VII.  Canonicalisation rules:

* floats are rendered with :func:`repr` — CPython's shortest-roundtrip
  formatting, deterministic across platforms and versions;
* NumPy scalars are converted to Python scalars first (their ``repr``
  changed between NumPy 1.x and 2.x);
* mapping keys are sorted; only JSON-ish types are accepted, so a typo'd
  payload fails loudly instead of hashing ``object.__repr__`` addresses.

Two same-seed runs must produce byte-identical canonical forms, hence
identical digests.  The replay harness (:mod:`repro.validation.replay`)
stores these digests under ``tests/golden/`` and re-checks them.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List

import numpy as np

__all__ = [
    "canonical",
    "digest_payload",
    "scaling_payload",
    "resilience_payload",
    "resource_payload",
    "table_payload",
    "fault_payload",
    "trace_payload",
    "streaming_payload",
    "tenancy_payload",
]


def canonical(obj: Any) -> str:
    """Deterministic textual form of a JSON-ish payload."""
    if obj is None:
        return "null"
    if isinstance(obj, bool):
        return "true" if obj else "false"
    if isinstance(obj, (np.floating, np.integer)):
        obj = obj.item()
    if isinstance(obj, int):
        return repr(obj)
    if isinstance(obj, float):
        return repr(obj)
    if isinstance(obj, str):
        return repr(obj)
    if isinstance(obj, dict):
        items = sorted(obj.items(), key=lambda kv: str(kv[0]))
        body = ",".join(f"{canonical(str(k))}:{canonical(v)}"
                        for k, v in items)
        return "{" + body + "}"
    if isinstance(obj, (list, tuple)):
        return "[" + ",".join(canonical(v) for v in obj) + "]"
    raise TypeError(
        f"cannot canonicalise {type(obj).__name__!r}: digests accept only "
        f"None/bool/int/float/str/dict/list/tuple payloads")


def digest_payload(payload: Any) -> str:
    """SHA-256 hex digest of a payload's canonical form."""
    return hashlib.sha256(canonical(payload).encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# payload extractors for the harness result types
# ----------------------------------------------------------------------
def scaling_payload(fig) -> Dict[str, Any]:
    """Full observable output of a :class:`ScalingFigure`.

    Includes every trial's individual duration (not just mean/std), so
    a single divergent run changes the digest.
    """
    payload: Dict[str, Any] = {"figure_id": fig.figure_id, "xs": list(fig.xs)}
    series = {}
    for engine, s in fig.series.items():
        series[engine] = {"nodes": list(s.nodes), "means": list(s.means),
                          "stds": list(s.stds)}
    payload["series"] = series
    trials = {}
    for engine, stats_list in fig.trials_raw.items():
        trials[engine] = [
            {"nodes": st.nodes, "durations": list(st.durations),
             "failures": list(st.failures)}
            for st in stats_list
        ]
    payload["trials"] = trials
    return payload


def resource_payload(fig) -> Dict[str, Any]:
    """Full observable output of a :class:`ResourceFigure`: run timeline,
    accumulated metrics, and every resampled monitoring panel."""
    payload: Dict[str, Any] = {"figure_id": fig.figure_id, "runs": {}}
    for engine, run in fig.runs.items():
        result = run.result
        frames = {}
        for metric, frame in run.frames.items():
            frames[metric.value] = {
                "times": list(frame.times),
                "mean": list(frame.mean),
                "total": list(frame.total),
            }
        payload["runs"][engine] = {
            "duration": result.duration,
            "metrics": {k: v for k, v in sorted(result.metrics.items())
                        if isinstance(v, (int, float))},
            "jobs": [{"name": job.name, "start": job.start, "end": job.end}
                     for job in result.jobs],
            "frames": frames,
        }
    return payload


def fault_payload(fig) -> Dict[str, Any]:
    """Observable output of the Fig. 18 recovery-overhead sweep."""
    cells = []
    for cell in fig.cells:
        cells.append({
            "engine": cell.engine,
            "workload": cell.workload,
            "nodes": cell.nodes,
            "fail_at_fraction": cell.fail_at_fraction,
            "success": cell.success,
            "baseline_seconds": cell.baseline_seconds,
            "simulated_seconds": cell.simulated_seconds,
            "analytic_seconds": cell.analytic_seconds,
            "retries": cell.retries,
            "restarts": cell.restarts,
            "failure": cell.failure,
        })
    return {"figure_id": fig.figure_id, "cells": cells}


def resilience_payload(fig) -> Dict[str, Any]:
    """Observable output of the Fig. 19 resilience campaign.

    Every cell's payload is included — compiled plan digest, event
    count, durations, retry/restart counts — so a change to either the
    stochastic compiler or the fault-recovery engine changes the
    digest.  Gap cells (worker crash/timeout) are observable too: a
    campaign with holes must not hash like a complete one.
    """
    return {
        "figure_id": fig.figure_id,
        "nodes": fig.nodes,
        "rates": list(fig.rates),
        "trials": fig.trials,
        "cells": [cell.payload() for cell in fig.cells],
    }


def streaming_payload(fig) -> Dict[str, Any]:
    """Observable output of a fig20/fig21/fig22 streaming campaign
    (the degradation figure shares the shape: id, nodes, duration,
    per-cell payloads).

    Every cell's payload is included — compiled arrival-plan digest,
    latency percentiles, stability, checkpoint and recovery
    accounting — so a change to the arrival compiler, either engine,
    or the campaign layer changes the digest.  Gap cells are
    observable too.
    """
    return {
        "figure_id": fig.figure_id,
        "nodes": fig.nodes,
        "duration": fig.duration,
        "cells": [cell.payload() for cell in fig.cells],
    }


def tenancy_payload(fig) -> Dict[str, Any]:
    """Observable output of the fig23 multi-tenancy campaign.

    Every cell's payload is included — compiled arrival-plan digest,
    per-job slowdowns and waits, fairness index, preemption and crash
    counts — so a change to the mix compiler, any queue policy, the
    preemption loss models or the campaign layer changes the digest.
    Gap cells are observable too.
    """
    return {
        "figure_id": fig.figure_id,
        "nodes": fig.nodes,
        "loads": list(fig.loads),
        "policies": list(fig.policies),
        "trials": fig.trials,
        "cells": [cell.payload() for cell in fig.cells],
    }


def trace_payload(traced) -> Dict[str, Any]:
    """Observable output of a :class:`~repro.harness.runner.TracedRun`:
    the span tree, critical path and attribution, plus the Chrome-trace
    export built from them — so a change to either the recorded spans
    *or* the exporter's rendering changes the digest."""
    from ..observability import chrome_trace_payload  # local: avoid cycle
    return {
        "traced": traced.to_payload(),
        "chrome": chrome_trace_payload(traced.tree, traced.attribution),
    }


def table_payload(cells) -> List[Dict[str, Any]]:
    """Observable output of the Table VII grid."""
    rows = []
    for cell in cells:
        rows.append({
            "engine": cell.engine,
            "workload": cell.workload,
            "nodes": cell.nodes,
            "success": cell.success,
            "load_seconds": cell.load_seconds,
            "iter_seconds": cell.iter_seconds,
            "failure": cell.failure,
        })
    return rows
