"""Runtime invariant checking and deterministic-replay validation.

The simulator's credibility rests on two properties that used to be
docstring claims only:

* **physical consistency** — bytes are conserved across every capacity,
  the max–min allocator is actually fair and work-conserving, memory
  accounting balances, utilisation stays within physical bounds;
* **bit determinism** — the same seed produces the identical trace.

:mod:`repro.validation.invariants` enforces the first at runtime (attach
an :class:`InvariantChecker`, or pass ``strict=True`` to the harness
runner / ``--strict`` on the CLI).  :mod:`repro.validation.digest`
and :mod:`repro.validation.replay` enforce the second: they hash the
full event+metric trace of a run and compare against golden digests
under ``tests/golden/`` (``repro validate --replay``).

``replay`` is intentionally *not* imported here: it depends on
:mod:`repro.harness.figures`, which itself imports the runner that uses
``invariants`` — import it as ``repro.validation.replay`` when needed.
"""

from .digest import (canonical, digest_payload, resource_payload,
                     scaling_payload, table_payload)
from .invariants import (InvariantChecker, InvariantViolation,
                         set_strict_default, strict_checking,
                         strict_enabled)

__all__ = [
    "InvariantChecker",
    "InvariantViolation",
    "set_strict_default",
    "strict_checking",
    "strict_enabled",
    "canonical",
    "digest_payload",
    "scaling_payload",
    "resource_payload",
    "table_payload",
]
