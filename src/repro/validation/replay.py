"""Deterministic-replay harness: golden digests for paper scenarios.

Each :class:`ReplayScenario` runs one paper artefact at a reduced (but
still multi-node, multi-stage) scale and reduces its full observable
trace to one SHA-256 digest via :mod:`repro.validation.digest`.  The
golden digests live in ``tests/golden/digests.json``; replaying a
scenario and getting a different digest means the simulator's event
trace changed — either an intended model change (regenerate the
goldens) or a determinism regression (fix it).

Workflow::

    repro validate                    # strict invariant pass only
    repro validate --replay           # ...plus digest comparison
    repro validate --replay --update-golden   # re-record after a change

The golden file path resolves, in order: the ``REPRO_GOLDEN_PATH``
environment variable, ``tests/golden/digests.json`` upward from this
module (the in-repo layout), then the current working directory.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..harness import figures
from .digest import (digest_payload, fault_payload, resilience_payload,
                     resource_payload, scaling_payload, streaming_payload,
                     table_payload, tenancy_payload, trace_payload)

__all__ = [
    "ReplayScenario",
    "SCENARIOS",
    "GOLDEN_ENV",
    "golden_path",
    "load_golden",
    "save_golden",
    "compute_digests",
    "verify_replay",
]

GOLDEN_ENV = "REPRO_GOLDEN_PATH"
GOLDEN_RELPATH = Path("tests") / "golden" / "digests.json"


@dataclass(frozen=True)
class ReplayScenario:
    """One replayable paper artefact at regression-test scale."""

    name: str
    description: str
    run: Callable[[int, Optional[bool]], Any]

    def digest(self, seed: int = 0, strict: Optional[bool] = None) -> str:
        return digest_payload(self.run(seed, strict))


def _fig01(seed: int, strict: Optional[bool]) -> Any:
    fig = figures.fig01_wordcount_weak(trials=1, seed=seed, nodes=(2, 4),
                                       strict=strict)
    return scaling_payload(fig)


def _fig10(seed: int, strict: Optional[bool]) -> Any:
    fig = figures.fig10_kmeans_resources(seed=seed, nodes=8, strict=strict)
    return resource_payload(fig)


def _tab07(seed: int, strict: Optional[bool]) -> Any:
    cells = figures.tab07_large_graph(seed=seed, node_counts=(27,),
                                      strict=strict)
    return table_payload(cells)


def _fig18(seed: int, strict: Optional[bool]) -> Any:
    fig = figures.fig18_fault_recovery(seed=seed, nodes=4,
                                       fractions=(0.5,), strict=strict)
    return fault_payload(fig)


def _fig19(seed: int, strict: Optional[bool]) -> Any:
    fig = figures.fig19_resilience(
        seed=seed, nodes=8, rates=(0.0, 1.0), trials=1,
        workload_names=("wordcount", "terasort", "pagerank"),
        strict=strict)
    return resilience_payload(fig)


def _fig20(seed: int, strict: Optional[bool]) -> Any:
    fig = figures.fig20_streaming_latency(
        seed=seed, nodes=4, load_fractions=(0.3, 0.9), duration=20.0,
        strict=strict)
    return streaming_payload(fig)


def _fig21(seed: int, strict: Optional[bool]) -> Any:
    fig = figures.fig21_streaming_recovery(
        seed=seed, nodes=4, checkpoint_intervals=(2.0, 9.0),
        crash_at=13.0, duration=24.0, strict=strict)
    return streaming_payload(fig)


def _fig22(seed: int, strict: Optional[bool]) -> Any:
    fig = figures.fig22_degradation(
        seed=seed, nodes=4, load_multiples=(1.0, 1.5),
        fault_rates=(0.0, 0.5), duration=16.0, strict=strict)
    return streaming_payload(fig)


def _fig23(seed: int, strict: Optional[bool]) -> Any:
    fig = figures.fig23_tenancy(
        seed=seed, nodes=4, loads=(0.5, 0.9), trials=1, jobs_target=6,
        strict=strict)
    return tenancy_payload(fig)


def _trace01(seed: int, strict: Optional[bool]) -> Any:
    from ..config.presets import GiB, wordcount_grep_preset
    from ..harness.runner import run_traced
    from ..workloads import WordCount
    nodes = 8
    traced = run_traced("spark", WordCount(total_bytes=nodes * 24 * GiB),
                        wordcount_grep_preset(nodes), seed=seed,
                        strict=strict)
    return trace_payload(traced)


#: The replay suite: the ISSUE's minimum bar (Fig. 1, Fig. 10, Tab. 7)
#: plus the fault-recovery sweep (Fig. 18 extension) and the span-trace
#: export of one pinned run (the observability golden).
SCENARIOS: Dict[str, ReplayScenario] = {
    "fig01": ReplayScenario(
        "fig01", "Word Count weak scaling (2 and 4 nodes, 1 trial)", _fig01),
    "fig10": ReplayScenario(
        "fig10", "K-Means resource panels (8 nodes, 10 iterations)", _fig10),
    "tab07": ReplayScenario(
        "tab07", "Table VII Large-graph grid (27 nodes)", _tab07),
    "fig18": ReplayScenario(
        "fig18", "Failure recovery overhead (4 nodes, crash at 50%)", _fig18),
    "fig19": ReplayScenario(
        "fig19", "Stochastic resilience curves (8 nodes, rates 0 and 1, "
        "three workloads)", _fig19),
    "fig20": ReplayScenario(
        "fig20", "Streaming latency vs load (4 nodes, Poisson + MMPP, "
        "two load points)", _fig20),
    "fig21": ReplayScenario(
        "fig21", "Streaming recovery vs checkpoint interval (4 nodes, "
        "crash at 13s)", _fig21),
    "fig22": ReplayScenario(
        "fig22", "Streaming overload survival (4 nodes, two load "
        "multiples x two fault rates x both policies)", _fig22),
    "fig23": ReplayScenario(
        "fig23", "Multi-tenant scheduling (4 nodes, three policies x "
        "two loads)", _fig23),
    "trace01": ReplayScenario(
        "trace01", "Word Count span trace + Chrome export (Spark, 8 nodes)",
        _trace01),
}


# ----------------------------------------------------------------------
# golden file handling
# ----------------------------------------------------------------------
def golden_path() -> Path:
    """Locate the golden digest file (see module docstring for order)."""
    env = os.environ.get(GOLDEN_ENV)
    if env:
        return Path(env)
    here = Path(__file__).resolve()
    for parent in here.parents:
        candidate = parent / GOLDEN_RELPATH
        if candidate.exists():
            return candidate
    return Path.cwd() / GOLDEN_RELPATH


def load_golden(path: Optional[Path] = None) -> Dict[str, str]:
    path = Path(path) if path is not None else golden_path()
    if not path.exists():
        return {}
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    return dict(data.get("digests", {}))


def save_golden(digests: Dict[str, str], path: Optional[Path] = None,
                seed: int = 0) -> Path:
    path = Path(path) if path is not None else golden_path()
    path.parent.mkdir(parents=True, exist_ok=True)
    existing = load_golden(path)
    existing.update(digests)
    payload = {
        "comment": "Golden trace digests; regenerate with "
                   "`repro validate --replay --update-golden`.",
        "seed": seed,
        "digests": {k: existing[k] for k in sorted(existing)},
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


# ----------------------------------------------------------------------
# running
# ----------------------------------------------------------------------
def _select(names: Optional[Sequence[str]]) -> List[ReplayScenario]:
    if not names:
        return list(SCENARIOS.values())
    missing = [n for n in names if n not in SCENARIOS]
    if missing:
        raise KeyError(
            f"unknown replay scenario(s) {missing}; available: "
            f"{sorted(SCENARIOS)}")
    return [SCENARIOS[n] for n in names]


def compute_digests(names: Optional[Sequence[str]] = None, seed: int = 0,
                    strict: Optional[bool] = True) -> Dict[str, str]:
    """Run the selected scenarios and return their digests."""
    return {sc.name: sc.digest(seed=seed, strict=strict)
            for sc in _select(names)}


def verify_replay(names: Optional[Sequence[str]] = None, seed: int = 0,
                  strict: Optional[bool] = True,
                  path: Optional[Path] = None) -> List[str]:
    """Replay scenarios against the golden digests.

    Returns mismatch descriptions (empty when everything reproduces).
    Scenarios with no recorded golden are reported too — an unrecorded
    scenario silently passing would defeat the regression.
    """
    golden = load_golden(path)
    problems: List[str] = []
    for scenario in _select(names):
        digest = scenario.digest(seed=seed, strict=strict)
        expected = golden.get(scenario.name)
        if expected is None:
            problems.append(
                f"{scenario.name}: no golden digest recorded (got {digest}); "
                f"run with --update-golden")
        elif digest != expected:
            problems.append(
                f"{scenario.name}: digest {digest} != golden {expected} "
                f"(trace changed)")
    return problems
