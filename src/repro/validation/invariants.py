"""Runtime invariant checking for the cluster simulator.

An :class:`InvariantChecker` hooks into a running simulation at two
levels:

* **online** — as a kernel observer it checks causal event ordering on
  every heap pop, and as the fluid scheduler's ``checker`` it audits
  every max–min reallocation for fairness, work conservation and rate
  caps *at the moment the rates are computed*;
* **post-hoc** — after a run, :meth:`audit_cluster` verifies flow byte
  conservation against each capacity's throughput trace, bounded
  utilisation, memory-account balance and core-pool sanity, while
  :meth:`audit_engine` and :meth:`audit_frames` cover the framework
  memory models and the resampled monitoring panels.

Violations are *collected*, not raised, so one run reports everything
wrong with it; callers end with :meth:`require_clean`, which raises
:class:`InvariantViolation` listing every recorded problem.

The max–min fairness test uses the classical characterisation: an
allocation is max–min fair iff every flow is either at its own rate cap
or crosses a **saturated bottleneck** capacity on which its rate is
maximal.  Progressive filling (what :class:`~repro.cluster.fluid.
FluidScheduler` implements) provably produces such an allocation, so
any violation indicates a scheduler bug, not model noise.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional

from ..cluster.simulation import SimulationError
from ..cluster.trace import check_series_bounds

__all__ = [
    "InvariantChecker",
    "InvariantViolation",
    "set_strict_default",
    "strict_checking",
    "strict_enabled",
]


class InvariantViolation(SimulationError):
    """One or more simulator invariants were broken during a run."""

    def __init__(self, context: str, violations: List[str]) -> None:
        listing = "\n  - ".join(violations)
        super().__init__(
            f"{len(violations)} invariant violation(s) in {context}:\n"
            f"  - {listing}")
        self.context = context
        self.violations = list(violations)


# ----------------------------------------------------------------------
# strict-mode default (what `strict=None` resolves to)
# ----------------------------------------------------------------------
_STRICT_DEFAULT = False


def set_strict_default(value: bool) -> bool:
    """Set the process-wide default for ``strict=None``; returns the
    previous default."""
    global _STRICT_DEFAULT
    previous = _STRICT_DEFAULT
    _STRICT_DEFAULT = bool(value)
    return previous


def strict_enabled(explicit: Optional[bool] = None) -> bool:
    """Resolve an explicit ``strict`` argument against the default."""
    if explicit is None:
        return _STRICT_DEFAULT
    return bool(explicit)


@contextmanager
def strict_checking(value: bool = True):
    """Context manager: every run inside audits itself.

    >>> with strict_checking():
    ...     fig01_wordcount_weak(trials=1, nodes=(2,))
    """
    previous = set_strict_default(value)
    try:
        yield
    finally:
        set_strict_default(previous)


class InvariantChecker:
    """Collects invariant violations from a simulated run.

    ``tolerance`` is a *relative* slack applied to every floating-point
    comparison; rate and byte comparisons additionally scale it by the
    magnitude of the quantities involved, so a violation always means a
    modelling error, never float noise.
    """

    #: Stop recording after this many violations (a broken allocator
    #: would otherwise produce one per event).
    MAX_RECORDED = 64

    def __init__(self, tolerance: float = 1e-6) -> None:
        self.tolerance = tolerance
        self.violations: List[str] = []
        self.suppressed = 0
        #: How many times each check ran (observability + tests).
        self.checks: Dict[str, int] = {
            "kernel_step": 0,
            "max_min": 0,
            "cluster_audit": 0,
            "engine_audit": 0,
            "frame_audit": 0,
            "fault_audit": 0,
            "streaming_audit": 0,
            "scheduling_audit": 0,
            "serving_audit": 0,
        }
        self._last_pop_time = 0.0

    # ------------------------------------------------------------------
    def _record(self, message: str) -> None:
        if len(self.violations) < self.MAX_RECORDED:
            self.violations.append(message)
        else:
            self.suppressed += 1

    @property
    def clean(self) -> bool:
        return not self.violations and not self.suppressed

    def require_clean(self, context: str) -> None:
        """Raise :class:`InvariantViolation` if anything was recorded."""
        if not self.clean:
            violations = list(self.violations)
            if self.suppressed:
                violations.append(
                    f"... and {self.suppressed} further violation(s) "
                    f"suppressed")
            raise InvariantViolation(context, violations)

    # ------------------------------------------------------------------
    # online hooks
    # ------------------------------------------------------------------
    def attach(self, cluster) -> "InvariantChecker":
        """Wire this checker into a cluster's kernel and fluid scheduler."""
        cluster.sim.observers.append(self)
        cluster.fluid.checker = self
        return self

    def detach(self, cluster) -> None:
        if self in cluster.sim.observers:
            cluster.sim.observers.remove(self)
        if cluster.fluid.checker is self:
            cluster.fluid.checker = None

    def on_kernel_step(self, sim, time: float, event, pre_triggered: bool,
                       cancelled: bool) -> None:
        """Causal ordering: the clock never runs backwards, and a live
        event is dispatched exactly once."""
        self.checks["kernel_step"] += 1
        if time < self._last_pop_time:
            self._record(
                f"kernel: event at t={time} popped after t="
                f"{self._last_pop_time} (clock ran backwards)")
        self._last_pop_time = time
        if not cancelled and event.triggered:
            self._record(
                f"kernel: event {event!r} dispatched twice at t={time}")

    def check_max_min(self, scheduler, component) -> None:
        """Audit one freshly computed allocation over a component.

        Checks, in order: non-negative rates, per-flow rate caps, no
        oversubscribed capacity, and the max–min characterisation (every
        flow is capped or bottlenecked at a saturated capacity where its
        rate is maximal — which also implies work conservation).
        """
        self.checks["max_min"] += 1
        tol = self.tolerance
        caps = set()
        for flow in component:
            caps.update(flow.capacities)

        cap_rate = {}
        saturated = {}
        max_rate_on = {}
        for cap in caps:
            total = sum(f.rate for f in cap.flows)
            eff = cap.effective_bandwidth()
            slack = tol * max(1.0, eff)
            cap_rate[cap] = total
            saturated[cap] = total >= eff - slack
            max_rate_on[cap] = max((f.rate for f in cap.flows), default=0.0)
            if total > eff + slack:
                self._record(
                    f"fluid: capacity {cap.name} oversubscribed: "
                    f"{total} > effective bandwidth {eff}")

        for flow in component:
            rate_slack = tol * max(1.0, flow.rate)
            if flow.rate < -rate_slack:
                self._record(f"fluid: flow #{flow.id} has negative rate "
                             f"{flow.rate}")
                continue
            if flow.rate_cap is not None:
                cap_slack = tol * max(1.0, flow.rate_cap)
                if flow.rate > flow.rate_cap + cap_slack:
                    self._record(
                        f"fluid: flow #{flow.id} rate {flow.rate} exceeds "
                        f"its cap {flow.rate_cap}")
                if flow.rate >= flow.rate_cap - cap_slack:
                    continue  # frozen at its own cap: max-min satisfied
            bottlenecked = any(
                saturated[cap] and
                flow.rate >= max_rate_on[cap] - tol * max(1.0, max_rate_on[cap])
                for cap in flow.capacities)
            if not bottlenecked:
                self._record(
                    f"fluid: flow #{flow.id} (rate {flow.rate}, cap "
                    f"{flow.rate_cap}) is neither capped nor bottlenecked "
                    f"— allocation is not max-min fair / work-conserving")

    # ------------------------------------------------------------------
    # post-run audits
    # ------------------------------------------------------------------
    def audit_cluster(self, cluster) -> None:
        """Byte conservation, bounded traces, memory balance, core sanity."""
        self.checks["cluster_audit"] += 1
        now = cluster.sim.now
        moved = cluster.fluid.moved_bytes_by_capacity()
        for node in cluster.nodes:
            for cap in (node.cpu, node.disk, node.nic_in, node.nic_out):
                integral = cap.throughput.integral(0.0, now) if now > 0 else 0.0
                expected = moved.get(cap.name, 0.0)
                scale = max(integral, expected, 1.0)
                # Completions may settle up to 1ns early (the wakeup
                # heap's coalescing window), each leaving < bandwidth*1e-9
                # bytes of slack; 4 KiB + 1e-6 relative covers any run.
                slack = max(4096.0, self.tolerance * scale)
                if abs(integral - expected) > slack:
                    self._record(
                        f"fluid: {cap.name} moved {expected} bytes but its "
                        f"throughput trace integrates to {integral} "
                        f"(byte conservation broken)")
                for problem in check_series_bounds(
                        cap.utilisation, f"{cap.name}.utilisation",
                        0.0, 100.0, tolerance=self.tolerance):
                    self._record(problem)
                for problem in check_series_bounds(
                        cap.throughput, f"{cap.name}.throughput",
                        0.0,
                        # Fault injection may leave the capacity degraded
                        # at audit time; earlier points were legitimately
                        # allocated at the undegraded bandwidth.
                        max(cap.bandwidth, getattr(cap, "bw_high_water",
                                                   cap.bandwidth)),
                        tolerance=self.tolerance):
                    self._record(problem)
            mem_tol = max(1.0, node.memory.peak * 1e-9)
            for problem in node.memory.audit(tolerance=mem_tol):
                self._record(f"memory: {problem}")
            for problem in node.cores.audit():
                self._record(f"cores: {problem}")

    def audit_engine(self, engine) -> None:
        """Audit a framework's memory model (and buffer pools, if any)."""
        self.checks["engine_audit"] += 1
        memory = getattr(engine, "memory", None)
        if memory is not None and hasattr(memory, "audit"):
            for problem in memory.audit():
                self._record(f"engine memory: {problem}")
        buffers = getattr(engine, "buffers", None)
        if buffers is not None and hasattr(buffers, "audit"):
            for problem in buffers.audit():
                self._record(f"engine buffers: {problem}")

    def audit_result(self, result) -> None:
        """Structural sanity of a finished run's timeline."""
        if result.end < result.start:
            self._record(
                f"result: run ends at {result.end} before it starts at "
                f"{result.start}")
        for job in result.jobs:
            if job.end < job.start:
                self._record(
                    f"result: job {job.name!r} ends at {job.end} before "
                    f"it starts at {job.start}")

    def audit_faults(self, state, max_attempts: Optional[int] = None) -> None:
        """Audit a faulted run's bookkeeping.

        Checks the task-conservation ledger (every closed stage account
        balances: retries neither lose nor duplicate work, and attempt
        counts respect the retry policy), and that every degraded-
        capacity trace stays a sane fraction (0 < f <= 1) whose final
        value matches the capacity's current bandwidth relative to the
        node's healthy baseline.
        """
        self.checks["fault_audit"] += 1
        for problem in state.ledger.audit(tolerance=self.tolerance,
                                          max_attempts=max_attempts):
            self._record(f"faults: {problem}")
        for (node_index, resource), series in \
                sorted(state.capacity_traces.items()):
            name = f"node-{node_index:03d}.{resource}"
            for problem in check_series_bounds(
                    series, f"faults: {name}.capacity_fraction",
                    0.0, 1.0, tolerance=self.tolerance):
                self._record(problem)
            if series.last_value <= 0.0:
                self._record(
                    f"faults: {name} capacity fraction dropped to "
                    f"{series.last_value} (dead resources must keep a "
                    f"positive epsilon bandwidth)")
            node = state.cluster.node(node_index)
            baseline = node.baseline_bandwidth(resource)
            actual = node.capacity_for(resource).bandwidth
            expected = series.last_value * baseline
            if abs(actual - expected) > self.tolerance * max(1.0, baseline):
                self._record(
                    f"faults: {name} bandwidth is {actual} but the fault "
                    f"trace says it should be {expected} "
                    f"({series.last_value:.3g} of baseline {baseline})")

    def audit_streaming(self, result) -> None:
        """Audit a finished streaming run's accounting and timelines.

        Checks, in order: exact record conservation (``total ==
        processed + dropped + lost`` with ``lost`` only on a failed
        job), sample-weight/latency-floor sanity, watermark timeline
        ordering with value regressions allowed *only* at sanctioned
        restart-rollback times, restart/crash count balance, and —
        when a degradation policy promises one — a finite p99 within
        the policy's bound (plus crash downtime and one checkpoint
        interval of lineage replay per crash).
        """
        import math
        self.checks["streaming_audit"] += 1
        total = result.total_records
        accounted = (result.processed_records + result.dropped_records
                     + result.lost_records)
        if accounted != total:
            self._record(
                f"streaming: record conservation broken: "
                f"{result.processed_records} processed + "
                f"{result.dropped_records} dropped + "
                f"{result.lost_records} lost != {total} ingested")
        if result.lost_records > 0 and not result.job_failed:
            self._record(
                f"streaming: {result.lost_records} records lost but the "
                f"job did not fail (only a failed job may lose "
                f"admitted records)")
        weight_sum = sum(w for _l, _f, w in result.samples)
        if abs(weight_sum - result.processed_records) > 1e-6:
            self._record(
                f"streaming: sample weights sum to {weight_sum} but "
                f"{result.processed_records} records were processed")
        for latency, floor, weight in result.samples:
            if weight <= 0:
                self._record(
                    f"streaming: sample with non-positive weight {weight}")
                break
            if floor < -1e-9 or latency < floor - 1e-9:
                self._record(
                    f"streaming: latency {latency} below its "
                    f"architectural floor {floor}")
                break
        rollbacks = list(result.rollbacks)
        prev_t = -math.inf
        prev_wm = -math.inf
        for t, wm in result.watermarks:
            if t < prev_t - 1e-9:
                self._record(
                    f"streaming: watermark timeline runs backwards "
                    f"({prev_t} -> {t})")
                break
            if wm < prev_wm - 1e-9 and not any(
                    abs(t - rb) <= 1e-9 for rb in rollbacks):
                self._record(
                    f"streaming: watermark regressed {prev_wm} -> {wm} "
                    f"at t={t} outside any restart rollback")
                break
            prev_t, prev_wm = t, wm
        expected_restarts = (len(result.crashes)
                             - (1 if result.job_failed else 0))
        if result.restarts != expected_restarts:
            self._record(
                f"streaming: {result.restarts} restart(s) recorded for "
                f"{len(result.crashes)} crash(es) "
                f"(job_failed={result.job_failed})")
        if math.isfinite(result.p99_bound) and not result.job_failed:
            p99 = result.percentile(99)
            # Every crash can roll processing back by up to one
            # checkpoint interval of lineage replay, and the delays
            # compound for records caught in successive rollbacks, so
            # the crash allowance scales with the crash count.
            allowance = (result.p99_bound + result.downtime_seconds
                         + len(result.crashes) * result.checkpoint_interval)
            if not math.isfinite(p99) or p99 > allowance:
                self._record(
                    f"streaming: p99 latency {p99} exceeds the active "
                    f"policy's bound {result.p99_bound} "
                    f"(+{allowance - result.p99_bound:.3g} crash "
                    f"allowance)")

    def audit_serving(self, snapshot) -> None:
        """Audit a :class:`~repro.serve.ledger.ServingLedger` snapshot.

        The serving counterpart of :meth:`audit_streaming`'s record
        conservation: every request the service received must sit in
        exactly one terminal bucket, and the buckets must balance.

        Checks, in order: non-negative counters; **request
        conservation** (``received == admitted + rejected_invalid +
        rejected_slow`` and ``admitted == completed + shed + failed +
        in_flight``); shed/failed decompositions (``shed ==
        shed_queue_full + shed_breaker + shed_drain``, ``failed ==
        failed_deadline + failed_worker + failed_internal``); cache-hit
        completions and cache hits/misses/quarantines within their
        lookup totals (a quarantined entry must have counted as a
        miss, never a hit); breaker recoveries needing trips;
        **simulation-attempt conservation** (``sim_attempts == sim_ok +
        sim_crashed + sim_timeout + sim_error + sim_cancelled`` and
        every crash/timeout either retried or exhausted); and — after
        a drain (``draining=True``) — an empty house (``in_flight ==
        0``).
        """
        self.checks["serving_audit"] += 1
        s = dict(snapshot)
        for name, value in s.items():
            if isinstance(value, int) and name != "in_flight" and value < 0:
                self._record(f"serving: counter {name} is negative "
                             f"({value})")
        shed = (s["shed_queue_full"] + s["shed_breaker"]
                + s["shed_drain"])
        failed = (s["failed_deadline"] + s["failed_worker"]
                  + s["failed_internal"])
        if s.get("shed", shed) != shed:
            self._record(f"serving: shed total {s['shed']} != "
                         f"queue_full {s['shed_queue_full']} + breaker "
                         f"{s['shed_breaker']} + drain {s['shed_drain']}")
        if s.get("failed", failed) != failed:
            self._record(f"serving: failed total {s['failed']} != "
                         f"deadline {s['failed_deadline']} + worker "
                         f"{s['failed_worker']} + internal "
                         f"{s['failed_internal']}")
        if s["received"] != (s["admitted"] + s["rejected_invalid"]
                             + s["rejected_slow"]):
            self._record(
                f"serving: request conservation broken at admission: "
                f"{s['admitted']} admitted + {s['rejected_invalid']} "
                f"invalid + {s['rejected_slow']} slow != "
                f"{s['received']} received")
        if s["admitted"] != s["completed"] + shed + failed + s["in_flight"]:
            self._record(
                f"serving: request conservation broken after admission: "
                f"{s['completed']} completed + {shed} shed + {failed} "
                f"failed + {s['in_flight']} in flight != "
                f"{s['admitted']} admitted")
        if s["in_flight"] < 0:
            self._record(f"serving: in_flight gauge is negative "
                         f"({s['in_flight']})")
        if s["completed_cache_hits"] > s["completed"]:
            self._record(
                f"serving: {s['completed_cache_hits']} cache-hit "
                f"completions exceed {s['completed']} completions")
        if s["cache_hits"] + s["cache_misses"] != s["cache_lookups"]:
            self._record(
                f"serving: cache hits {s['cache_hits']} + misses "
                f"{s['cache_misses']} != lookups {s['cache_lookups']}")
        if s["cache_quarantined"] > s["cache_misses"]:
            self._record(
                f"serving: {s['cache_quarantined']} quarantined cache "
                f"entries exceed {s['cache_misses']} misses (a corrupt "
                f"entry must count as a miss, never a hit)")
        if s["breaker_recoveries"] > s["breaker_trips"]:
            self._record(
                f"serving: {s['breaker_recoveries']} breaker "
                f"recovery(ies) but only {s['breaker_trips']} trip(s)")
        accounted = (s["sim_ok"] + s["sim_crashed"] + s["sim_timeout"]
                     + s["sim_error"] + s["sim_cancelled"])
        if s["sim_attempts"] != accounted:
            self._record(
                f"serving: simulation attempt conservation broken: "
                f"{s['sim_ok']} ok + {s['sim_crashed']} crashed + "
                f"{s['sim_timeout']} timed out + {s['sim_error']} "
                f"errored + {s['sim_cancelled']} cancelled != "
                f"{s['sim_attempts']} attempts")
        if s["sim_retried"] + s["sim_exhausted"] != (s["sim_crashed"]
                                                     + s["sim_timeout"]):
            self._record(
                f"serving: every crashed/timed-out attempt must be "
                f"retried or exhausted: {s['sim_retried']} retried + "
                f"{s['sim_exhausted']} exhausted != {s['sim_crashed']} "
                f"crashed + {s['sim_timeout']} timed out")
        if s.get("draining") and s["in_flight"] != 0:
            self._record(
                f"serving: {s['in_flight']} request(s) still in flight "
                f"after the drain completed")

    def audit_scheduling(self, result) -> None:
        """Audit a finished tenancy run (:mod:`repro.scheduler`).

        Checks, in order: snapshot sanity (nondecreasing times, grants
        within width and alive capacity, per-queue totals consistent
        and never above quota), **work conservation** (capacity left
        idle only when every eligible job is already at width or its
        queue is at quota), **fair-share accuracy** (each queue and
        each job within one node of the exact fractional max–min
        share), the job **ledger** (completed + failed + rejected ==
        submitted, all statuses terminal), and per-job accounting
        (``executed == useful + wasted``, waste only with a recorded
        preemption or crash, slowdown >= 1, ordered timestamps).
        """
        import math
        self.checks["scheduling_audit"] += 1
        tol = self.tolerance
        records = {r.index: r for r in result.records}
        quotas = dict(result.queue_quotas)

        prev_time = -math.inf
        for snap in result.snapshots:
            at = f"t={snap.time:g} ({snap.cause})"
            if snap.time < prev_time - tol:
                self._record(f"scheduling: snapshot times run backwards "
                             f"({prev_time} -> {snap.time})")
            prev_time = snap.time
            if not 0 <= snap.capacity <= result.nodes:
                self._record(f"scheduling: {at}: capacity "
                             f"{snap.capacity} outside [0, {result.nodes}]")
            total = sum(snap.grants.values())
            if total > snap.capacity:
                self._record(f"scheduling: {at}: {total} node(s) granted "
                             f"on {snap.capacity} alive")
            queue_totals: Dict[str, int] = {}
            for index, grant in snap.grants.items():
                record = records.get(index)
                if record is None:
                    self._record(f"scheduling: {at}: grant for unknown "
                                 f"job #{index}")
                    continue
                if grant < 0 or grant > record.width:
                    self._record(
                        f"scheduling: {at}: job #{index} granted {grant} "
                        f"outside [0, width={record.width}]")
                queue_totals[record.queue] = \
                    queue_totals.get(record.queue, 0) + grant
            for queue in set(queue_totals) | set(snap.queue_grants):
                mine = queue_totals.get(queue, 0)
                theirs = snap.queue_grants.get(queue, 0)
                if mine != theirs:
                    self._record(
                        f"scheduling: {at}: queue {queue!r} grant total "
                        f"{theirs} disagrees with the job grants "
                        f"summing to {mine}")
            for queue, granted in snap.queue_grants.items():
                quota = quotas.get(queue)
                if quota is not None and granted > quota:
                    self._record(
                        f"scheduling: {at}: queue {queue!r} holds "
                        f"{granted} node(s) over its quota {quota}")
            if total < snap.capacity:
                for index in snap.eligible:
                    record = records.get(index)
                    if record is None:
                        continue
                    grant = snap.grants.get(index, 0)
                    if grant >= record.width:
                        continue
                    quota = quotas.get(record.queue)
                    at_quota = (quota is not None and
                                snap.queue_grants.get(record.queue, 0)
                                >= quota)
                    if not at_quota:
                        self._record(
                            f"scheduling: {at}: work conservation broken: "
                            f"{snap.capacity - total} node(s) idle while "
                            f"eligible job #{index} holds {grant} of "
                            f"width {record.width} and queue "
                            f"{record.queue!r} is under quota")
                        break
            if result.policy == "fair":
                self._audit_fair_snapshot(snap, records, quotas)

        terminal = {"completed", "failed", "rejected"}
        counts = {"completed": 0, "failed": 0, "rejected": 0}
        for record in result.records:
            if record.status not in terminal:
                self._record(f"scheduling: job #{record.index} ended the "
                             f"run in non-terminal state "
                             f"{record.status!r}")
                continue
            counts[record.status] += 1
        if sum(counts.values()) != result.submitted:
            self._record(
                f"scheduling: ledger broken: {counts['completed']} "
                f"completed + {counts['failed']} failed + "
                f"{counts['rejected']} rejected != {result.submitted} "
                f"submitted")

        for record in result.records:
            who = f"job #{record.index} ({record.template})"
            if record.executed < -tol or record.wasted < -tol:
                self._record(f"scheduling: {who} has negative accounting "
                             f"(executed={record.executed}, "
                             f"wasted={record.wasted})")
            if record.wasted > tol * max(1.0, record.service) and \
                    record.preemptions + record.crashes == 0:
                self._record(
                    f"scheduling: {who} wasted {record.wasted:.3g}s with "
                    f"no recorded preemption or crash")
            if record.status == "rejected":
                if record.start is not None or record.executed > tol:
                    self._record(f"scheduling: rejected {who} ran anyway")
                continue
            if record.status == "completed":
                scale = max(1.0, record.service + record.wasted)
                if record.completion is None:
                    self._record(f"scheduling: completed {who} has no "
                                 f"completion time")
                    continue
                if abs(record.executed
                       - (record.service + record.wasted)) > tol * scale:
                    self._record(
                        f"scheduling: {who} re-execution ledger broken: "
                        f"executed {record.executed:.6g} != service "
                        f"{record.service:.6g} + wasted "
                        f"{record.wasted:.6g}")
                if record.start is None or \
                        not (record.arrival - tol <= record.start
                             <= record.completion + tol):
                    self._record(
                        f"scheduling: {who} timestamps out of order "
                        f"(arrival={record.arrival}, "
                        f"start={record.start}, "
                        f"completion={record.completion})")
                elapsed = record.completion - record.arrival
                if elapsed < record.service - tol * max(1.0, record.service):
                    self._record(
                        f"scheduling: {who} finished in {elapsed:.6g}s, "
                        f"faster than its service time "
                        f"{record.service:.6g}s (slowdown < 1)")
                if record.wait > elapsed + tol:
                    self._record(f"scheduling: {who} waited "
                                 f"{record.wait:.6g}s of a "
                                 f"{elapsed:.6g}s lifetime")
            elif record.status == "failed" and not record.failure:
                self._record(f"scheduling: failed {who} carries no "
                             f"failure reason")

    def _audit_fair_snapshot(self, snap, records, quotas) -> None:
        """Fair policy: every queue and job within one node of its
        exact fractional max–min share."""
        from ..cluster.allocation import fractional_max_min
        tol = self.tolerance
        at = f"t={snap.time:g} ({snap.cause})"
        members: Dict[str, List] = {}
        for index in snap.eligible:
            record = records.get(index)
            if record is not None:
                members.setdefault(record.queue, []).append(record)
        names = sorted(members)
        demands = []
        for queue in names:
            want = sum(r.width for r in members[queue])
            quota = quotas.get(queue)
            demands.append(want if quota is None else min(want, quota))
        exact = fractional_max_min(demands, snap.capacity)
        for queue, share in zip(names, exact):
            granted = snap.queue_grants.get(queue, 0)
            if abs(granted - share) > 1.0 + tol:
                self._record(
                    f"scheduling: {at}: fair share broken across "
                    f"queues: {queue!r} holds {granted} node(s), exact "
                    f"share is {share:.3f}")
        for queue in names:
            jobs = sorted(members[queue],
                          key=lambda r: (r.arrival, r.index))
            inner = fractional_max_min(
                [r.width for r in jobs],
                snap.queue_grants.get(queue, 0))
            for record, share in zip(jobs, inner):
                granted = snap.grants.get(record.index, 0)
                if abs(granted - share) > 1.0 + tol:
                    self._record(
                        f"scheduling: {at}: fair share broken within "
                        f"queue {queue!r}: job #{record.index} holds "
                        f"{granted} node(s), exact share is "
                        f"{share:.3f}")

    def audit_frames(self, frames) -> None:
        """Physical bounds on resampled monitoring panels."""
        from ..monitoring.metrics import validate_frame
        self.checks["frame_audit"] += 1
        for frame in frames.values():
            for problem in validate_frame(frame, tolerance=self.tolerance):
                self._record(f"monitoring: {problem}")

    def __repr__(self) -> str:
        state = "clean" if self.clean else f"{len(self.violations)} violations"
        return f"InvariantChecker({state}, checks={self.checks})"
