"""The paper's six workloads, really executed on both mini-engines.

Each workload has a Spark-style and a Flink-style implementation using
exactly the operator sequences of §III / Table I, plus a plain-Python
oracle.  The test suite asserts all three agree, which validates that
the two execution models (staged vs pipelined, loop-unrolled vs native
iterations) are *semantically* equivalent — the performance difference
studied by the paper is then purely architectural.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from .local_flink import LocalEnvironment
from .local_spark import LocalSparkContext
from .partitions import merge_sorted, range_partitioner

__all__ = [
    "wordcount_spark", "wordcount_flink", "wordcount_oracle",
    "grep_spark", "grep_flink", "grep_oracle",
    "terasort_spark", "terasort_flink", "terasort_oracle",
    "kmeans_spark", "kmeans_flink", "kmeans_oracle",
    "pagerank_spark", "pagerank_flink", "pagerank_oracle",
    "connected_components_spark", "connected_components_flink",
    "connected_components_oracle",
]


# ----------------------------------------------------------------------
# Word Count: flatMap -> (pair) -> reduce -> save
# ----------------------------------------------------------------------
def wordcount_spark(ctx: LocalSparkContext, lines: Sequence[str]) -> Dict[str, int]:
    rdd = (ctx.text_file(lines)
           .flat_map(str.split)
           .map_to_pair(lambda w: (w, 1))
           .reduce_by_key(lambda a, b: a + b))
    return rdd.collect_as_map()


def wordcount_flink(env: LocalEnvironment, lines: Sequence[str]) -> Dict[str, int]:
    ds = (env.read_text(lines)
          .flat_map(lambda line: [(w, 1) for w in line.split()])
          .group_by(lambda kv: kv[0])
          .sum(lambda kv: kv[1], lambda k, total: (k, total)))
    return dict(ds.collect())


def wordcount_oracle(lines: Iterable[str]) -> Dict[str, int]:
    return dict(Counter(w for line in lines for w in line.split()))


# ----------------------------------------------------------------------
# Grep: filter -> count
# ----------------------------------------------------------------------
def grep_spark(ctx: LocalSparkContext, lines: Sequence[str],
               pattern: str) -> int:
    return ctx.text_file(lines).filter(lambda l: pattern in l).count()


def grep_flink(env: LocalEnvironment, lines: Sequence[str],
               pattern: str) -> int:
    return env.read_text(lines).filter(lambda l: pattern in l).count()


def grep_oracle(lines: Iterable[str], pattern: str) -> int:
    return sum(1 for l in lines if pattern in l)


# ----------------------------------------------------------------------
# Tera Sort: custom range partitioner + per-partition sort
# ----------------------------------------------------------------------
def terasort_spark(ctx: LocalSparkContext,
                   records: Sequence[Tuple[bytes, bytes]],
                   boundaries: Sequence[bytes]) -> List[Tuple[bytes, bytes]]:
    part = range_partitioner(list(boundaries))
    rdd = (ctx.parallelize(list(records))
           .map_to_pair(lambda kv: kv)
           .repartition_and_sort_within_partitions(
               part, len(boundaries) + 1))
    return merge_sorted(rdd.collect_partitions())


def terasort_flink(env: LocalEnvironment,
                   records: Sequence[Tuple[bytes, bytes]],
                   boundaries: Sequence[bytes]) -> List[Tuple[bytes, bytes]]:
    part = range_partitioner(list(boundaries))
    ds = (env.from_collection(list(records))
          .map(lambda kv: kv)  # OptimizedText tuple creation
          .partition_custom(part, lambda kv: kv[0], len(boundaries) + 1)
          .sort_partition(lambda kv: kv[0]))
    parts = [list(src) for src in ds._sources()]
    return merge_sorted(parts)


def terasort_oracle(records: Iterable[Tuple[bytes, bytes]]
                    ) -> List[Tuple[bytes, bytes]]:
    return sorted(records, key=lambda kv: kv[0])


# ----------------------------------------------------------------------
# K-Means: cached points, per-iteration assign + recompute
# ----------------------------------------------------------------------
def _closest(point: Tuple[float, float],
             centers: Sequence[Tuple[float, float]]) -> int:
    best, best_d = 0, math.inf
    for i, c in enumerate(centers):
        d = (point[0] - c[0]) ** 2 + (point[1] - c[1]) ** 2
        if d < best_d:
            best, best_d = i, d
    return best


def kmeans_spark(ctx: LocalSparkContext,
                 points: Sequence[Tuple[float, float]],
                 initial_centers: Sequence[Tuple[float, float]],
                 iterations: int) -> List[Tuple[float, float]]:
    """Loop unrolling: a new job (map -> reduceByKey -> collectAsMap)
    per iteration over the cached points (Fig. 10 right)."""
    cached = ctx.parallelize(list(points)).cache()
    centers = [tuple(c) for c in initial_centers]
    for _ in range(iterations):
        sums = (cached
                .map_to_pair(lambda p: (_closest(p, centers),
                                        (p[0], p[1], 1)))
                .reduce_by_key(lambda a, b: (a[0] + b[0], a[1] + b[1],
                                             a[2] + b[2]))
                .collect_as_map())
        centers = [(sx / n, sy / n) if n else centers[i]
                   for i, (sx, sy, n) in
                   ((i, sums.get(i, (0.0, 0.0, 0))) for i in
                    range(len(centers)))]
    return centers


def kmeans_flink(env: LocalEnvironment,
                 points: Sequence[Tuple[float, float]],
                 initial_centers: Sequence[Tuple[float, float]],
                 iterations: int) -> List[Tuple[float, float]]:
    """Bulk iteration over the *centers* with the points broadcast —
    Flink's canonical K-Means shape."""
    pts = list(points)
    k = len(initial_centers)

    def step(centers_ds):
        centers = sorted(centers_ds.collect(), key=lambda c: c[0])
        cs = [c[1] for c in centers]
        sums = defaultdict(lambda: (0.0, 0.0, 0))
        for p in pts:
            i = _closest(p, cs)
            sx, sy, n = sums[i]
            sums[i] = (sx + p[0], sy + p[1], n + 1)
        new_centers = []
        for i in range(k):
            sx, sy, n = sums.get(i, (0.0, 0.0, 0))
            new_centers.append((i, (sx / n, sy / n) if n else cs[i]))
        return env.from_collection(new_centers)

    indexed = [(i, tuple(c)) for i, c in enumerate(initial_centers)]
    final = env.from_collection(indexed).iterate(iterations, step)
    return [c for _i, c in sorted(final.collect(), key=lambda c: c[0])]


def kmeans_oracle(points: Sequence[Tuple[float, float]],
                  initial_centers: Sequence[Tuple[float, float]],
                  iterations: int) -> List[Tuple[float, float]]:
    pts = np.asarray(points, dtype=float)
    centers = np.asarray(initial_centers, dtype=float)
    for _ in range(iterations):
        d = ((pts[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        assign = d.argmin(axis=1)
        for i in range(len(centers)):
            mask = assign == i
            if mask.any():
                centers[i] = pts[mask].mean(axis=0)
    return [tuple(c) for c in centers]


# ----------------------------------------------------------------------
# Page Rank
# ----------------------------------------------------------------------
def pagerank_spark(ctx: LocalSparkContext,
                   edges: Sequence[Tuple[int, int]],
                   iterations: int, damping: float = 0.85
                   ) -> Dict[int, float]:
    """GraphX-style: cached link structure, unrolled rank updates."""
    vertices = sorted({v for e in edges for v in e})
    links = ctx.parallelize(list(edges)).group_by_key().cache()
    n = len(vertices)
    ranks = {v: 1.0 / n for v in vertices}
    out_neighbours = dict(links.collect())
    for _ in range(iterations):
        contribs = (links
                    .flat_map(lambda kv: [
                        (dst, ranks[kv[0]] / len(kv[1])) for dst in kv[1]])
                    .reduce_by_key(lambda a, b: a + b)
                    .collect_as_map())
        ranks = {v: (1 - damping) / n + damping * contribs.get(v, 0.0)
                 for v in vertices}
    return ranks


def pagerank_flink(env: LocalEnvironment,
                   edges: Sequence[Tuple[int, int]],
                   iterations: int, damping: float = 0.85
                   ) -> Dict[int, float]:
    """Gelly-style: vertex-centric bulk iteration over (vertex, rank)."""
    vertices = sorted({v for e in edges for v in e})
    n = len(vertices)
    adjacency: Dict[int, List[int]] = defaultdict(list)
    for s, d in edges:
        adjacency[s].append(d)

    def superstep(ranks_ds):
        ranks = dict(ranks_ds.collect())
        contribs: Dict[int, float] = defaultdict(float)
        for v, out in adjacency.items():
            share = ranks[v] / len(out)
            for dst in out:
                contribs[dst] += share
        return env.from_collection(
            [(v, (1 - damping) / n + damping * contribs.get(v, 0.0))
             for v in vertices])

    initial = env.from_collection([(v, 1.0 / n) for v in vertices])
    return dict(initial.iterate(iterations, superstep).collect())


def pagerank_oracle(edges: Sequence[Tuple[int, int]], iterations: int,
                    damping: float = 0.85) -> Dict[int, float]:
    vertices = sorted({v for e in edges for v in e})
    n = len(vertices)
    adjacency: Dict[int, List[int]] = defaultdict(list)
    for s, d in edges:
        adjacency[s].append(d)
    ranks = {v: 1.0 / n for v in vertices}
    for _ in range(iterations):
        contribs: Dict[int, float] = defaultdict(float)
        for v, out in adjacency.items():
            share = ranks[v] / len(out)
            for dst in out:
                contribs[dst] += share
        ranks = {v: (1 - damping) / n + damping * contribs.get(v, 0.0)
                 for v in vertices}
    return ranks


# ----------------------------------------------------------------------
# Connected Components (on the undirected view of the graph)
# ----------------------------------------------------------------------
def connected_components_spark(ctx: LocalSparkContext,
                               edges: Sequence[Tuple[int, int]],
                               max_iterations: int = 100) -> Dict[int, int]:
    """GraphX-style label propagation with unrolled jobs."""
    undirected = list(edges) + [(d, s) for s, d in edges]
    links = ctx.parallelize(undirected).group_by_key().cache()
    labels = {v: v for e in edges for v in e}
    for _ in range(max_iterations):
        candidates = (links
                      .flat_map(lambda kv: [
                          (dst, labels[kv[0]]) for dst in kv[1]])
                      .reduce_by_key(min)
                      .collect_as_map())
        new_labels = {v: min(lbl, candidates.get(v, lbl))
                      for v, lbl in labels.items()}
        if new_labels == labels:
            break
        labels = new_labels
    return labels


def connected_components_flink(env: LocalEnvironment,
                               edges: Sequence[Tuple[int, int]],
                               max_iterations: int = 100) -> Dict[int, int]:
    """Delta iteration: only vertices whose label changed stay in the
    workset — the shrinking-work behaviour the paper credits."""
    vertices = sorted({v for e in edges for v in e})
    adjacency: Dict[int, List[int]] = defaultdict(list)
    for s, d in edges:
        adjacency[s].append(d)
        adjacency[d].append(s)

    solution = env.from_collection([(v, v) for v in vertices])
    workset = env.from_collection([(v, v) for v in vertices])

    def step(sol: Dict, work: List) -> List:
        candidates: Dict[int, int] = {}
        for v, label in work:
            for nb in adjacency[v]:
                if label < candidates.get(nb, sol[nb][1] if nb in sol
                                          else nb):
                    candidates[nb] = label
        deltas = []
        for v, label in candidates.items():
            if label < sol[v][1]:
                deltas.append((v, label))
        return deltas

    final = solution.iterate_delta(workset, max_iterations,
                                   key_fn=lambda kv: kv[0], step=step)
    return dict(final.collect())


def connected_components_oracle(edges: Sequence[Tuple[int, int]]
                                ) -> Dict[int, int]:
    """Union-find; component id = smallest vertex id in the component."""
    parent: Dict[int, int] = {}

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for s, d in edges:
        parent.setdefault(s, s)
        parent.setdefault(d, d)
        rs, rd = find(s), find(d)
        if rs != rd:
            parent[max(rs, rd)] = min(rs, rd)
    return {v: find(v) for v in parent}
