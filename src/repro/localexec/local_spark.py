"""A real, executable miniature of Spark's RDD model.

This is not a simulation: :class:`LocalRDD` computes actual results on
in-memory partitions, with the architectural traits the paper discusses
implemented literally —

* **lineage**: an RDD is a recipe (parent + transformation); it can be
  recomputed at any time and counts recomputations;
* **laziness**: nothing runs until an action;
* **explicit persistence**: :meth:`LocalRDD.cache` materialises the
  partitions, and iterative programs reuse them (the paper's §II-C);
* **staged execution**: wide operations hash-partition their input to
  real shuffle buckets, and the context counts stages and shuffled
  records so tests can observe the execution structure.

The driver-facing API mirrors the subset of Spark 1.5 the paper's
workloads use (Table I).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .partitions import hash_partitioner, split_evenly

__all__ = ["LocalSparkContext", "LocalRDD"]


class Broadcast:
    """A read-only value shipped once to every executor (``sc.broadcast``)."""

    def __init__(self, value) -> None:
        self._value = value

    @property
    def value(self):
        return self._value


class Accumulator:
    """A write-only counter tasks add to and the driver reads
    (``sc.accumulator``)."""

    def __init__(self, initial=0) -> None:
        self.value = initial

    def add(self, amount) -> None:
        self.value += amount

    def __iadd__(self, amount) -> "Accumulator":
        self.add(amount)
        return self


class LocalSparkContext:
    """Driver entry point; owns execution counters."""

    def __init__(self, default_parallelism: int = 4) -> None:
        if default_parallelism < 1:
            raise ValueError("default_parallelism must be >= 1")
        self.default_parallelism = default_parallelism
        self.stages_executed = 0
        self.shuffled_records = 0
        self.recomputations = 0

    def broadcast(self, value) -> Broadcast:
        return Broadcast(value)

    def accumulator(self, initial=0) -> Accumulator:
        return Accumulator(initial)

    # ------------------------------------------------------------------
    def parallelize(self, data: Sequence, num_partitions: Optional[int] = None
                    ) -> "LocalRDD":
        parts = split_evenly(list(data),
                             num_partitions or self.default_parallelism)
        return LocalRDD(self, lambda: [list(p) for p in parts], name="parallelize")

    def text_file(self, lines: Sequence[str],
                  num_partitions: Optional[int] = None) -> "LocalRDD":
        """Stand-in for ``sc.textFile`` reading an in-memory 'file'."""
        return self.parallelize(list(lines), num_partitions)


class LocalRDD:
    """A lazy, partitioned, recomputable collection."""

    def __init__(self, ctx: LocalSparkContext,
                 compute: Callable[[], List[List]], name: str = "rdd") -> None:
        self.ctx = ctx
        self._compute = compute
        self.name = name
        self._cached: Optional[List[List]] = None
        self.is_cached = False

    # ------------------------------------------------------------------
    # materialisation
    # ------------------------------------------------------------------
    def _partitions(self) -> List[List]:
        if self._cached is not None:
            return self._cached
        self.ctx.recomputations += 1
        parts = self._compute()
        if self.is_cached:
            self._cached = parts
        return parts

    def cache(self) -> "LocalRDD":
        """Mark persistent: materialised once, reused afterwards."""
        self.is_cached = True
        return self

    def unpersist(self) -> "LocalRDD":
        self.is_cached = False
        self._cached = None
        return self

    @property
    def num_partitions(self) -> int:
        return len(self._partitions())

    # ------------------------------------------------------------------
    # narrow transformations (no shuffle)
    # ------------------------------------------------------------------
    def _narrow(self, fn: Callable[[List], List], name: str) -> "LocalRDD":
        parent = self

        def compute() -> List[List]:
            return [fn(p) for p in parent._partitions()]

        return LocalRDD(self.ctx, compute, name=name)

    def map(self, fn: Callable) -> "LocalRDD":
        return self._narrow(lambda p: [fn(x) for x in p], "map")

    def flat_map(self, fn: Callable) -> "LocalRDD":
        return self._narrow(
            lambda p: [y for x in p for y in fn(x)], "flatMap")

    def filter(self, pred: Callable) -> "LocalRDD":
        return self._narrow(lambda p: [x for x in p if pred(x)], "filter")

    def map_to_pair(self, fn: Callable) -> "LocalRDD":
        return self._narrow(lambda p: [fn(x) for x in p], "mapToPair")

    def map_partitions(self, fn: Callable[[List], Iterable]) -> "LocalRDD":
        return self._narrow(lambda p: list(fn(p)), "mapPartitions")

    def map_values(self, fn: Callable) -> "LocalRDD":
        return self._narrow(lambda p: [(k, fn(v)) for k, v in p], "mapValues")

    def coalesce(self, num_partitions: int) -> "LocalRDD":
        parent = self

        def compute() -> List[List]:
            flat = [x for p in parent._partitions() for x in p]
            return split_evenly(flat, num_partitions)

        return LocalRDD(self.ctx, compute, name="coalesce")

    def union(self, other: "LocalRDD") -> "LocalRDD":
        parent = self

        def compute() -> List[List]:
            return parent._partitions() + other._partitions()

        return LocalRDD(self.ctx, compute, name="union")

    def sample(self, fraction: float, seed: int = 0) -> "LocalRDD":
        """Bernoulli sample without replacement (deterministic)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        import random
        parent = self

        def compute() -> List[List]:
            rng = random.Random(seed)
            return [[x for x in p if rng.random() < fraction]
                    for p in parent._partitions()]

        return LocalRDD(self.ctx, compute, name="sample")

    def keys(self) -> "LocalRDD":
        return self._narrow(lambda p: [k for k, _v in p], "keys")

    def values(self) -> "LocalRDD":
        return self._narrow(lambda p: [v for _k, v in p], "values")

    def sort_by(self, key_fn: Callable,
                num_partitions: Optional[int] = None) -> "LocalRDD":
        """Global sort: sample-based range partitioning + local sorts,
        like ``rdd.sortBy``."""
        parent = self
        n = num_partitions or self.ctx.default_parallelism

        def compute() -> List[List]:
            parent.ctx.stages_executed += 1
            items = [x for p in parent._partitions() for x in p]
            items.sort(key=key_fn)
            parent.ctx.shuffled_records += len(items)
            return split_evenly(items, n)

        return LocalRDD(self.ctx, compute, name="sortBy")

    # ------------------------------------------------------------------
    # wide transformations (stage boundary: real hash shuffle)
    # ------------------------------------------------------------------
    def _shuffle(self, pairs_parts: List[List[Tuple]],
                 num_partitions: int) -> List[List[Tuple]]:
        self.ctx.stages_executed += 1
        part = hash_partitioner(num_partitions)
        buckets: List[List[Tuple]] = [[] for _ in range(num_partitions)]
        for p in pairs_parts:
            for k, v in p:
                buckets[part(k)].append((k, v))
                self.ctx.shuffled_records += 1
        return buckets

    def reduce_by_key(self, fn: Callable,
                      num_partitions: Optional[int] = None) -> "LocalRDD":
        parent = self
        n = num_partitions or self.ctx.default_parallelism

        def compute() -> List[List]:
            # Map-side combine first (both engines do; paper §III).
            combined_parts: List[List[Tuple]] = []
            for p in parent._partitions():
                acc: Dict = {}
                for k, v in p:
                    acc[k] = fn(acc[k], v) if k in acc else v
                combined_parts.append(list(acc.items()))
            buckets = parent._shuffle(combined_parts, n)
            out = []
            for b in buckets:
                acc: Dict = {}
                for k, v in b:
                    acc[k] = fn(acc[k], v) if k in acc else v
                out.append(list(acc.items()))
            return out

        return LocalRDD(self.ctx, compute, name="reduceByKey")

    def group_by_key(self, num_partitions: Optional[int] = None) -> "LocalRDD":
        parent = self
        n = num_partitions or self.ctx.default_parallelism

        def compute() -> List[List]:
            buckets = parent._shuffle(parent._partitions(), n)
            out = []
            for b in buckets:
                acc: Dict = defaultdict(list)
                for k, v in b:
                    acc[k].append(v)
                out.append(list(acc.items()))
            return out

        return LocalRDD(self.ctx, compute, name="groupByKey")

    def distinct(self, num_partitions: Optional[int] = None) -> "LocalRDD":
        parent = self
        n = num_partitions or self.ctx.default_parallelism

        def compute() -> List[List]:
            pairs = [[(x, None) for x in p] for p in parent._partitions()]
            buckets = parent._shuffle(pairs, n)
            return [list({k for k, _ in b}) for b in buckets]

        return LocalRDD(self.ctx, compute, name="distinct")

    def join(self, other: "LocalRDD",
             num_partitions: Optional[int] = None) -> "LocalRDD":
        parent = self
        n = num_partitions or self.ctx.default_parallelism

        def compute() -> List[List]:
            left = parent._shuffle(parent._partitions(), n)
            right = parent._shuffle(other._partitions(), n)
            out = []
            for lb, rb in zip(left, right):
                lmap: Dict = defaultdict(list)
                for k, v in lb:
                    lmap[k].append(v)
                joined = []
                for k, w in rb:
                    for v in lmap.get(k, ()):
                        joined.append((k, (v, w)))
                out.append(joined)
            return out

        return LocalRDD(self.ctx, compute, name="join")

    def repartition_and_sort_within_partitions(
            self, partitioner: Callable[[object], int],
            num_partitions: int) -> "LocalRDD":
        """Tera Sort's shuffle: route by the custom (range) partitioner,
        then sort each partition locally."""
        parent = self

        def compute() -> List[List]:
            parent.ctx.stages_executed += 1
            buckets: List[List[Tuple]] = [[] for _ in range(num_partitions)]
            for p in parent._partitions():
                for k, v in p:
                    buckets[partitioner(k)].append((k, v))
                    parent.ctx.shuffled_records += 1
            return [sorted(b, key=lambda kv: kv[0]) for b in buckets]

        return LocalRDD(self.ctx, compute, name="repartitionAndSortWithinPartitions")

    # ------------------------------------------------------------------
    # actions (trigger execution)
    # ------------------------------------------------------------------
    def collect(self) -> List:
        self.ctx.stages_executed += 1
        return [x for p in self._partitions() for x in p]

    def collect_partitions(self) -> List[List]:
        self.ctx.stages_executed += 1
        return [list(p) for p in self._partitions()]

    def count(self) -> int:
        self.ctx.stages_executed += 1
        return sum(len(p) for p in self._partitions())

    def collect_as_map(self) -> Dict:
        return dict(self.collect())

    def reduce(self, fn: Callable):
        items = self.collect()
        if not items:
            raise ValueError("reduce of empty RDD")
        acc = items[0]
        for x in items[1:]:
            acc = fn(acc, x)
        return acc

    def take(self, n: int) -> List:
        """First ``n`` elements in partition order (scans lazily)."""
        if n < 0:
            raise ValueError("n must be >= 0")
        out: List = []
        for p in self._partitions():
            for x in p:
                if len(out) == n:
                    return out
                out.append(x)
        return out

    def first(self):
        got = self.take(1)
        if not got:
            raise ValueError("first() of empty RDD")
        return got[0]

    def foreach(self, fn: Callable) -> None:
        """Run ``fn`` for its side effects (e.g. accumulator adds)."""
        for x in self.collect():
            fn(x)

    def save_as_text_file(self, sink: List[str]) -> None:
        """Append one line per element to ``sink`` (an in-memory file)."""
        sink.extend(str(x) for x in self.collect())

    def __repr__(self) -> str:
        return f"LocalRDD({self.name})"
