"""Really-executable mini-engines: a staged Spark-style RDD runtime and
a pipelined Flink-style DataSet runtime, plus the six workloads
implemented on both (with plain-Python oracles)."""

from .local_flink import GroupedDataSet, LocalDataSet, LocalEnvironment
from .local_spark import LocalRDD, LocalSparkContext
from .partitions import (hash_partitioner, merge_sorted, range_partitioner,
                         split_evenly)
from . import algorithms

__all__ = ["GroupedDataSet", "LocalDataSet", "LocalEnvironment", "LocalRDD",
           "LocalSparkContext", "algorithms", "hash_partitioner",
           "merge_sorted", "range_partitioner", "split_evenly"]
