"""A real, executable miniature of Flink's DataSet model.

The architectural contrasts with :mod:`~repro.localexec.local_spark`
are implemented literally:

* **pipelined execution**: narrow operators are fused into generator
  chains — records stream through ``map``/``filter``/``flatMap`` one at
  a time without materialising intermediates (the environment counts
  materialisations so tests can verify this);
* **sort-based grouping**: ``group_by(...).reduce(...)`` sorts each
  partition and merges runs, like Flink's combiner (paper §VI-A);
* **native iterations**: :meth:`LocalDataSet.iterate` (bulk) evaluates
  a step function without rebuilding the plan per round, and
  :meth:`LocalDataSet.iterate_delta` maintains a solution set updated
  from a shrinking workset (paper §II-C) — the environment records the
  workset size per superstep so tests can verify it decreases.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from typing import (Callable, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Tuple)

from .partitions import hash_partitioner, split_evenly

__all__ = ["LocalEnvironment", "LocalDataSet"]


class LocalEnvironment:
    """Execution environment; owns counters the tests observe."""

    def __init__(self, parallelism: int = 4) -> None:
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        self.parallelism = parallelism
        self.materializations = 0
        self.shuffled_records = 0
        self.supersteps = 0
        self.workset_sizes: List[int] = []

    def from_collection(self, data: Sequence,
                        num_partitions: Optional[int] = None) -> "LocalDataSet":
        parts = split_evenly(list(data), num_partitions or self.parallelism)
        return LocalDataSet(self, lambda: [iter(p) for p in parts],
                            name="fromCollection")

    def read_text(self, lines: Sequence[str]) -> "LocalDataSet":
        return self.from_collection(list(lines))


class LocalDataSet:
    """A pipelined dataset: partitions of lazily-chained iterators."""

    def __init__(self, env: LocalEnvironment,
                 sources: Callable[[], List[Iterator]],
                 name: str = "dataset") -> None:
        self.env = env
        self._sources = sources
        self.name = name

    # ------------------------------------------------------------------
    # chained (pipelined) operators: no materialisation
    # ------------------------------------------------------------------
    def _chain(self, wrap: Callable[[Iterator], Iterator],
               name: str) -> "LocalDataSet":
        parent = self

        def sources() -> List[Iterator]:
            return [wrap(src) for src in parent._sources()]

        return LocalDataSet(self.env, sources, name=name)

    def map(self, fn: Callable) -> "LocalDataSet":
        return self._chain(lambda it: (fn(x) for x in it), "Map")

    def flat_map(self, fn: Callable) -> "LocalDataSet":
        return self._chain(
            lambda it: (y for x in it for y in fn(x)), "FlatMap")

    def filter(self, pred: Callable) -> "LocalDataSet":
        return self._chain(lambda it: (x for x in it if pred(x)), "Filter")

    # ------------------------------------------------------------------
    # grouping / repartitioning (pipelined across the boundary, but the
    # grouping itself is sort-based per receiving partition)
    # ------------------------------------------------------------------
    def _repartition(self, key_fn: Callable, num_partitions: int
                     ) -> List[List]:
        part = hash_partitioner(num_partitions)
        buckets: List[List] = [[] for _ in range(num_partitions)]
        for src in self._sources():
            for x in src:
                buckets[part(key_fn(x))].append(x)
                self.env.shuffled_records += 1
        return buckets

    def group_by(self, key_fn: Callable) -> "GroupedDataSet":
        return GroupedDataSet(self, key_fn)

    def union(self, other: "LocalDataSet") -> "LocalDataSet":
        parent = self

        def sources() -> List[Iterator]:
            return parent._sources() + other._sources()

        return LocalDataSet(self.env, sources, name="Union")

    def with_broadcast_set(self, name: str,
                           data: "LocalDataSet") -> "BroadcastedDataSet":
        """Attach a broadcast DataSet, readable inside rich functions
        via ``ctx[name]`` (Flink's ``withBroadcastSet``)."""
        return BroadcastedDataSet(self, {name: data})

    def reduce(self, fn: Callable) -> "LocalDataSet":
        """Full (non-grouped) reduce to a single element."""
        parent = self

        def sources() -> List[Iterator]:
            items = [x for src in parent._sources() for x in src]
            if not items:
                return [iter([])]
            acc = items[0]
            for x in items[1:]:
                acc = fn(acc, x)
            return [iter([acc])]

        return LocalDataSet(self.env, sources, name="Reduce")

    def first(self, n: int) -> "LocalDataSet":
        if n < 0:
            raise ValueError("n must be >= 0")
        parent = self

        def sources() -> List[Iterator]:
            out: List = []
            for src in parent._sources():
                for x in src:
                    if len(out) == n:
                        return [iter(out)]
                    out.append(x)
            return [iter(out)]

        return LocalDataSet(self.env, sources, name="First")

    def distinct(self) -> "LocalDataSet":
        parent = self

        def sources() -> List[Iterator]:
            buckets = parent._repartition(lambda x: x, parent.env.parallelism)
            return [iter(sorted(set(b), key=repr)) for b in buckets]

        return LocalDataSet(self.env, sources, name="Distinct")

    def partition_custom(self, partitioner: Callable[[object], int],
                         key_fn: Callable,
                         num_partitions: int) -> "LocalDataSet":
        parent = self

        def sources() -> List[Iterator]:
            buckets: List[List] = [[] for _ in range(num_partitions)]
            for src in parent._sources():
                for x in src:
                    buckets[partitioner(key_fn(x))].append(x)
                    parent.env.shuffled_records += 1
            return [iter(b) for b in buckets]

        return LocalDataSet(self.env, sources, name="PartitionCustom")

    def sort_partition(self, key_fn: Callable) -> "LocalDataSet":
        parent = self

        def sources() -> List[Iterator]:
            parent.env.materializations += 1  # a sort buffers its input
            return [iter(sorted(src, key=key_fn))
                    for src in parent._sources()]

        return LocalDataSet(self.env, sources, name="SortPartition")

    def join(self, other: "LocalDataSet", left_key: Callable,
             right_key: Callable) -> "LocalDataSet":
        parent = self

        def sources() -> List[Iterator]:
            n = parent.env.parallelism
            left = parent._repartition(left_key, n)
            right = other._repartition(right_key, n)
            outs = []
            for lb, rb in zip(left, right):
                lmap: Dict = defaultdict(list)
                for x in lb:
                    lmap[left_key(x)].append(x)
                joined = [(lv, rv) for rv in rb
                          for lv in lmap.get(right_key(rv), ())]
                outs.append(iter(joined))
            return outs

        return LocalDataSet(self.env, sources, name="Join")

    def co_group(self, other: "LocalDataSet", left_key: Callable,
                 right_key: Callable,
                 fn: Callable[[List, List], Iterable]) -> "LocalDataSet":
        parent = self

        def sources() -> List[Iterator]:
            n = parent.env.parallelism
            left = parent._repartition(left_key, n)
            right = other._repartition(right_key, n)
            outs = []
            for lb, rb in zip(left, right):
                lmap: Dict = defaultdict(list)
                rmap: Dict = defaultdict(list)
                for x in lb:
                    lmap[left_key(x)].append(x)
                for y in rb:
                    rmap[right_key(y)].append(y)
                keys = set(lmap) | set(rmap)
                out: List = []
                for k in sorted(keys, key=repr):
                    out.extend(fn(lmap.get(k, []), rmap.get(k, [])))
                outs.append(iter(out))
            return outs

        return LocalDataSet(self.env, sources, name="CoGroup")

    # ------------------------------------------------------------------
    # native iterations
    # ------------------------------------------------------------------
    def iterate(self, num_iterations: int,
                step: Callable[["LocalDataSet"], "LocalDataSet"]
                ) -> "LocalDataSet":
        """Bulk iteration: feed the step function's output back as the
        next superstep's input, ``num_iterations`` times."""
        if num_iterations < 0:
            raise ValueError("num_iterations must be >= 0")
        current = self
        for _ in range(num_iterations):
            self.env.supersteps += 1
            materialised = current.collect()
            current = self.env.from_collection(materialised)
            current = step(current)
        return current

    def iterate_delta(self, workset: "LocalDataSet", num_iterations: int,
                      key_fn: Callable,
                      step: Callable[[Dict, List], List]) -> "LocalDataSet":
        """Delta iteration over a keyed solution set.

        ``step(solution, workset_items) -> deltas`` returns the items
        that *changed*; they update the solution set and form the next
        workset.  Terminates early when the workset empties — "the work
        in each iteration decreases as the number of iterations goes
        on" (paper §II-C).
        """
        solution: Dict = {key_fn(x): x for x in self.collect()}
        work: List = workset.collect()
        for _ in range(num_iterations):
            if not work:
                break
            self.env.supersteps += 1
            self.env.workset_sizes.append(len(work))
            deltas = step(solution, work)
            changed = []
            for item in deltas:
                k = key_fn(item)
                if solution.get(k) != item:
                    solution[k] = item
                    changed.append(item)
            work = changed
        return self.env.from_collection(list(solution.values()))

    # ------------------------------------------------------------------
    # sinks / actions
    # ------------------------------------------------------------------
    def collect(self) -> List:
        self.env.materializations += 1
        return [x for src in self._sources() for x in src]

    def count(self) -> int:
        # Flink 0.10 really did funnel records to count them.
        return len(self.collect())

    def write_as_text(self, sink: List[str]) -> None:
        sink.extend(str(x) for x in self.collect())

    def __repr__(self) -> str:
        return f"LocalDataSet({self.name})"


class BroadcastedDataSet:
    """A DataSet plus named broadcast sets for its rich functions."""

    def __init__(self, dataset: LocalDataSet,
                 broadcasts: Dict[str, LocalDataSet]) -> None:
        self.dataset = dataset
        self.broadcasts = broadcasts

    def map_with_context(self, fn: Callable) -> LocalDataSet:
        """``fn(record, context)`` where context maps broadcast names to
        their materialised contents."""
        parent = self

        def sources() -> List[Iterator]:
            context = {name: ds.collect()
                       for name, ds in parent.broadcasts.items()}
            return [(fn(x, context) for x in src)
                    for src in parent.dataset._sources()]

        return LocalDataSet(self.dataset.env, sources, name="RichMap")


class GroupedDataSet:
    """Result of ``group_by``: sort-based grouped aggregation."""

    def __init__(self, dataset: LocalDataSet, key_fn: Callable) -> None:
        self.dataset = dataset
        self.key_fn = key_fn

    def _grouped_partitions(self) -> List[List[Tuple[object, List]]]:
        env = self.dataset.env
        buckets = self.dataset._repartition(self.key_fn, env.parallelism)
        outs = []
        for b in buckets:
            # Sort-based grouping: sort the partition by key, then scan
            # runs — exactly the combiner strategy the paper credits.
            b.sort(key=lambda x: repr(self.key_fn(x)))
            groups: List[Tuple[object, List]] = []
            for k, run in itertools.groupby(b, key=self.key_fn):
                groups.append((k, list(run)))
            outs.append(groups)
        return outs

    def reduce(self, fn: Callable) -> LocalDataSet:
        parent = self

        def sources() -> List[Iterator]:
            outs = []
            for groups in parent._grouped_partitions():
                reduced = []
                for _k, items in groups:
                    acc = items[0]
                    for x in items[1:]:
                        acc = fn(acc, x)
                    reduced.append(acc)
                outs.append(iter(reduced))
            return outs

        return LocalDataSet(self.dataset.env, sources, name="GroupReduce")

    def sum(self, value_fn: Callable, rebuild: Callable) -> LocalDataSet:
        """Aggregate each group by summing ``value_fn`` over its items,
        rebuilding records with ``rebuild(key, total)``."""
        parent = self

        def sources() -> List[Iterator]:
            outs = []
            for groups in parent._grouped_partitions():
                outs.append(iter([rebuild(k, sum(value_fn(x) for x in items))
                                  for k, items in groups]))
            return outs

        return LocalDataSet(self.dataset.env, sources, name="GroupSum")
