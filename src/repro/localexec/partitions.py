"""Partitioning primitives shared by the two local mini-engines.

These are *real* (executable) counterparts of the partitioners the
paper's workloads use: hash partitioning for keyed shuffles and a
TotalOrderPartitioner-style range partitioner for Tera Sort.
"""

from __future__ import annotations

import bisect
from typing import Callable, Iterable, List, Sequence, TypeVar

K = TypeVar("K")
V = TypeVar("V")

__all__ = ["hash_partitioner", "range_partitioner", "split_evenly",
           "merge_sorted"]


def hash_partitioner(num_partitions: int) -> Callable[[object], int]:
    """Deterministic hash partitioner (Python's hash is seeded per
    process for str; use a stable fold instead)."""
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")

    def part(key: object) -> int:
        return _stable_hash(key) % num_partitions

    return part


def _stable_hash(key: object) -> int:
    if isinstance(key, str):
        h = 5381
        for ch in key:
            h = ((h * 33) ^ ord(ch)) & 0x7FFFFFFF
        return h
    if isinstance(key, bytes):
        h = 5381
        for b in key:
            h = ((h * 33) ^ b) & 0x7FFFFFFF
        return h
    if isinstance(key, int):
        return key & 0x7FFFFFFF
    if isinstance(key, tuple):
        h = 2166136261
        for item in key:
            h = (h ^ _stable_hash(item)) * 16777619 & 0x7FFFFFFF
        return h
    return hash(key) & 0x7FFFFFFF


def range_partitioner(boundaries: Sequence) -> Callable[[object], int]:
    """TotalOrderPartitioner: partition ``i`` gets keys in
    ``(boundaries[i-1], boundaries[i]]``; ascending partition index
    yields a globally sorted concatenation."""
    bounds = list(boundaries)
    if bounds != sorted(bounds):
        raise ValueError("boundaries must be sorted")

    def part(key: object) -> int:
        return bisect.bisect_left(bounds, key)

    return part


def split_evenly(items: Sequence, num_partitions: int) -> List[List]:
    """Deal a sequence into ``num_partitions`` contiguous slices."""
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    n = len(items)
    out = []
    for i in range(num_partitions):
        lo = i * n // num_partitions
        hi = (i + 1) * n // num_partitions
        out.append(list(items[lo:hi]))
    return out


def merge_sorted(partitions: Iterable[Sequence]) -> List:
    """Concatenate partitions in index order (valid after a range
    partition + per-partition sort)."""
    out: List = []
    for p in partitions:
        out.extend(p)
    return out
