"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show the available workloads, figure experiments and presets.
``run``
    Run one workload on one engine at a given scale and print the
    correlated figure (plan + resource panels).
``figure``
    Regenerate one of the paper's figures (fig01..fig17).
``table7``
    Regenerate Table VII (the Large-graph grid).
``explain``
    Print both engines' physical plans for a workload without running.
``faults``
    Inject a node crash mid-run and report each engine's recovery cost:
    ``--mode simulate`` replays the failure inside the simulation
    (task re-execution for Spark, full pipeline restart for Flink),
    ``--mode estimate`` uses the fast analytic lineage/restart model,
    ``--mode both`` prints them side by side.
``trace``
    Run a workload with the span tracer attached and report the
    critical path plus each stage's dominant resource; ``--out DIR``
    additionally writes a ``chrome://tracing`` JSON and span /
    critical-path CSVs per engine.
``resilience``
    Run the stochastic resilience campaign (``fig19``): seeded
    Poisson/MTTF fault arrivals per node, optional persistent
    stragglers, slowdown and availability versus fault rate for both
    engines.  ``--checkpoint DIR`` journals every finished cell so a
    killed campaign resumes bit-identically with ``--resume``; cells
    that crash or time out become explicit gaps (non-zero exit only
    under ``--strict``).
``streaming``
    Run the executed streaming engines (continuous-operator vs
    micro-batch D-Streams on the fluid kernel): the latency-vs-load
    sweep (``fig20``, Poisson + bursty MMPP arrivals) or, with
    ``--recovery``, the recovery-time-vs-checkpoint-interval sweep
    (``fig21``, node crash mid-run), or, with ``--degrade``, the
    overload-survival sweep (``fig22``: load multiples of the
    stability boundary x stochastic fault rates x degradation
    policies — restart strategies, load shedding, adaptive batching).
    Checkpointable and resumable like ``resilience``.
``tenancy``
    Run the multi-tenant scheduling campaign (``fig23``): a seeded
    Poisson mix of Spark and Flink jobs shares one cluster under a
    queue policy (``fifo`` / ``fair`` / ``capacity``) with quotas,
    admission control and engine-faithful preemption (Spark lineage
    re-execution vs Flink restart); reports per-policy job slowdown,
    queue wait vs utilization and Jain fairness vs offered load.
    Checkpointable and resumable like ``resilience``.
``validate``
    Self-check the simulator: run the replay scenarios under strict
    invariant checking; with ``--replay``, also compare their trace
    digests against the goldens in ``tests/golden/``.

``run``, ``figure`` and ``table7`` accept ``--strict``: the run attaches
an invariant checker and fails loudly on any violation.

Examples
--------
python -m repro run --engine flink --workload wordcount --nodes 8
python -m repro figure fig04 --trials 3 --strict
python -m repro explain --workload terasort --nodes 17
python -m repro table7 --nodes 97
python -m repro faults --workload wordcount --nodes 4 --fail-at 0.5
python -m repro faults --workload terasort --nodes 4 --mode both --strict
python -m repro trace --workload wordcount --nodes 8 --out traces/
python -m repro resilience --rates 0 0.5 1 2 --trials 3 \\
    --checkpoint runs/fig19 --resume
python -m repro streaming --loads 0.3 0.6 0.9
python -m repro streaming --recovery --crash-at 23 \\
    --checkpoint runs/fig21 --resume
python -m repro streaming --degrade --load-multiples 1.0 1.5 2.0 \\
    --fault-rates 0 0.5 --checkpoint runs/fig22 --resume
python -m repro tenancy --policies fifo fair --loads 0.3 0.6 0.9 \\
    --checkpoint runs/fig23 --resume
python -m repro validate --replay
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .cluster import Cluster
from .config.presets import (ExperimentConfig, kmeans_preset,
                             small_graph_preset, terasort_preset,
                             wordcount_grep_preset)
from .core import render_bar_table, render_run
from .harness import figures as figure_registry
from .harness.runner import run_correlated
from .hdfs import HDFS
from .workloads import (ConnectedComponents, Grep, KMeans, PageRank,
                        TeraSort, WordCount)
from .workloads.datagen.graphs import (LARGE_GRAPH, MEDIUM_GRAPH,
                                       SMALL_GRAPH)

__all__ = ["main", "build_workload", "build_config", "WORKLOADS",
           "FIGURES"]

GiB = float(2**30)

WORKLOADS = ["wordcount", "grep", "terasort", "kmeans", "pagerank",
             "connected-components"]

FIGURES = {
    "fig01": figure_registry.fig01_wordcount_weak,
    "fig02": figure_registry.fig02_wordcount_strong,
    "fig04": figure_registry.fig04_grep_weak,
    "fig05": figure_registry.fig05_grep_strong,
    "fig07": figure_registry.fig07_terasort_weak,
    "fig08": figure_registry.fig08_terasort_strong,
    "fig11": figure_registry.fig11_kmeans_scaling,
    "fig12": figure_registry.fig12_pagerank_small,
    "fig13": figure_registry.fig13_pagerank_medium,
    "fig14": figure_registry.fig14_cc_small,
    "fig15": figure_registry.fig15_cc_medium,
}

RESOURCE_FIGURES = {
    "fig03": figure_registry.fig03_wordcount_resources,
    "fig06": figure_registry.fig06_grep_resources,
    "fig09": figure_registry.fig09_terasort_resources,
    "fig10": figure_registry.fig10_kmeans_resources,
    "fig16": figure_registry.fig16_pagerank_resources,
    "fig17": figure_registry.fig17_cc_resources,
}


def build_config(workload: str, nodes: int) -> ExperimentConfig:
    """The paper's preset for a workload at a scale."""
    if workload in ("wordcount", "grep"):
        return wordcount_grep_preset(nodes)
    if workload == "terasort":
        return terasort_preset(nodes)
    if workload == "kmeans":
        return kmeans_preset(nodes)
    if workload in ("pagerank", "connected-components"):
        return small_graph_preset(nodes)
    raise ValueError(f"unknown workload {workload!r}")


def build_workload(name: str, nodes: int, graph: str = "small",
                   iterations: Optional[int] = None):
    """Instantiate a workload at its paper scale for ``nodes``."""
    cfg = build_config(name, nodes)
    graphs = {"small": SMALL_GRAPH, "medium": MEDIUM_GRAPH,
              "large": LARGE_GRAPH}
    if name == "wordcount":
        return WordCount(nodes * 24 * GiB)
    if name == "grep":
        return Grep(nodes * 24 * GiB)
    if name == "terasort":
        return TeraSort(nodes * 32 * GiB,
                        num_partitions=cfg.flink.default_parallelism)
    if name == "kmeans":
        return KMeans(51 * GiB, iterations=iterations or 10)
    if name == "pagerank":
        return PageRank(graphs[graph], iterations=iterations or 20,
                        edge_partitions=cfg.spark.edge_partitions)
    if name == "connected-components":
        return ConnectedComponents(graphs[graph],
                                   iterations=iterations or 23,
                                   edge_partitions=cfg.spark.edge_partitions)
    raise ValueError(f"unknown workload {name!r}")


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def cmd_list(_args) -> int:
    print("workloads:", ", ".join(WORKLOADS))
    print("scaling figures:", ", ".join(sorted(FIGURES)))
    print("resource figures:", ", ".join(sorted(RESOURCE_FIGURES)))
    print("fault figures: fig18")
    print("resilience figures: fig19")
    print("streaming figures: fig20 fig21 fig22")
    print("tenancy figures: fig23")
    print("tables: table7")
    return 0


def _open_checkpoint(args, fingerprint):
    """Build the CheckpointStore for ``--checkpoint DIR [--resume]``
    (None when the flag is absent)."""
    if getattr(args, "checkpoint", None) is None:
        if getattr(args, "resume", False):
            print("error: --resume requires --checkpoint DIR",
                  file=sys.stderr)
            raise SystemExit(2)
        return None
    from .harness.checkpoint import CheckpointStore
    return CheckpointStore(args.checkpoint, fingerprint,
                           resume=args.resume)


def cmd_run(args) -> int:
    workload = build_workload(args.workload, args.nodes, graph=args.graph,
                              iterations=args.iterations)
    config = build_config(args.workload, args.nodes)
    run = run_correlated(args.engine, workload, config, seed=args.seed,
                         strict=args.strict or None)
    print(render_run(run))
    print()
    print(f"bottleneck: {', '.join(run.bottleneck(threshold=40))}")
    return 0


def cmd_figure(args) -> int:
    fig_id = args.id
    strict = args.strict or None
    if fig_id in FIGURES:
        checkpoint = _open_checkpoint(
            args, {"figure_id": fig_id, "trials": args.trials,
                   "seed": args.seed})
        fig = FIGURES[fig_id](trials=args.trials, seed=args.seed,
                              strict=strict, jobs=args.jobs,
                              checkpoint=checkpoint)
        if checkpoint is not None:
            checkpoint.close()
        print(render_bar_table(fig.series.values(), title=fig.title))
        return 0
    if fig_id in RESOURCE_FIGURES:
        if getattr(args, "checkpoint", None):
            print("error: resource figures journal whole correlated "
                  "runs and are not checkpointable; rerun without "
                  "--checkpoint", file=sys.stderr)
            return 2
        fig = RESOURCE_FIGURES[fig_id](seed=args.seed, strict=strict,
                                       jobs=args.jobs)
        for run in fig.runs.values():
            print(render_run(run))
            print()
        return 0
    if fig_id == "fig19":
        from .resilience import campaign_fingerprint
        from .resilience.sweep import ENGINES as RES_ENGINES
        checkpoint = _open_checkpoint(args, campaign_fingerprint(
            "fig19", RES_ENGINES, WORKLOADS, (0.0, 0.5, 1.0, 2.0),
            args.trials, 8, args.seed))
        fig = figure_registry.fig19_resilience(
            seed=args.seed, trials=args.trials, strict=strict,
            jobs=args.jobs, checkpoint=checkpoint)
        if checkpoint is not None:
            checkpoint.close()
        print(fig.describe())
        return 1 if (fig.gaps and args.strict) else 0
    if fig_id == "fig22":
        from .streaming.sweep import (DEFAULT_FAULT_RATES,
                                      DEFAULT_LOAD_MULTIPLES,
                                      STREAMING_ENGINES,
                                      degradation_campaign_fingerprint)
        checkpoint = _open_checkpoint(args, degradation_campaign_fingerprint(
            "fig22", STREAMING_ENGINES, DEFAULT_LOAD_MULTIPLES,
            DEFAULT_FAULT_RATES, ("none", "degrade"), 8, args.seed,
            40.0, 1.0))
        fig = figure_registry.fig22_degradation(
            seed=args.seed, strict=strict, jobs=args.jobs,
            checkpoint=checkpoint)
        if checkpoint is not None:
            checkpoint.close()
        print(fig.describe())
        return 1 if (fig.gaps and args.strict) else 0
    if fig_id == "fig23":
        from .scheduler.sweep import (DEFAULT_JOBS_TARGET, DEFAULT_LOADS,
                                      DEFAULT_POLICIES, default_templates,
                                      tenancy_campaign_fingerprint)
        checkpoint = _open_checkpoint(args, tenancy_campaign_fingerprint(
            "fig23", DEFAULT_POLICIES, DEFAULT_LOADS, args.trials, 8,
            args.seed, 0.0, DEFAULT_JOBS_TARGET,
            [t.name for t in default_templates(8)]))
        fig = figure_registry.fig23_tenancy(
            seed=args.seed, trials=args.trials, strict=strict,
            jobs=args.jobs, checkpoint=checkpoint)
        if checkpoint is not None:
            checkpoint.close()
        print(fig.describe())
        return 1 if (fig.gaps and args.strict) else 0
    if fig_id in ("fig20", "fig21"):
        from .streaming.sweep import (ARRIVAL_KINDS,
                                      DEFAULT_CHECKPOINT_INTERVALS,
                                      DEFAULT_DURATION,
                                      DEFAULT_LOAD_FRACTIONS,
                                      FIG21_CRASH_AT, FIG21_LOAD_FRACTION,
                                      STREAMING_ENGINES,
                                      streaming_campaign_fingerprint)
        if fig_id == "fig20":
            fingerprint = streaming_campaign_fingerprint(
                "fig20", STREAMING_ENGINES, ARRIVAL_KINDS,
                DEFAULT_LOAD_FRACTIONS, None, 8, args.seed,
                DEFAULT_DURATION, 1.0, None)
        else:
            fingerprint = streaming_campaign_fingerprint(
                "fig21", STREAMING_ENGINES, ("poisson",),
                (FIG21_LOAD_FRACTION,), DEFAULT_CHECKPOINT_INTERVALS, 8,
                args.seed, DEFAULT_DURATION, 1.0, FIG21_CRASH_AT)
        checkpoint = _open_checkpoint(args, fingerprint)
        maker = (figure_registry.fig20_streaming_latency
                 if fig_id == "fig20"
                 else figure_registry.fig21_streaming_recovery)
        fig = maker(seed=args.seed, strict=strict, jobs=args.jobs,
                    checkpoint=checkpoint)
        if checkpoint is not None:
            checkpoint.close()
        print(fig.describe())
        return 1 if (fig.gaps and args.strict) else 0
    if fig_id == "fig18":
        fig = figure_registry.fig18_fault_recovery(seed=args.seed,
                                                   strict=strict,
                                                   jobs=args.jobs)
        print(fig.title)
        for c in fig.cells:
            if not c.success:
                print(f"  {c.engine:5s} {c.workload:10s} "
                      f"fail@{c.fail_at_fraction:.2f}: FAILED ({c.failure})")
                continue
            print(f"  {c.engine:5s} {c.workload:10s} "
                  f"fail@{c.fail_at_fraction:.2f}: "
                  f"{c.baseline_seconds:6.1f}s -> sim "
                  f"{c.simulated_seconds:6.1f}s / analytic "
                  f"{c.analytic_seconds:6.1f}s "
                  f"({c.retries} retries, {c.restarts} restarts)")
        return 0
    known = (sorted(FIGURES) + sorted(RESOURCE_FIGURES)
             + ["fig18", "fig19", "fig20", "fig21", "fig22", "fig23"])
    print(f"unknown figure {fig_id!r}; try one of {known}",
          file=sys.stderr)
    return 2


def cmd_resilience(args) -> int:
    from .resilience import campaign_fingerprint
    from .resilience.sweep import default_workloads, resilience_sweep
    workloads = default_workloads(args.nodes)
    if args.workloads:
        wanted = set(args.workloads)
        workloads = [w for w in workloads if w[0] in wanted]
    names = [name for name, _w, _c in workloads]
    checkpoint = _open_checkpoint(args, campaign_fingerprint(
        "fig19", args.engines, names, args.rates, args.trials,
        args.nodes, args.seed, args.stragglers))
    fig = resilience_sweep(
        workloads=workloads, engines=args.engines, rates=args.rates,
        trials=args.trials, nodes=args.nodes, seed=args.seed,
        stragglers=args.stragglers, strict=args.strict or None,
        jobs=args.jobs, timeout=args.timeout, retries=args.retries,
        backoff=args.task_backoff, checkpoint=checkpoint)
    if checkpoint is not None:
        checkpoint.close()
    print(fig.describe())
    if fig.gaps:
        print(f"{len(fig.gaps)} cell(s) missing (worker crash/"
              f"timeout); rerun with --checkpoint/--resume to fill "
              f"them in", file=sys.stderr)
        if args.strict:
            return 1
    return 0


def cmd_streaming(args) -> int:
    from .streaming.sweep import (degradation_campaign_fingerprint,
                                  degradation_sweep,
                                  streaming_campaign_fingerprint,
                                  streaming_sweep)
    if args.degrade and args.recovery:
        print("--degrade and --recovery are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.degrade:
        multiples = tuple(args.load_multiples)
        rates = tuple(args.fault_rates)
        policies = tuple(args.policies)
        checkpoint = _open_checkpoint(args, degradation_campaign_fingerprint(
            "fig22", args.engines, multiples, rates, policies, args.nodes,
            args.seed, args.duration, args.batch_interval))
        fig = degradation_sweep(
            figure_id="fig22", engines=args.engines,
            load_multiples=multiples, fault_rates=rates,
            policies=policies, nodes=args.nodes, seed=args.seed,
            duration=args.duration, batch_interval=args.batch_interval,
            strict=args.strict or None, jobs=args.jobs,
            timeout=args.timeout, retries=args.retries,
            backoff=args.task_backoff, checkpoint=checkpoint)
        if checkpoint is not None:
            checkpoint.close()
        print(fig.describe())
        if fig.gaps:
            print(f"{len(fig.gaps)} cell(s) missing (worker crash/"
                  f"timeout); rerun with --checkpoint/--resume to fill "
                  f"them in", file=sys.stderr)
            if args.strict:
                return 1
        return 0
    if args.recovery:
        figure_id = "fig21"
        kinds = ("poisson",)
        fractions = (args.load,)
        intervals = tuple(args.checkpoint_intervals)
        crash_at = args.crash_at
    else:
        figure_id = "fig20"
        kinds = tuple(args.arrivals)
        fractions = tuple(args.loads)
        intervals = None
        crash_at = None
    checkpoint = _open_checkpoint(args, streaming_campaign_fingerprint(
        figure_id, args.engines, kinds, fractions, intervals, args.nodes,
        args.seed, args.duration, args.batch_interval, crash_at))
    fig = streaming_sweep(
        figure_id=figure_id, engines=args.engines, arrival_kinds=kinds,
        load_fractions=fractions, checkpoint_intervals=intervals,
        nodes=args.nodes, seed=args.seed, duration=args.duration,
        batch_interval=args.batch_interval, crash_at=crash_at,
        strict=args.strict or None, jobs=args.jobs, timeout=args.timeout,
        retries=args.retries, backoff=args.task_backoff,
        checkpoint=checkpoint)
    if checkpoint is not None:
        checkpoint.close()
    print(fig.describe())
    if fig.gaps:
        print(f"{len(fig.gaps)} cell(s) missing (worker crash/timeout); "
              f"rerun with --checkpoint/--resume to fill them in",
              file=sys.stderr)
        if args.strict:
            return 1
    return 0


def cmd_tenancy(args) -> int:
    from .scheduler.sweep import (default_queues, default_templates,
                                  tenancy_campaign_fingerprint,
                                  tenancy_sweep)
    policies = tuple(args.policies)
    loads = tuple(args.loads)
    nodes = args.nodes
    jobs_target = args.jobs_per_cell
    if args.quick:
        nodes = min(nodes, 4)
        loads = (0.5, 0.9)
        jobs_target = min(jobs_target, 6)
    templates = default_templates(nodes)
    checkpoint = _open_checkpoint(args, tenancy_campaign_fingerprint(
        "fig23", policies, loads, args.trials, nodes, args.seed,
        args.crash_rate, jobs_target, [t.name for t in templates]))
    fig = tenancy_sweep(
        policies=policies, loads=loads, trials=args.trials, nodes=nodes,
        seed=args.seed, jobs_target=jobs_target,
        crash_rate=args.crash_rate, templates=templates,
        queues=default_queues(nodes), strict=args.strict or None,
        jobs=args.jobs, timeout=args.timeout, retries=args.retries,
        backoff=args.task_backoff, checkpoint=checkpoint)
    if checkpoint is not None:
        checkpoint.close()
    print(fig.describe())
    if fig.gaps:
        print(f"{len(fig.gaps)} cell(s) missing (worker crash/timeout); "
              f"rerun with --checkpoint/--resume to fill them in",
              file=sys.stderr)
        if args.strict:
            return 1
    return 0


def cmd_serve(args) -> int:
    import asyncio
    from .serve import AdvisorService
    store = None
    if args.cache:
        from .harness.checkpoint import CheckpointStore
        store = CheckpointStore(
            args.cache, {"campaign": "serve-cache", "version": 1},
            resume=True, on_corrupt="quarantine")
        if store.quarantined_keys:
            print(f"cache journal: quarantined "
                  f"{len(store.quarantined_keys)} corrupt record(s)",
                  file=sys.stderr)

    async def run() -> None:
        service = AdvisorService(
            host=args.host, port=args.port, jobs=args.jobs or 2,
            queue_limit=args.queue_limit,
            default_deadline=args.deadline,
            client_timeout=args.client_timeout,
            task_timeout=args.timeout or 30.0, retries=args.retries,
            backoff=args.task_backoff,
            breaker_threshold=args.breaker_threshold,
            breaker_reset=args.breaker_reset,
            drain_grace=args.drain_grace, cache_store=store)
        await service.start()
        service.install_signal_handlers()
        print(f"repro serve listening on "
              f"http://{service.host}:{service.port} "
              f"(workers={service.pool.jobs}, "
              f"queue_limit={service.queue_limit})", flush=True)
        await service.serve_forever()
        print(f"drained; {service.ledger.describe()}", flush=True)

    asyncio.run(run())
    return 0


def cmd_plan(args) -> int:
    import json as _json
    from .serve import CapacityQuery, PlanError, plan_capacity_sync
    try:
        query = CapacityQuery(
            workload=args.workload, slo_seconds=args.slo,
            engines=tuple(args.engines),
            nodes_candidates=tuple(args.nodes_candidates),
            seed=args.seed, data_scale=args.data_scale)
    except PlanError as exc:
        print(f"invalid query: {exc}", file=sys.stderr)
        return 2
    payload = plan_capacity_sync(
        query, jobs=args.jobs, timeout=args.timeout,
        retries=args.retries, backoff=args.task_backoff)
    if args.json:
        print(_json.dumps(payload, indent=2, sort_keys=True))
        return 0 if payload["answer"]["feasible"] else 1
    answer = payload["answer"]
    print(f"query {payload['query_digest'][:12]}: {args.workload} "
          f"under {args.slo:g}s SLO "
          f"({len(payload['cells'])} candidate(s) considered)")
    for cell in payload["cells"]:
        result = cell["result"]
        verdict = (f"{result['duration']:.1f}s" if result["duration"]
                   is not None else f"infeasible ({result['reason']})")
        overrides = ", ".join(f"{k}={v}" for k, v in
                              cell["candidate"]["overrides"].items())
        print(f"  {cell['candidate']['engine']:>5} x "
              f"{cell['candidate']['nodes']:>3} nodes"
              + (f" [{overrides}]" if overrides else "")
              + f": {verdict}")
    if not answer["feasible"]:
        print(f"no feasible configuration: {answer['reason']}")
        return 1
    overrides = ", ".join(f"{k}={v}" for k, v in
                          answer["overrides"].items()) or "preset"
    print(f"answer: {answer['engine']} x {answer['nodes']} nodes "
          f"({overrides}) -> {answer['duration']:.1f}s "
          f"({answer['headroom_seconds']:.1f}s headroom) "
          f"[{payload['answer_digest'][:12]}]")
    return 0


def cmd_faults(args) -> int:
    from .faults import (FaultPlan, FlinkRestartPolicy, RetryPolicy,
                         run_with_faults)
    from .harness.faults import run_with_failure
    from .harness.runner import run_once
    workload = build_workload(args.workload, args.nodes, graph=args.graph)
    config = build_config(args.workload, args.nodes)
    strict = args.strict or None
    status = 0
    for engine in args.engines:
        if args.mode in ("estimate", "both"):
            estimate = run_with_failure(engine, workload, config,
                                        fail_at_fraction=args.fail_at,
                                        seed=args.seed)
            print(f"estimate  {estimate.describe()}")
        if args.mode in ("simulate", "both"):
            restart_after = (None if args.restart_after < 0
                             else args.restart_after)
            plan = FaultPlan.single_crash(args.fail_at, node=args.crash_node,
                                          restart_after=restart_after)
            faulted = run_with_faults(
                engine, workload, config, plan, seed=args.seed,
                retry_policy=RetryPolicy(backoff=args.backoff),
                restart_policy=FlinkRestartPolicy(
                    restart_delay=args.restart_delay),
                strict=strict)
            print(f"simulated {faulted.describe()}")
            if args.timeline:
                print(faulted.timeline.describe())
            if not faulted.success:
                status = 1
    return status


def _render_trace(traced) -> str:
    """Human-readable critical-path + attribution report for one run."""
    res = traced.result
    tree = traced.tree
    path = traced.critical_path
    lines = [
        f"{res.engine}/{res.workload} x{res.nodes}: {res.duration:.1f}s, "
        f"{len(tree)} spans ({len(tree.of_kind('stage'))} stages, "
        f"{len(tree.of_kind('operator'))} operators, "
        f"{len(tree.of_kind('task'))} tasks)",
        f"critical path: {path.length:.1f}s across "
        f"{len(path.segments)} segments (makespan {path.makespan:.1f}s)",
    ]
    for seg in path.top_contributors(5):
        share = (100.0 * seg.duration / path.makespan
                 if path.makespan > 0 else 0.0)
        lines.append(f"  {share:5.1f}%  {seg.kind:8s} {seg.name}")
    lines.append("stage attribution:")
    for span in tree.of_kind("stage"):
        attr = traced.attribution.get(span.id)
        dom = ("+".join(attr.dominant_resources())
               if attr is not None else "?")
        it = f" (iter {span.iteration})" if span.iteration else ""
        lines.append(f"  [{span.start:8.1f}s - {span.end:8.1f}s] "
                     f"{dom:12s} {span.name}{it}")
    return "\n".join(lines)


def cmd_trace(args) -> int:
    import json
    import pathlib

    from .harness.parallel import parallel_map
    from .harness.runner import run_traced
    from .observability import (chrome_trace_payload, critical_path_csv,
                                spans_csv)
    workload = build_workload(args.workload, args.nodes, graph=args.graph,
                              iterations=args.iterations)
    config = build_config(args.workload, args.nodes)
    strict = args.strict or None
    # Engines fan out like any other independent runs; results return
    # in submission order, so the report (and any exported files) are
    # bit-identical at every --jobs value.
    tasks = [(engine, workload, config, args.seed, strict)
             for engine in args.engines]
    traced_runs = parallel_map(run_traced, tasks, jobs=args.jobs)
    for engine, traced in zip(args.engines, traced_runs):
        print(_render_trace(traced))
        if args.out:
            outdir = pathlib.Path(args.out)
            outdir.mkdir(parents=True, exist_ok=True)
            stem = f"trace-{args.workload}-{engine}-{args.nodes}n"
            payload = chrome_trace_payload(
                traced.tree, traced.attribution,
                label=f"{engine}/{args.workload}")
            (outdir / f"{stem}.json").write_text(
                json.dumps(payload, sort_keys=True, indent=1))
            (outdir / f"{stem}-spans.csv").write_text(
                spans_csv(traced.tree, traced.attribution))
            (outdir / f"{stem}-critical-path.csv").write_text(
                critical_path_csv(traced.critical_path))
            print(f"wrote {outdir / stem}.json "
                  f"(+ -spans.csv, -critical-path.csv)")
        print()
    return 0


def cmd_table7(args) -> int:
    cells = figure_registry.tab07_large_graph(
        seed=args.seed, node_counts=tuple(args.nodes),
        strict=args.strict or None, jobs=args.jobs)
    print("Table VII - Large graph (Load / Iter seconds; 'no' = failed)")
    for cell in cells:
        status = (f"load {cell.load_seconds:7.0f}s  iter "
                  f"{cell.iter_seconds:7.0f}s" if cell.success else
                  f"no ({cell.failure[:60]})")
        print(f"  {cell.nodes:3d}n {cell.workload} {cell.engine:5s}: "
              f"{status}")
    return 0


def cmd_explain(args) -> int:
    from .engines.flink.engine import FlinkEngine
    from .engines.spark.engine import SparkEngine
    workload = build_workload(args.workload, args.nodes, graph=args.graph)
    config = build_config(args.workload, args.nodes)
    cluster = Cluster(args.nodes)
    hdfs = HDFS(cluster, block_size=config.hdfs_block_size)
    spark = SparkEngine(cluster, hdfs, config.spark)
    flink = FlinkEngine(cluster, hdfs, config.flink)
    for plan in workload.spark_jobs():
        print(spark.explain(plan))
        print()
    for plan in workload.flink_jobs():
        print(flink.explain(plan))
        print()
    return 0


def cmd_validate(args) -> int:
    from .validation import replay
    names = args.scenarios or sorted(replay.SCENARIOS)
    unknown = sorted(set(names) - set(replay.SCENARIOS))
    if unknown:
        print(f"error: unknown scenario(s) {', '.join(unknown)}; "
              f"available: {', '.join(sorted(replay.SCENARIOS))}",
              file=sys.stderr)
        return 2
    if args.update_golden:
        digests = replay.compute_digests(names, seed=args.seed, strict=True)
        path = replay.save_golden(digests, path=args.golden, seed=args.seed)
        for name in sorted(digests):
            print(f"  {name}: {digests[name]}")
        print(f"golden digests written to {path}")
        return 0
    if args.replay:
        problems = replay.verify_replay(names, seed=args.seed, strict=True,
                                        path=args.golden)
        if problems:
            for problem in problems:
                print(f"REPLAY MISMATCH {problem}", file=sys.stderr)
            return 1
        print(f"replay ok: {len(names)} scenario(s) reproduce their "
              f"golden digests under strict invariant checking")
        return 0
    # No --replay: just run the scenarios with invariant checking on.
    for name in names:
        replay.SCENARIOS[name].run(args.seed, True)
        print(f"  {name}: invariants ok")
    print(f"validated {len(names)} scenario(s), zero invariant violations")
    return 0


def cmd_bench(args) -> int:
    from .harness.bench import compare_reports, run_bench, write_report
    if args.compare:
        import json as _json
        path_a, path_b = args.compare
        try:
            with open(path_a, encoding="utf-8") as fh:
                payload_a = _json.load(fh)
            with open(path_b, encoding="utf-8") as fh:
                payload_b = _json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read bench report: {exc}",
                  file=sys.stderr)
            return 1
        print(compare_reports(payload_a, payload_b))
        return 0
    report = run_bench(quick=args.quick, jobs=args.jobs, seed=args.seed,
                       label=args.label, echo=print)
    print(f"{'TOTAL':20s} {report.total_wall_seconds:8.3f}s "
          f"(jobs={report.jobs})")
    path = write_report(report, path=args.out)
    print(f"report written to {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Spark versus Flink' (CLUSTER 2016)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="available workloads and figures")

    p_run = sub.add_parser("run", help="run one workload once")
    p_run.add_argument("--engine", choices=("spark", "flink"),
                       required=True)
    p_run.add_argument("--workload", choices=WORKLOADS, required=True)
    p_run.add_argument("--nodes", type=int, default=8)
    p_run.add_argument("--graph", choices=("small", "medium", "large"),
                       default="small")
    p_run.add_argument("--iterations", type=int, default=None)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--strict", action="store_true",
                       help="audit simulator invariants during the run")

    p_fig = sub.add_parser("figure", help="regenerate a paper figure")
    p_fig.add_argument("id", help="fig01..fig23")
    p_fig.add_argument("--trials", type=int, default=3)
    p_fig.add_argument("--seed", type=int, default=0)
    p_fig.add_argument("--strict", action="store_true",
                       help="audit simulator invariants during the runs")
    p_fig.add_argument("--jobs", type=int, default=None,
                       help="worker processes for independent runs "
                            "(default: $REPRO_JOBS or serial); results "
                            "are identical at any job count")
    p_fig.add_argument("--checkpoint", default=None, metavar="DIR",
                       help="journal finished runs to DIR (scaling "
                            "figures and fig19); a killed regeneration "
                            "resumes bit-identically with --resume")
    p_fig.add_argument("--resume", action="store_true",
                       help="resume from an existing --checkpoint DIR")

    p_t7 = sub.add_parser("table7", help="regenerate Table VII")
    p_t7.add_argument("--nodes", type=int, nargs="+",
                      default=[27, 44, 97])
    p_t7.add_argument("--seed", type=int, default=0)
    p_t7.add_argument("--strict", action="store_true",
                      help="audit simulator invariants during the runs")
    p_t7.add_argument("--jobs", type=int, default=None,
                      help="worker processes for independent runs")

    p_flt = sub.add_parser(
        "faults", help="inject a node crash and measure recovery")
    p_flt.add_argument("--workload", choices=WORKLOADS, required=True)
    p_flt.add_argument("--engines", nargs="+",
                       choices=("spark", "flink"),
                       default=["flink", "spark"])
    p_flt.add_argument("--nodes", type=int, default=4)
    p_flt.add_argument("--graph", choices=("small", "medium", "large"),
                       default="small")
    p_flt.add_argument("--mode", choices=("simulate", "estimate", "both"),
                       default="simulate",
                       help="in-simulation recovery, fast analytic "
                            "estimate, or both")
    p_flt.add_argument("--fail-at", type=float, default=0.5,
                       help="crash point as a fraction of the baseline "
                            "duration (0, 1)")
    p_flt.add_argument("--crash-node", type=int, default=1,
                       help="node index to crash")
    p_flt.add_argument("--restart-after", type=float, default=0.0,
                       help="seconds (fraction of baseline) until the "
                            "machine rejoins; negative = never",)
    p_flt.add_argument("--backoff", type=float, default=3.0,
                       help="Spark task re-execution backoff seconds")
    p_flt.add_argument("--restart-delay", type=float, default=10.0,
                       help="Flink fixed-delay restart seconds")
    p_flt.add_argument("--timeline", action="store_true",
                       help="print the full fault/recovery timeline")
    p_flt.add_argument("--seed", type=int, default=0)
    p_flt.add_argument("--strict", action="store_true",
                       help="audit simulator + fault invariants")

    p_ex = sub.add_parser("explain", help="print both physical plans")
    p_ex.add_argument("--workload", choices=WORKLOADS, required=True)
    p_ex.add_argument("--nodes", type=int, default=8)
    p_ex.add_argument("--graph", choices=("small", "medium", "large"),
                      default="small")

    p_tr = sub.add_parser(
        "trace", help="span-trace a run: critical path, per-stage "
                      "dominant resources, Chrome-trace/CSV export")
    p_tr.add_argument("--workload", choices=WORKLOADS, required=True)
    p_tr.add_argument("--engines", nargs="+", choices=("spark", "flink"),
                      default=["flink", "spark"])
    p_tr.add_argument("--nodes", type=int, default=8)
    p_tr.add_argument("--graph", choices=("small", "medium", "large"),
                      default="small")
    p_tr.add_argument("--iterations", type=int, default=None)
    p_tr.add_argument("--seed", type=int, default=0)
    p_tr.add_argument("--out", default=None,
                      help="directory for chrome-trace JSON + CSV export")
    p_tr.add_argument("--jobs", type=int, default=None,
                      help="worker processes (one per engine); output is "
                           "identical at any job count")
    p_tr.add_argument("--strict", action="store_true",
                      help="audit simulator invariants during the runs")

    p_res = sub.add_parser(
        "resilience",
        help="stochastic fault campaign: slowdown/availability vs "
             "per-node fault rate (fig19), crash-safe and resumable")
    p_res.add_argument("--workloads", nargs="+", choices=WORKLOADS,
                       default=None,
                       help="subset of workloads (default: all six)")
    p_res.add_argument("--engines", nargs="+", choices=("spark", "flink"),
                       default=["flink", "spark"])
    p_res.add_argument("--nodes", type=int, default=8)
    p_res.add_argument("--rates", type=float, nargs="+",
                       default=[0.0, 0.5, 1.0, 2.0],
                       help="per-node fault rates (events per node per "
                            "baseline run; MTTF = 1/rate)")
    p_res.add_argument("--trials", type=int, default=1)
    p_res.add_argument("--stragglers", type=int, default=0,
                       help="persistently slow nodes for the whole run")
    p_res.add_argument("--seed", type=int, default=0)
    p_res.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: $REPRO_JOBS or "
                            "serial); curves are identical at any count")
    p_res.add_argument("--timeout", "--task-timeout", type=float,
                       default=None, dest="timeout",
                       help="per-cell wall-clock timeout in seconds "
                            "(parallel runs only); a timed-out cell "
                            "becomes a gap, not a campaign abort")
    p_res.add_argument("--retries", "--task-retries", type=int,
                       default=1, dest="retries",
                       help="retry budget per failed cell")
    p_res.add_argument("--task-backoff", type=float, default=0.5,
                       dest="task_backoff",
                       help="base delay before retrying a failed cell; "
                            "doubles per attempt")
    p_res.add_argument("--checkpoint", default=None, metavar="DIR",
                       help="journal every finished cell to DIR")
    p_res.add_argument("--resume", action="store_true",
                       help="resume a killed campaign from "
                            "--checkpoint DIR (digest-identical to an "
                            "uninterrupted run)")
    p_res.add_argument("--strict", action="store_true",
                       help="audit invariants; exit non-zero on gaps")

    p_str = sub.add_parser(
        "streaming",
        help="executed streaming engines: latency vs load (fig20), "
             "--recovery: recovery vs checkpoint interval (fig21), "
             "--degrade: overload survival (fig22)")
    p_str.add_argument("--engines", nargs="+", choices=("spark", "flink"),
                       default=["flink", "spark"])
    p_str.add_argument("--arrivals", nargs="+",
                       choices=("poisson", "mmpp"),
                       default=["poisson", "mmpp"],
                       help="arrival processes for the latency sweep")
    p_str.add_argument("--loads", type=float, nargs="+",
                       default=[0.3, 0.6, 0.8, 0.95],
                       help="offered load as fractions of each engine's "
                            "analytic capacity (latency sweep)")
    p_str.add_argument("--recovery", action="store_true",
                       help="run the fig21 crash-recovery sweep instead "
                            "of the fig20 latency sweep")
    p_str.add_argument("--degrade", action="store_true",
                       help="run the fig22 overload-survival sweep "
                            "(load multiples x fault rates x policies)")
    p_str.add_argument("--load-multiples", type=float, nargs="+",
                       default=[1.0, 1.25, 1.5, 2.0],
                       help="offered load as multiples of each engine's "
                            "stability boundary (degradation sweep)")
    p_str.add_argument("--fault-rates", type=float, nargs="+",
                       default=[0.0, 0.5],
                       help="stochastic crash rates per node "
                            "(degradation sweep)")
    p_str.add_argument("--policies", nargs="+",
                       choices=("none", "degrade"),
                       default=["none", "degrade"],
                       help="degradation policies to compare "
                            "(degradation sweep)")
    p_str.add_argument("--load", type=float, default=0.5,
                       help="load fraction for the recovery sweep")
    p_str.add_argument("--checkpoint-intervals", type=float, nargs="+",
                       default=[1.5, 3.0, 6.0, 12.0],
                       help="checkpoint intervals for the recovery sweep")
    p_str.add_argument("--crash-at", type=float, default=23.0,
                       help="simulated crash time for the recovery sweep")
    p_str.add_argument("--nodes", type=int, default=8)
    p_str.add_argument("--duration", type=float, default=40.0,
                       help="seconds of offered load per cell")
    p_str.add_argument("--batch-interval", type=float, default=1.0,
                       help="micro-batch interval of the D-Stream engine")
    p_str.add_argument("--seed", type=int, default=0)
    p_str.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: $REPRO_JOBS or "
                            "serial); curves are identical at any count")
    p_str.add_argument("--timeout", "--task-timeout", type=float,
                       default=None, dest="timeout",
                       help="per-cell wall-clock timeout in seconds")
    p_str.add_argument("--retries", "--task-retries", type=int,
                       default=1, dest="retries",
                       help="retry budget per failed cell")
    p_str.add_argument("--task-backoff", type=float, default=0.5,
                       dest="task_backoff",
                       help="base delay before retrying a failed cell; "
                            "doubles per attempt")
    p_str.add_argument("--checkpoint", default=None, metavar="DIR",
                       help="journal every finished cell to DIR")
    p_str.add_argument("--resume", action="store_true",
                       help="resume a killed campaign from "
                            "--checkpoint DIR (digest-identical to an "
                            "uninterrupted run)")
    p_str.add_argument("--strict", action="store_true",
                       help="audit invariants; exit non-zero on gaps")

    p_ten = sub.add_parser(
        "tenancy",
        help="multi-tenant scheduling campaign: job slowdown / queue "
             "wait / fairness vs offered load per queue policy (fig23), "
             "crash-safe and resumable")
    p_ten.add_argument("--policies", nargs="+",
                       choices=("fifo", "fair", "capacity"),
                       default=["fifo", "fair", "capacity"])
    p_ten.add_argument("--loads", type=float, nargs="+",
                       default=[0.3, 0.6, 0.9],
                       help="offered load as a fraction of cluster "
                            "capacity (arrival rate x mean job "
                            "node-seconds / nodes)")
    p_ten.add_argument("--trials", type=int, default=1)
    p_ten.add_argument("--nodes", type=int, default=8)
    p_ten.add_argument("--jobs-per-cell", type=int, default=12,
                       dest="jobs_per_cell",
                       help="expected job arrivals per campaign cell")
    p_ten.add_argument("--crash-rate", type=float, default=0.0,
                       help="expected node crashes per node per arrival "
                            "window (compiled, deterministic)")
    p_ten.add_argument("--quick", action="store_true",
                       help="shrunken campaign (4 nodes, two loads, ~6 "
                            "jobs/cell) for CI smoke")
    p_ten.add_argument("--seed", type=int, default=0)
    p_ten.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: $REPRO_JOBS or "
                            "serial); figures are identical at any count")
    p_ten.add_argument("--timeout", "--task-timeout", type=float,
                       default=None, dest="timeout",
                       help="per-cell wall-clock timeout in seconds")
    p_ten.add_argument("--retries", "--task-retries", type=int,
                       default=1, dest="retries",
                       help="retry budget per failed cell")
    p_ten.add_argument("--task-backoff", type=float, default=0.5,
                       dest="task_backoff",
                       help="base delay before retrying a failed cell; "
                            "doubles per attempt")
    p_ten.add_argument("--checkpoint", default=None, metavar="DIR",
                       help="journal every finished cell to DIR")
    p_ten.add_argument("--resume", action="store_true",
                       help="resume a killed campaign from "
                            "--checkpoint DIR (digest-identical to an "
                            "uninterrupted run)")
    p_ten.add_argument("--strict", action="store_true",
                       help="audit scheduling invariants; exit non-zero "
                            "on gaps")

    p_srv = sub.add_parser(
        "serve",
        help="long-running capacity-advisor service (asyncio + "
             "process-isolated workers, circuit breaker, verified "
             "cache, graceful SIGTERM drain); see docs/serving.md")
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=7472,
                       help="TCP port (0 picks a free one and prints it)")
    p_srv.add_argument("--jobs", type=int, default=None,
                       help="simulation worker processes (default 2)")
    p_srv.add_argument("--queue-limit", type=int, default=8,
                       dest="queue_limit",
                       help="max concurrent plan requests before "
                            "shedding with 429")
    p_srv.add_argument("--deadline", type=float, default=30.0,
                       help="default per-request deadline in seconds "
                            "(overridable per request via "
                            "deadline_seconds)")
    p_srv.add_argument("--client-timeout", type=float, default=5.0,
                       dest="client_timeout",
                       help="seconds a client may take to deliver its "
                            "request before a 408")
    p_srv.add_argument("--timeout", "--task-timeout", type=float,
                       default=None, dest="timeout",
                       help="per-simulation wall-clock timeout "
                            "(default 30s)")
    p_srv.add_argument("--retries", "--task-retries", type=int,
                       default=1, dest="retries",
                       help="retry budget per crashed/timed-out "
                            "simulation")
    p_srv.add_argument("--task-backoff", type=float, default=0.05,
                       dest="task_backoff",
                       help="base retry delay; doubles per attempt")
    p_srv.add_argument("--breaker-threshold", type=int, default=5,
                       dest="breaker_threshold",
                       help="consecutive worker failures that trip the "
                            "circuit breaker")
    p_srv.add_argument("--breaker-reset", type=float, default=0.5,
                       dest="breaker_reset",
                       help="initial open window in seconds (doubles "
                            "per consecutive trip)")
    p_srv.add_argument("--drain-grace", type=float, default=10.0,
                       dest="drain_grace",
                       help="seconds SIGTERM waits for in-flight "
                            "requests before shedding them")
    p_srv.add_argument("--cache", default=None, metavar="DIR",
                       help="persist the answer cache to DIR (checksum-"
                            "verified journal; survives restarts)")

    p_pln = sub.add_parser(
        "plan",
        help="one-shot capacity plan: smallest cluster x engine x "
             "config meeting an SLO (the serve endpoint, offline)")
    p_pln.add_argument("--workload", choices=WORKLOADS, required=True)
    p_pln.add_argument("--slo", type=float, required=True,
                       help="makespan SLO in (simulated) seconds")
    p_pln.add_argument("--engines", nargs="+",
                       choices=("spark", "flink"),
                       default=["spark", "flink"])
    p_pln.add_argument("--nodes-candidates", type=int, nargs="+",
                       default=[2, 4, 8, 16, 32], dest="nodes_candidates",
                       help="cluster sizes to consider, ascending")
    p_pln.add_argument("--data-scale", type=float, default=1.0,
                       dest="data_scale",
                       help="shrink byte-sized datasets to this "
                            "fraction (what-if planning)")
    p_pln.add_argument("--seed", type=int, default=0)
    p_pln.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: $REPRO_JOBS or "
                            "serial)")
    p_pln.add_argument("--timeout", "--task-timeout", type=float,
                       default=None, dest="timeout",
                       help="per-candidate wall-clock timeout")
    p_pln.add_argument("--retries", "--task-retries", type=int,
                       default=1, dest="retries")
    p_pln.add_argument("--task-backoff", type=float, default=0.5,
                       dest="task_backoff",
                       help="base retry delay; doubles per attempt")
    p_pln.add_argument("--json", action="store_true",
                       help="print the full plan payload as JSON")

    p_val = sub.add_parser(
        "validate", help="strict invariant self-check / golden replay")
    p_val.add_argument("--replay", action="store_true",
                       help="compare trace digests against tests/golden/")
    p_val.add_argument("--update-golden", action="store_true",
                       help="re-record the golden digests")
    p_val.add_argument("--scenarios", nargs="+", default=None,
                       help="subset of scenarios (default: all)")
    p_val.add_argument("--golden", default=None,
                       help="path to the golden digest file")
    p_val.add_argument("--seed", type=int, default=0)

    p_bench = sub.add_parser(
        "bench", help="time the pinned perf suite, write BENCH_<date>.json")
    p_bench.add_argument("--quick", action="store_true",
                         help="shrunken cases (CI smoke)")
    p_bench.add_argument("--jobs", type=int, default=None,
                         help="worker processes for independent runs")
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument("--label", default="",
                         help="label recorded in the report")
    p_bench.add_argument("--compare", nargs=2, default=None,
                         metavar=("BENCH_A", "BENCH_B"),
                         help="compare two existing BENCH_*.json reports "
                              "(A = baseline) and print per-case "
                              "speedup/regression instead of running")
    p_bench.add_argument("--out", default=None,
                         help="report path (default BENCH_<date>.json)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"list": cmd_list, "run": cmd_run, "figure": cmd_figure,
                "table7": cmd_table7, "explain": cmd_explain,
                "faults": cmd_faults, "trace": cmd_trace,
                "resilience": cmd_resilience, "streaming": cmd_streaming,
                "tenancy": cmd_tenancy, "serve": cmd_serve,
                "plan": cmd_plan,
                "validate": cmd_validate, "bench": cmd_bench}
    try:
        return handlers[args.command](args)
    except KeyboardInterrupt:
        # Workers ignore SIGINT and the coordinators tear them down in
        # their finally blocks, so a single line is the whole story —
        # no multiprocess traceback spew.
        print(f"\ninterrupted: {args.command} stopped cleanly "
              f"(checkpointed work is safe; rerun with --resume where "
              f"supported)", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
