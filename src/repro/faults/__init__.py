"""In-simulation fault injection and recovery (extends the paper's §VIII).

The analytic :mod:`repro.harness.faults` estimates recovery cost from a
fault-free baseline; this package instead injects the faults *into* the
running discrete-event simulation and lets each engine's 2015-era
recovery machinery play out:

* :mod:`repro.faults.plan` — a deterministic, seedable fault-plan DSL
  (node crashes, disk/NIC stragglers, network partitions, memory
  pressure);
* :mod:`repro.faults.injector` — kernel processes that fire the plan's
  events: interrupt affected work, abort in-flight flows with byte
  conservation, and rescale node capacities mid-run;
* :mod:`repro.faults.state` — cluster-wide fault bookkeeping (liveness,
  blacklists, degraded-capacity traces, the task ledger strict mode
  audits);
* :mod:`repro.faults.recovery` — Spark task re-execution with
  retry/backoff/speculation/blacklisting, and Flink 0.10's full-restart
  policy plus a checkpoint-interval what-if model;
* :mod:`repro.faults.run` — the :func:`run_with_faults` harness entry
  and its differential comparison against the analytic estimate.
"""

from .injector import FaultInjector, FaultTimeline, TimelineEntry
from .plan import (DiskSlowdown, FaultEvent, FaultPlan, MemoryPressure,
                   NetworkPartition, NicSlowdown, NodeCrash)
from .recovery import (CheckpointWhatIf, FlinkRestartPolicy, RetryPolicy,
                       SparkRecoveryRuntime, checkpoint_whatif)
from .run import (FaultComparison, FaultedRunResult, compare_with_analytic,
                  run_with_faults)
from .state import FaultState, TaskLedger

__all__ = [
    "CheckpointWhatIf",
    "DiskSlowdown",
    "FaultComparison",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultState",
    "FaultTimeline",
    "FaultedRunResult",
    "FlinkRestartPolicy",
    "MemoryPressure",
    "NetworkPartition",
    "NicSlowdown",
    "NodeCrash",
    "RetryPolicy",
    "SparkRecoveryRuntime",
    "TaskLedger",
    "TimelineEntry",
    "checkpoint_whatif",
    "compare_with_analytic",
    "run_with_faults",
]
