"""Engine-specific in-simulation recovery.

**Spark 1.5** (lineage + materialised stage outputs): a stage runs with
per-node fault guards; when a node's share is lost the surviving nodes
finish theirs, the lost share is redistributed over schedulable nodes
(weighted by CPU speed, honouring the blacklist) and re-executed after
an exponential backoff, up to ``RetryPolicy.max_retries`` attempts.  A
*crashed* node additionally loses the locally-stored outputs of every
stage it already completed, so the runtime re-derives those partitions
from lineage before any dependent work runs — exactly the recovery
story the analytic :func:`repro.harness.faults.run_with_failure`
charges as ``rerun_lost_tasks + recompute``.

**Flink 0.10** (no intermediate materialisation, FLINK-2250): any lost
task fails the whole pipelined job; :class:`FlinkRestartPolicy`
describes the full-restart loop the harness runs (quiesce, fixed-delay
backoff, wait for crashed TaskManagers to re-register, re-submit).
:func:`checkpoint_whatif` layers an analytic what-if on the observed
restart timeline: how much redone work a periodic checkpoint at
interval ``C`` would have saved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster.topology import Cluster
from ..engines.common.execution import (PhaseExecutor, PhaseResources,
                                        PhaseSpec, TaskLostError)
from .injector import FaultTimeline
from .state import FaultState

__all__ = ["RetryPolicy", "SparkRecoveryRuntime", "FlinkRestartPolicy",
           "CheckpointWhatIf", "checkpoint_whatif", "quiesce"]

#: Additive (divisible) resource-demand fields of a PhaseResources.
_ADDITIVE = ("cpu_core_seconds", "disk_read_bytes", "disk_write_bytes",
             "net_in_bytes", "net_out_bytes", "hdfs_write_bytes",
             "cyclic_disk_bytes")

#: Byte volume equivalent to one CPU core-second when scalarising
#: mixed resource demands into work units (one disk-second of traffic).
#: The exact value is irrelevant to conservation — commits and debits
#: use the same measure — it only balances CPU- vs I/O-heavy shares.
_BYTES_PER_CORE_SECOND = 150 * 2**20


def _work_scalar(res: PhaseResources) -> float:
    volume = sum(getattr(res, f) for f in _ADDITIVE if f != "cpu_core_seconds")
    return res.cpu_core_seconds + volume / _BYTES_PER_CORE_SECOND


@dataclass(frozen=True)
class RetryPolicy:
    """Spark-style task re-execution policy."""

    #: Attempts per stage beyond the first (spark.task.maxFailures=4).
    max_retries: int = 4
    #: Seconds before the first re-execution (task relaunch latency).
    backoff: float = 3.0
    #: Exponential backoff multiplier for consecutive retries.
    backoff_factor: float = 2.0
    #: Fault-caused failures on one node before it is blacklisted
    #: (no further recovery work is placed there).
    blacklist_after: int = 2
    #: Launch a redundant copy of every re-execution and race them
    #: (speculative execution); the loser's work is tracked as waste.
    speculative: bool = False

    def validate(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff must be >= 0, backoff_factor >= 1")
        if self.blacklist_after < 1:
            raise ValueError("blacklist_after must be >= 1")


@dataclass(frozen=True)
class FlinkRestartPolicy:
    """Flink 0.10 ``execution-retries``-style full restart policy."""

    max_restarts: int = 3
    #: Fixed delay before re-submitting the job (execution-retries.delay).
    restart_delay: float = 10.0

    def validate(self) -> None:
        if self.max_restarts < 0 or self.restart_delay < 0:
            raise ValueError("max_restarts and restart_delay must be >= 0")


class SparkRecoveryRuntime:
    """Drives fault-guarded stage execution with task re-execution.

    Installed on a :class:`~repro.engines.spark.engine.SparkEngine` as
    ``engine.recovery``; the engine then routes every stage through
    :meth:`run_stage`.
    """

    def __init__(self, cluster: Cluster, state: FaultState,
                 timeline: FaultTimeline,
                 policy: Optional[RetryPolicy] = None) -> None:
        self.cluster = cluster
        self.state = state
        self.timeline = timeline
        self.policy = policy or RetryPolicy()
        self.policy.validate()
        #: Completed stages: (resource totals, committed units by node)
        #: — the lineage that recomputes a crashed node's lost outputs.
        self.history: List[Tuple[Dict[str, float], Dict[int, float],
                                 PhaseSpec]] = []
        self._seq = 0
        self._in_lineage = False

    # ------------------------------------------------------------------
    # the per-stage entry point (a generator, like run_phase)
    # ------------------------------------------------------------------
    def run_stage(self, executor: PhaseExecutor, phase: PhaseSpec):
        self._seq += 1
        key = f"{phase.key}#{self._seq}"
        # Nodes that died since the previous stage hold stage outputs
        # this one may consume: recompute them from lineage first.
        yield from self._recompute_lineage(executor)
        phase = self._redistribute(phase)
        fractions = self._fractions(phase)
        planned = 1.0 if sum(fractions) > 0 else 0.0
        self.state.ledger.open(key, planned=planned)
        span, committed_by_node = yield from self._run_with_retries(
            executor, key, phase, fractions)
        self.state.ledger.close(key)
        self.history.append((self._totals(phase), committed_by_node, phase))
        return span

    # ------------------------------------------------------------------
    # retry loop (shared by stages and lineage recomputation)
    # ------------------------------------------------------------------
    def _run_with_retries(self, executor: PhaseExecutor, key: str,
                          phase: PhaseSpec, fractions: Sequence[float]):
        sim = self.cluster.sim
        ledger = self.state.ledger
        committed_by_node: Dict[int, float] = {}
        span, failures, chunks = yield from executor.run_phase_guarded(phase)
        lost_by_node = self._settle(key, fractions, failures, chunks,
                                    executor.chunks, committed_by_node)
        attempt = 0
        while sum(lost_by_node.values()) > 1e-12:
            attempt += 1
            if attempt > self.policy.max_retries:
                raise TaskLostError(
                    f"stage {phase.key!r}: giving up after "
                    f"{self.policy.max_retries} task re-execution(s)")
            self._update_blacklist(failures)
            # A crash during this stage also destroyed earlier stage
            # outputs the retry will read: recompute them first.
            yield from self._recompute_lineage(executor)
            backoff = (self.policy.backoff *
                       self.policy.backoff_factor ** (attempt - 1))
            if backoff > 0:
                yield sim.timeout(backoff)
            lost_units = sum(lost_by_node.values())
            rec_phase, rec_fractions = self._recovery_spec(phase,
                                                           lost_units)
            ledger.retry(key, lost_units)
            self.timeline.record(
                sim.now, "task_retry", min(lost_by_node),
                f"stage {phase.key}: re-executing {lost_units:.3f} work "
                f"units (attempt {attempt}/{self.policy.max_retries})")
            if self.policy.speculative:
                result = yield from self._speculative_attempt(
                    executor, key, rec_phase, lost_units)
            else:
                result = yield from executor.run_phase_guarded(rec_phase)
            rec_span, failures, chunks = result
            lost_by_node = self._settle(key, rec_fractions, failures,
                                        chunks, executor.chunks,
                                        committed_by_node)
            span.end = max(span.end, rec_span.end)
            span.busy += rec_span.busy
        return span, committed_by_node

    def _speculative_attempt(self, executor: PhaseExecutor, key: str,
                             rec_phase: PhaseSpec, lost_units: float):
        """Race two redundant copies of the re-execution; the winner's
        outcome counts, the loser is charged as speculative waste (it
        is not killed — its residual resource usage is the price of
        speculation)."""
        sim = self.cluster.sim
        procs = [sim.process(executor.run_phase_guarded(rec_phase))
                 for _ in range(2)]
        yield sim.any_of(procs)
        winner = next(p for p in procs if p.triggered)
        self.state.ledger.waste(key, lost_units)
        return winner.value

    # ------------------------------------------------------------------
    # settlement: turn one attempt's outcome into ledger movements
    # ------------------------------------------------------------------
    def _settle(self, key: str, fractions: Sequence[float],
                failures: Dict[int, BaseException],
                chunks: Dict[int, int], chunks_per_node: int,
                committed_by_node: Dict[int, float]) -> Dict[int, float]:
        """Commit finished shares; return work units still lost, by the
        node that lost them."""
        ledger = self.state.ledger
        lost_by_node: Dict[int, float] = {}
        for ni, frac in enumerate(fractions):
            if frac <= 0:
                continue
            done = min(chunks.get(ni, 0), chunks_per_node) / chunks_per_node
            if ni not in failures:
                ledger.commit(key, frac)
                committed_by_node[ni] = committed_by_node.get(ni, 0.0) + frac
                continue
            err = failures[ni]
            crashed_here = (getattr(err, "crashed_node", None) == ni
                            or not self.state.alive[ni])
            if crashed_here:
                # Crashed executor: even its finished chunks are gone
                # (locally-stored outputs died with the process).
                ledger.commit(key, frac * done)
                ledger.lose(key, frac * done)
                lost_by_node[ni] = frac
            else:
                # The process died collaterally (e.g. a replication
                # pipeline crossing a dead node) but its machine is
                # fine: chunk outputs already written locally are kept.
                ledger.commit(key, frac * done)
                committed_by_node[ni] = (committed_by_node.get(ni, 0.0) +
                                         frac * done)
                lost_by_node[ni] = frac * (1.0 - done)
        return lost_by_node

    def _update_blacklist(self, failures: Dict[int, BaseException]) -> None:
        for ni in sorted(failures):
            count = self.state.note_failure(ni)
            if (self.state.alive[ni] and ni not in self.state.blacklisted
                    and count >= self.policy.blacklist_after):
                self.state.blacklisted.add(ni)
                self.timeline.record(
                    self.cluster.sim.now, "blacklist", ni,
                    f"{count} fault-caused failures: no further recovery "
                    f"work placed here")

    # ------------------------------------------------------------------
    # work placement
    # ------------------------------------------------------------------
    @staticmethod
    def _totals(phase: PhaseSpec) -> Dict[str, float]:
        return {attr: phase.total(attr) for attr in _ADDITIVE}

    @staticmethod
    def _fractions(phase: PhaseSpec) -> List[float]:
        weights = [_work_scalar(res) for res in phase.per_node]
        total = sum(weights)
        if total <= 0:
            return [0.0] * len(weights)
        return [w / total for w in weights]

    def _placement_weights(self) -> Dict[int, float]:
        targets = self.state.schedulable_indices()
        weights = {i: self.cluster.node(i).cpu.bandwidth for i in targets}
        total = sum(weights.values())
        if total <= 0:  # pragma: no cover - all schedulable nodes dead
            weights = {i: 1.0 for i in targets}
            total = float(len(targets))
        return {i: w / total for i, w in weights.items()}

    def _redistribute(self, phase: PhaseSpec) -> PhaseSpec:
        """Move shares planned for dead/blacklisted nodes onto
        schedulable ones (Spark's dynamic task placement), leaving the
        banned nodes with empty shares."""
        placement = self._placement_weights()
        banned = [i for i in range(len(phase.per_node))
                  if i not in placement]
        if not banned or all(_work_scalar(phase.per_node[i]) <= 0
                             and phase.per_node[i].memory_bytes <= 0
                             for i in banned):
            return phase
        moved = {attr: sum(getattr(phase.per_node[i], attr) for i in banned)
                 for attr in _ADDITIVE}
        slots = max((r.cpu_slots for r in phase.per_node), default=0.0)
        memory = max((r.memory_bytes for r in phase.per_node), default=0.0)
        replication = next((r.hdfs_replication for r in phase.per_node
                            if r.hdfs_replication is not None), None)
        per_node = []
        for i, res in enumerate(phase.per_node):
            if i in placement:
                w = placement[i]
                kwargs = {attr: getattr(res, attr) + moved[attr] * w
                          for attr in _ADDITIVE}
                per_node.append(PhaseResources(
                    cpu_slots=res.cpu_slots or slots,
                    memory_bytes=res.memory_bytes or memory,
                    hdfs_replication=res.hdfs_replication
                    if res.hdfs_replication is not None else replication,
                    **kwargs))
            else:
                per_node.append(PhaseResources())
        return PhaseSpec(name=phase.name, key=phase.key, per_node=per_node,
                         startup_delay=phase.startup_delay,
                         blocking=phase.blocking,
                         anti_cyclic=phase.anti_cyclic)

    def _spec_from_units(self, name: str, key: str,
                         totals: Dict[str, float], units: float,
                         template: PhaseSpec) -> Tuple[PhaseSpec,
                                                       List[float]]:
        """A phase spec re-executing ``units`` work units of a stage
        whose cluster-wide demands were ``totals``, spread over the
        schedulable nodes by CPU speed."""
        placement = self._placement_weights()
        slots = max((r.cpu_slots for r in template.per_node), default=1.0)
        memory = max((r.memory_bytes for r in template.per_node),
                     default=0.0)
        num_nodes = len(template.per_node)
        fractions = [0.0] * num_nodes
        per_node = []
        for i in range(num_nodes):
            share = units * placement.get(i, 0.0)
            fractions[i] = share
            if share <= 0:
                per_node.append(PhaseResources())
                continue
            kwargs = {attr: totals[attr] * share for attr in _ADDITIVE}
            per_node.append(PhaseResources(
                cpu_slots=slots, memory_bytes=memory * min(1.0, share *
                                                           num_nodes),
                **kwargs))
        spec = PhaseSpec(name=name, key=key, per_node=per_node,
                         startup_delay=template.startup_delay,
                         blocking=template.blocking,
                         anti_cyclic=template.anti_cyclic)
        return spec, fractions

    def _recovery_spec(self, phase: PhaseSpec, lost_units: float
                       ) -> Tuple[PhaseSpec, List[float]]:
        return self._spec_from_units(
            f"{phase.name} (retry)", phase.key, self._totals(phase),
            lost_units, phase)

    # ------------------------------------------------------------------
    # lineage recomputation
    # ------------------------------------------------------------------
    def _recompute_lineage(self, executor: PhaseExecutor):
        """Re-derive from lineage the completed-stage outputs stored on
        nodes that crashed since the last check."""
        if self._in_lineage:
            return
        fresh = sorted(self.state.pending_lineage)
        if not fresh:
            return
        self.state.pending_lineage.difference_update(fresh)
        self._in_lineage = True
        try:
            for hist_i, (totals, committed_by_node, template) in \
                    enumerate(self.history):
                units = sum(committed_by_node.get(ni, 0.0) for ni in fresh)
                if units <= 1e-12:
                    continue
                key = f"lineage:{template.key}#{hist_i}@{self._seq}"
                spec, fractions = self._spec_from_units(
                    f"{template.name} (lineage recompute)", template.key,
                    totals, units, template)
                self.timeline.record(
                    self.cluster.sim.now, "lineage_recompute",
                    fresh[0],
                    f"stage {template.key}: recomputing {units:.3f} lost "
                    f"output units")
                self.state.ledger.open(key, planned=units)
                _span, recommitted = yield from self._run_with_retries(
                    executor, key, spec, fractions)
                self.state.ledger.close(key)
                # The recomputed partitions now live on the recomputers.
                for ni in fresh:
                    committed_by_node.pop(ni, None)
                for ni, units_i in recommitted.items():
                    committed_by_node[ni] = (committed_by_node.get(ni, 0.0)
                                             + units_i)
        finally:
            self._in_lineage = False


# ----------------------------------------------------------------------
# Flink full-restart support
# ----------------------------------------------------------------------
def quiesce(cluster: Cluster, state: FaultState, reason: str) -> int:
    """Tear down all in-flight work before a full job restart.

    Aborts every active flow (crediting partial progress so byte
    conservation holds), interrupts every registered work process, and
    drains same-time kernel events.  Returns how many flows/processes
    were torn down.
    """
    error = TaskLostError(f"job restart: {reason}")
    caps = []
    for node in cluster.nodes:
        caps.extend([node.cpu, node.disk, node.nic_in, node.nic_out])
    fluid = cluster.fluid
    count = fluid.abort_flows(fluid.flows_on(caps), error)
    for proc in state.all_procs():
        proc.interrupt(error)
        count += 1
    cluster.sim.run(until=cluster.sim.now)
    return count


# ----------------------------------------------------------------------
# checkpoint-interval what-if (analytic layer over the restart timeline)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CheckpointWhatIf:
    """Estimated effect of periodic checkpointing at one interval."""

    interval: float
    estimated_duration: float
    redone_work_saved: float
    checkpoint_overhead: float


def checkpoint_whatif(duration: float,
                      restarts: Sequence[Tuple[float, float]],
                      intervals: Sequence[float] = (30.0, 60.0, 120.0,
                                                    300.0),
                      overhead_fraction: float = 0.02
                      ) -> List[CheckpointWhatIf]:
    """What if Flink had checkpointed every ``C`` seconds?

    ``restarts`` holds ``(failure_time, progress_lost)`` pairs from the
    observed restart timeline.  With checkpoints at interval ``C`` a
    restart would redo only ``progress_lost mod C`` (resuming from the
    last completed checkpoint) at the price of ``overhead_fraction`` of
    extra runtime for barrier alignment and state writes — the
    trade-off FLINK-2250 was introducing when the paper was written.
    """
    if duration < 0 or not math.isfinite(duration):
        raise ValueError(f"duration must be finite and >= 0: {duration}")
    out = []
    for interval in intervals:
        if interval <= 0:
            raise ValueError("checkpoint interval must be > 0")
        saved = sum(lost - math.fmod(lost, interval)
                    for _t, lost in restarts if lost > 0)
        saved = min(saved, duration)
        base = duration - saved
        overhead = overhead_fraction * base
        out.append(CheckpointWhatIf(
            interval=interval, estimated_duration=base + overhead,
            redone_work_saved=saved, checkpoint_overhead=overhead))
    return out
