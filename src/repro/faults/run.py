"""The fault-injected experiment entry point.

:func:`run_with_faults` mirrors :func:`repro.harness.runner.run_once` —
fresh cluster, HDFS import, engine deployment — then arms a fault plan
on the deployment and runs the workload with the engine's recovery
machinery engaged:

* **spark** — a :class:`~repro.faults.recovery.SparkRecoveryRuntime`
  is installed on the engine; stages run fault-guarded and lost task
  shares are re-executed in-simulation;
* **flink** — any lost task fails the pipelined job; the harness
  quiesces the cluster, waits out the restart delay (and any crashed
  TaskManager's return), and re-submits, up to the restart policy's
  budget.

Relative plans are resolved against a fault-free baseline run with the
same seed, so ``NodeCrash(at=0.5, ...)`` always means "halfway through
the run this workload would otherwise have".  Strict mode attaches the
usual :class:`~repro.validation.InvariantChecker` *plus* the fault
audit (capacity rescaling bookkeeping and task-ledger conservation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..cluster.topology import Cluster
from ..config.presets import ExperimentConfig
from ..engines.common.result import EngineRunResult
from ..engines.flink.engine import FlinkEngine
from ..engines.spark.engine import SparkEngine
from ..harness.faults import FaultRecoveryResult, run_with_failure
from ..harness.runner import run_once
from ..hdfs.filesystem import HDFS
from ..validation.invariants import InvariantChecker, strict_enabled
from ..workloads.base import Workload
from .injector import FaultInjector, FaultTimeline
from .plan import FaultPlan
from .recovery import (FlinkRestartPolicy, RetryPolicy,
                       SparkRecoveryRuntime, quiesce)
from .state import FaultState

__all__ = ["FaultedRunResult", "FaultComparison", "run_with_faults",
           "compare_with_analytic"]


@dataclass
class FaultedRunResult:
    """Outcome of one fault-injected run, with its recovery record."""

    engine: str
    workload: str
    nodes: int
    seed: int
    plan: FaultPlan                    # resolved (absolute times)
    baseline: EngineRunResult
    result: EngineRunResult
    timeline: FaultTimeline
    #: Flink full restarts: (failure_time, progress_lost) pairs.
    restarts: List[Tuple[float, float]] = field(default_factory=list)
    retried_units: float = 0.0
    retry_attempts: int = 0
    speculative_waste: float = 0.0
    capacity_traces: Dict[str, List[Tuple[float, float]]] = \
        field(default_factory=dict)
    ledger: Dict[str, Dict[str, float]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def success(self) -> bool:
        return self.result.success

    @property
    def baseline_duration(self) -> float:
        return self.baseline.duration

    @property
    def faulted_duration(self) -> float:
        """Wall-clock of the faulted run (finite even on failure)."""
        return self.result.end - self.result.start

    @property
    def recovery_overhead(self) -> float:
        """Extra seconds caused by the faults (NaN if the run died)."""
        if not self.success:
            return math.nan
        return self.faulted_duration - self.baseline_duration

    @property
    def overhead_fraction(self) -> float:
        if not self.success or self.baseline_duration <= 0:
            return math.nan
        return self.recovery_overhead / self.baseline_duration

    # ------------------------------------------------------------------
    def payload(self) -> Dict[str, Any]:
        """Canonicalisable record for trace digests / golden replay."""
        return {
            "engine": self.engine,
            "workload": self.workload,
            "nodes": self.nodes,
            "seed": self.seed,
            "plan": self.plan.payload(),
            "success": self.success,
            "baseline_duration": self.baseline_duration,
            "faulted_duration": self.faulted_duration,
            "restarts": list(self.restarts),
            "retried_units": self.retried_units,
            "retry_attempts": self.retry_attempts,
            "speculative_waste": self.speculative_waste,
            "timeline": self.timeline.payload(),
            "capacity_traces": self.capacity_traces,
        }

    def describe(self) -> str:
        if not self.success:
            return (f"{self.engine}/{self.workload} x{self.nodes}: FAILED "
                    f"under faults after {self.faulted_duration:.1f}s "
                    f"({self.result.failure})")
        extra = []
        if self.retry_attempts:
            extra.append(f"{self.retry_attempts} task re-execution(s)")
        if self.restarts:
            extra.append(f"{len(self.restarts)} job restart(s)")
        detail = f" [{', '.join(extra)}]" if extra else ""
        return (f"{self.engine}/{self.workload} x{self.nodes}: "
                f"{self.faulted_duration:.1f}s vs {self.baseline_duration:.1f}s "
                f"baseline (+{100 * self.overhead_fraction:.0f}%){detail}")


def _merge(merged: Optional[EngineRunResult],
           result: EngineRunResult,
           workload_name: str) -> EngineRunResult:
    """The multi-job merge of :func:`run_once`, shared here."""
    if merged is None:
        result.workload = workload_name
        return result
    merged.jobs.extend(result.jobs)
    merged.end = result.end
    merged.stage_windows.extend(result.stage_windows)
    for key, value in result.metrics.items():
        merged.metrics[key] = merged.metrics.get(key, 0.0) + value
    if not result.success:
        merged.success = False
        merged.failure = result.failure
        merged.failure_kind = result.failure_kind
    return merged


def _flink_job_with_restarts(engine: FlinkEngine, plan_job,
                             cluster: Cluster, state: FaultState,
                             timeline: FaultTimeline,
                             policy: FlinkRestartPolicy,
                             restarts: List[Tuple[float, float]]
                             ) -> EngineRunResult:
    """Run one Flink job, restarting the whole pipeline on lost tasks."""
    attempt = 0
    first_start: Optional[float] = None
    while True:
        attempt_start = cluster.now
        result = engine.run(plan_job)
        if first_start is None:
            first_start = result.start
        # The job's wall clock spans every attempt, not just the last
        # one — lost progress is the whole point of the restart model.
        result.start = first_start
        if result.success or result.failure_kind != "fault":
            return result
        failure_time = cluster.now
        torn_down = quiesce(cluster, state, result.failure or "task lost")
        attempt += 1
        if attempt > policy.max_restarts:
            timeline.record(failure_time, "job_abandoned", -1,
                            f"execution-retries budget ({policy.max_restarts}) "
                            f"exhausted")
            return result
        restarts.append((failure_time, failure_time - attempt_start))
        timeline.record(failure_time, "job_failure", -1,
                        f"pipeline lost {failure_time - attempt_start:.1f}s "
                        f"of progress; {torn_down} task(s)/flow(s) torn down")
        target = cluster.now + policy.restart_delay
        dead = state.dead_indices()
        if dead:
            revival = state.latest_revival(dead)
            if revival is None:
                timeline.record(failure_time, "job_abandoned", dead[0],
                                "crashed TaskManager never re-registers: "
                                "insufficient task slots to redeploy")
                result.failure = (f"{result.failure} (node(s) {dead} lost "
                                  f"for good: cannot redeploy the pipeline)")
                return result
            target = max(target, revival)
        cluster.sim.run(until=target)
        timeline.record(cluster.now, "job_restart", -1,
                        f"re-submitting (attempt {attempt}/"
                        f"{policy.max_restarts})")


def run_with_faults(engine_name: str, workload: Workload,
                    config: ExperimentConfig, plan: FaultPlan,
                    seed: int = 0,
                    retry_policy: Optional[RetryPolicy] = None,
                    restart_policy: Optional[FlinkRestartPolicy] = None,
                    strict: Optional[bool] = None,
                    baseline: Optional[EngineRunResult] = None
                    ) -> FaultedRunResult:
    """Run a workload with faults injected into the simulation.

    ``baseline`` lets callers sweeping several plans over one scenario
    reuse a single fault-free run instead of re-running it per plan.
    """
    if baseline is None:
        baseline = run_once(engine_name, workload, config, seed=seed,
                            strict=strict)
    if not baseline.success:
        raise RuntimeError(
            f"fault-free baseline failed ({baseline.failure}); pick a "
            f"configuration that succeeds before injecting faults")
    resolved = plan.resolve(baseline.duration)

    checker = InvariantChecker() if strict_enabled(strict) else None
    cluster = Cluster(config.nodes, seed=seed)
    state = FaultState(cluster)
    cluster.fault_state = state
    if checker is not None:
        checker.attach(cluster)
    hdfs = HDFS(cluster, block_size=config.hdfs_block_size, seed=seed)
    for path, size in workload.input_files():
        hdfs.create_file(path, size)
    timeline = FaultTimeline()
    injector = FaultInjector(cluster, resolved, state, timeline)
    injector.arm()

    restarts: List[Tuple[float, float]] = []
    if engine_name == "spark":
        engine = SparkEngine(cluster, hdfs, config.spark)
        engine.recovery = SparkRecoveryRuntime(cluster, state, timeline,
                                               retry_policy)
    elif engine_name == "flink":
        engine = FlinkEngine(cluster, hdfs, config.flink)
        restart_policy = restart_policy or FlinkRestartPolicy()
        restart_policy.validate()
    else:
        raise ValueError(f"unknown engine {engine_name!r}")

    merged: Optional[EngineRunResult] = None
    for plan_job in workload.jobs(engine_name):
        if engine_name == "flink":
            result = _flink_job_with_restarts(
                engine, plan_job, cluster, state, timeline,
                restart_policy, restarts)
        else:
            result = engine.run(plan_job)
        merged = _merge(merged, result, workload.name)
        if not result.success:
            break
    assert merged is not None
    merged.sim_events = cluster.sim.steps_executed

    ledger = state.ledger
    faulted = FaultedRunResult(
        engine=engine_name, workload=workload.name, nodes=config.nodes,
        seed=seed, plan=resolved, baseline=baseline, result=merged,
        timeline=timeline, restarts=restarts,
        retried_units=ledger.total_retried,
        retry_attempts=ledger.total_attempts,
        speculative_waste=ledger.total_speculative_waste,
        capacity_traces=state.capacity_payload(),
        ledger=ledger.payload())

    if checker is not None:
        checker.audit_cluster(cluster)
        checker.audit_engine(engine)
        checker.audit_result(merged)
        max_attempts = None
        if engine_name == "spark":
            max_attempts = (retry_policy or RetryPolicy()).max_retries
        checker.audit_faults(state, max_attempts=max_attempts)
        checker.require_clean(
            f"faulted {engine_name}/{workload.name} x{config.nodes} "
            f"seed={seed}")
        checker.detach(cluster)
    return faulted


# ----------------------------------------------------------------------
# differential check: simulated recovery vs the analytic estimate
# ----------------------------------------------------------------------
@dataclass
class FaultComparison:
    """Simulated vs analytic recovery cost for a single node crash."""

    simulated: FaultedRunResult
    analytic: FaultRecoveryResult

    @property
    def simulated_total(self) -> float:
        return self.simulated.faulted_duration

    @property
    def analytic_total(self) -> float:
        return self.analytic.total_seconds

    @property
    def relative_gap(self) -> float:
        """(simulated - analytic) / analytic."""
        if self.analytic_total <= 0:
            return math.nan
        return (self.simulated_total - self.analytic_total) / \
            self.analytic_total

    def describe(self) -> str:
        return (f"{self.simulated.engine}/{self.simulated.workload}: "
                f"simulated {self.simulated_total:.1f}s vs analytic "
                f"{self.analytic_total:.1f}s "
                f"({100 * self.relative_gap:+.1f}%)")


def compare_with_analytic(engine_name: str, workload: Workload,
                          config: ExperimentConfig,
                          fail_at_fraction: float = 0.5,
                          node: int = 0, seed: int = 0,
                          strict: Optional[bool] = None) -> FaultComparison:
    """Run the single-crash scenario both ways.

    The simulated side uses process-kill semantics
    (``restart_after=0``: work and local outputs are lost, the machine
    rejoins immediately) and zero scheduling delays, matching the
    assumptions of the analytic model, which knows nothing of backoff
    or restart delays.  The documented agreement tolerance lives in the
    differential tests (``tests/faults/``).
    """
    plan = FaultPlan.single_crash(fail_at_fraction, node=node,
                                  restart_after=0.0)
    simulated = run_with_faults(
        engine_name, workload, config, plan, seed=seed,
        retry_policy=RetryPolicy(backoff=0.0),
        restart_policy=FlinkRestartPolicy(restart_delay=0.0),
        strict=strict)
    analytic = run_with_failure(engine_name, workload, config,
                                fail_at_fraction=fail_at_fraction,
                                seed=seed)
    return FaultComparison(simulated=simulated, analytic=analytic)
