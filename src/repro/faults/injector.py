"""Fault injection: plan events become kernel processes.

The :class:`FaultInjector` arms one simulation process per plan event.
When an event fires it mutates the *running* simulation:

* **crash** — every in-flight flow touching the node's capacities is
  aborted (with its partial progress credited to the byte-conservation
  ledger), every process executing work on the node is interrupted,
  and all four capacities collapse to ``DEAD_FRACTION`` of their
  baseline bandwidth;
* **slowdown / partition** — the affected capacities are rescaled
  mid-run; the fluid scheduler re-solves max–min rates for every flow
  crossing them, so stragglers emerge from the same physics as healthy
  contention;
* **memory pressure** — an external reservation pins part of the
  node's RAM for the event's duration.

Everything the injector does is recorded in a :class:`FaultTimeline`
(for the recovery figures and digests) and mirrored in the cluster's
:class:`~repro.faults.state.FaultState` degraded-capacity traces (for
strict-mode audits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from ..cluster.topology import Cluster
from ..engines.common.execution import TaskLostError
from .plan import (DiskSlowdown, FaultEvent, FaultPlan, MemoryPressure,
                   NetworkPartition, NodeCrash)
from .state import DEAD_FRACTION, RESOURCES, FaultState

__all__ = ["FaultInjector", "FaultTimeline", "TimelineEntry"]


@dataclass(frozen=True)
class TimelineEntry:
    """One thing that happened during a faulted run."""

    time: float
    kind: str
    node: int
    detail: str

    def payload(self) -> Dict[str, Any]:
        return {"time": self.time, "kind": self.kind, "node": self.node,
                "detail": self.detail}


class FaultTimeline:
    """Ordered record of injections, recoveries and restarts."""

    def __init__(self) -> None:
        self.entries: List[TimelineEntry] = []

    def record(self, time: float, kind: str, node: int, detail: str) -> None:
        self.entries.append(TimelineEntry(time, kind, node, detail))

    def of_kind(self, kind: str) -> List[TimelineEntry]:
        return [e for e in self.entries if e.kind == kind]

    def payload(self) -> List[Dict[str, Any]]:
        return [e.payload() for e in self.entries]

    def describe(self) -> str:
        if not self.entries:
            return "fault timeline: (empty)"
        lines = ["fault timeline:"]
        for e in self.entries:
            lines.append(f"  t={e.time:9.2f}s node {e.node}: "
                         f"{e.kind} ({e.detail})")
        return "\n".join(lines)


class FaultInjector:
    """Arms a resolved (absolute-time) fault plan on a cluster."""

    def __init__(self, cluster: Cluster, plan: FaultPlan, state: FaultState,
                 timeline: FaultTimeline) -> None:
        if plan.relative:
            raise ValueError("arm a resolved plan (call plan.resolve first)")
        plan.validate_against(cluster.num_nodes)
        self.cluster = cluster
        self.plan = plan
        self.state = state
        self.timeline = timeline

    def arm(self) -> None:
        """Spawn one kernel process per plan event (call before running
        any work; event times are absolute simulated seconds)."""
        for ev in sorted(self.plan.events,
                         key=lambda e: (e.at, e.node, e.kind)):
            self.cluster.sim.process(self._event_proc(ev))

    # ------------------------------------------------------------------
    def _event_proc(self, ev: FaultEvent):
        sim = self.cluster.sim
        delay = ev.at - sim.now
        if delay > 0:
            yield sim.timeout(delay)
        if isinstance(ev, NodeCrash):
            yield from self._crash(ev)
        elif isinstance(ev, NetworkPartition):
            yield from self._degrade(ev, ("nic_in", "nic_out"),
                                     1.0 / DEAD_FRACTION, ev.duration)
        elif isinstance(ev, DiskSlowdown):  # also NicSlowdown (subclass)
            yield from self._degrade(ev, ev.resources, ev.factor,
                                     ev.duration)
        elif isinstance(ev, MemoryPressure):
            yield from self._memory_pressure(ev)
        else:  # pragma: no cover - plan validation rejects unknown kinds
            raise TypeError(f"unhandled fault event {ev!r}")

    # ------------------------------------------------------------------
    def _kill_node_work(self, node_index: int, error: TaskLostError) -> int:
        """Abort the node's in-flight flows and interrupt its work."""
        node = self.cluster.node(node_index)
        caps = [node.capacity_for(res) for res in RESOURCES]
        flows = self.cluster.fluid.flows_on(caps)
        aborted = self.cluster.fluid.abort_flows(flows, error)
        interrupted = 0
        for proc in self.state.procs_on(node_index):
            proc.interrupt(error)
            interrupted += 1
        return aborted + interrupted

    def _set_fraction(self, node_index: int, resource: str,
                      fraction: float) -> None:
        node = self.cluster.node(node_index)
        cap = node.capacity_for(resource)
        self.cluster.fluid.rescale_capacity(
            cap, node.baseline_bandwidth(resource) * fraction)
        self.state.record_capacity(node_index, resource, fraction)

    # ------------------------------------------------------------------
    def _crash(self, ev: NodeCrash):
        sim = self.cluster.sim
        node = self.cluster.node(ev.node)
        revival = None if ev.restart_after is None else \
            sim.now + ev.restart_after
        self.state.mark_dead(ev.node, revival_time=revival)
        self.state.pending_lineage.add(ev.node)
        error = TaskLostError(
            f"node {node.name} crashed at t={sim.now:.2f}s")
        # Work killed *on* the crashed node loses its locally-stored
        # outputs even if the machine rejoins instantly; collateral
        # victims on other nodes (e.g. a replication pipeline crossing
        # the dead NIC) keep theirs.  Settlement keys off this marker.
        error.crashed_node = ev.node
        killed = self._kill_node_work(ev.node, error)
        for res in RESOURCES:
            self._set_fraction(ev.node, res, DEAD_FRACTION)
        self.timeline.record(sim.now, "node_crash", ev.node,
                             f"{killed} task(s)/flow(s) killed, revival="
                             f"{'never' if revival is None else f'{revival:.2f}s'}")
        if ev.restart_after is not None:
            yield sim.timeout(ev.restart_after)
            self.state.mark_alive(ev.node)
            for res in RESOURCES:
                self._set_fraction(ev.node, res, 1.0)
            self.timeline.record(sim.now, "node_restart", ev.node,
                                 "machine rejoined the cluster")
        return

    def _degrade(self, ev: FaultEvent, resources, factor: float, duration):
        sim = self.cluster.sim
        fraction = 1.0 / factor
        for res in resources:
            self._set_fraction(ev.node, res, fraction)
        self.timeline.record(sim.now, ev.kind, ev.node,
                             f"{'/'.join(resources)} at {fraction:.2g}x "
                             f"for {'ever' if duration is None else f'{duration:.2f}s'}")
        if duration is None:
            return
        yield sim.timeout(duration)
        if not self.state.alive[ev.node]:
            # The node crashed during the window: leave it dead; a
            # later restart restores full bandwidth itself.
            return
        for res in resources:
            self._set_fraction(ev.node, res, 1.0)
        self.timeline.record(sim.now, f"{ev.kind}_healed", ev.node,
                             f"{'/'.join(resources)} restored")

    def _memory_pressure(self, ev: MemoryPressure):
        sim = self.cluster.sim
        node = self.cluster.node(ev.node)
        amount = min(ev.fraction * node.spec.memory_bytes, node.memory.free)
        reserved = amount > 0 and node.memory.try_reserve(amount)
        self.timeline.record(
            sim.now, "memory_pressure", ev.node,
            f"pinned {amount / 2**30:.1f} GiB for {ev.duration:.2f}s"
            if reserved else "no free memory to pin")
        yield sim.timeout(ev.duration)
        if reserved:
            node.memory.release(amount)
            self.timeline.record(sim.now, "memory_pressure_released",
                                 ev.node, f"released {amount / 2**30:.1f} GiB")
