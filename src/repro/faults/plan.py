"""Deterministic fault-plan DSL.

A :class:`FaultPlan` is an immutable, validated list of fault events
with either absolute injection times (simulated seconds) or *relative*
times (fractions of a fault-free baseline duration, resolved by
:meth:`FaultPlan.resolve`).  Plans are pure data: the same plan plus the
same seed always produces the same simulated run, which is what the
same-seed digest-equality property tests pin down.

Event kinds map to the failure modes the fault-tolerance literature
(and the paper's §VIII remark on FLINK-2250) cares about:

* :class:`NodeCrash` — the node's JVMs die and all its local task
  output is lost; optionally the machine returns after
  ``restart_after`` seconds;
* :class:`DiskSlowdown` / :class:`NicSlowdown` — a straggler: the
  resource delivers ``1/factor`` of its bandwidth, permanently or for
  ``duration`` seconds;
* :class:`NetworkPartition` — both NIC directions drop to (almost)
  zero for ``duration`` seconds; in-flight transfers stall and resume,
  they are not killed;
* :class:`MemoryPressure` — an external allocation pins ``fraction``
  of the node's RAM for ``duration`` seconds; work that no longer fits
  dies with a (non-retryable) OOM, exactly like the paper's Table VII
  failures.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields
from typing import Any, ClassVar, Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "FaultEvent", "NodeCrash", "DiskSlowdown", "NicSlowdown",
    "NetworkPartition", "MemoryPressure", "FaultPlan",
]


@dataclass(frozen=True)
class FaultEvent:
    """Base: something bad happening to one node at one time."""

    kind: ClassVar[str] = "fault"

    at: float
    node: int

    def validate(self) -> None:
        if self.at < 0:
            raise ValueError(f"{self.kind}: injection time {self.at} < 0")
        if self.node < 0:
            raise ValueError(f"{self.kind}: node index {self.node} < 0")

    def payload(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind}
        for f in fields(self):
            out[f.name] = getattr(self, f.name)
        return out

    def with_time(self, at: float) -> "FaultEvent":
        cls = type(self)
        kwargs = {f.name: getattr(self, f.name) for f in fields(self)}
        kwargs["at"] = at
        return cls(**kwargs)

    def describe(self) -> str:
        return f"t={self.at:.1f}s node {self.node}: {self.kind}"


@dataclass(frozen=True)
class NodeCrash(FaultEvent):
    """The node's executor/taskmanager processes die.

    All in-flight and locally-stored task output on the node is lost
    (Spark recomputes it from lineage, Flink 0.10 restarts the job).
    ``restart_after=None`` means the machine never comes back;
    ``restart_after=0.0`` models a bare process kill — the work is
    lost but the machine rejoins immediately.
    """

    kind: ClassVar[str] = "node_crash"

    restart_after: Optional[float] = None

    def validate(self) -> None:
        super().validate()
        if self.restart_after is not None and self.restart_after < 0:
            raise ValueError(f"{self.kind}: restart_after < 0")


@dataclass(frozen=True)
class DiskSlowdown(FaultEvent):
    """The node's disk becomes a straggler at ``bandwidth / factor``."""

    kind: ClassVar[str] = "disk_slowdown"

    factor: float = 4.0
    duration: Optional[float] = None

    resources: ClassVar[Tuple[str, ...]] = ("disk",)

    def validate(self) -> None:
        super().validate()
        if self.factor < 1.0:
            raise ValueError(f"{self.kind}: factor must be >= 1")
        if self.duration is not None and self.duration <= 0:
            raise ValueError(f"{self.kind}: duration must be > 0")


@dataclass(frozen=True)
class NicSlowdown(DiskSlowdown):
    """Both NIC directions degrade to ``bandwidth / factor``."""

    kind: ClassVar[str] = "nic_slowdown"

    resources: ClassVar[Tuple[str, ...]] = ("nic_in", "nic_out")


@dataclass(frozen=True)
class NetworkPartition(FaultEvent):
    """The node drops off the network for ``duration`` seconds.

    In-flight transfers crossing its NIC stall at (almost) zero rate
    and resume when the partition heals — transient-partition
    semantics, not a crash.
    """

    kind: ClassVar[str] = "network_partition"

    duration: float = 0.0

    def validate(self) -> None:
        super().validate()
        if self.duration <= 0:
            raise ValueError(f"{self.kind}: duration must be > 0 "
                             f"(a partition must heal; use NodeCrash for "
                             f"a permanent loss)")


@dataclass(frozen=True)
class MemoryPressure(FaultEvent):
    """An external process pins ``fraction`` of the node's RAM."""

    kind: ClassVar[str] = "memory_pressure"

    duration: float = 0.0
    fraction: float = 0.5

    def validate(self) -> None:
        super().validate()
        if self.duration <= 0:
            raise ValueError(f"{self.kind}: duration must be > 0")
        if not 0.0 < self.fraction < 1.0:
            raise ValueError(f"{self.kind}: fraction must be in (0, 1)")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of fault events.

    ``relative=True`` means every event's ``at`` (and durations /
    restart delays) are *fractions of a baseline run's duration*;
    :meth:`resolve` converts them to absolute simulated seconds once
    the baseline is known.
    """

    events: Tuple[FaultEvent, ...] = ()
    relative: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        self.validate()

    # ------------------------------------------------------------------
    def validate(self) -> None:
        for ev in self.events:
            if not isinstance(ev, FaultEvent):
                raise TypeError(f"not a FaultEvent: {ev!r}")
            ev.validate()
            if self.relative and ev.at >= 1.0:
                raise ValueError(
                    f"relative plan: event time {ev.at} must be a fraction "
                    f"in [0, 1) of the baseline duration")

    def validate_against(self, num_nodes: int) -> None:
        for ev in self.events:
            if ev.node >= num_nodes:
                raise ValueError(
                    f"{ev.kind} targets node {ev.node} but the cluster has "
                    f"only {num_nodes} nodes")

    # ------------------------------------------------------------------
    def resolve(self, baseline_duration: float) -> "FaultPlan":
        """Convert a relative plan into absolute simulated seconds."""
        if not self.relative:
            return self
        if baseline_duration <= 0:
            raise ValueError("baseline duration must be > 0")
        resolved = []
        for ev in self.events:
            kwargs = {f.name: getattr(ev, f.name) for f in fields(ev)}
            kwargs["at"] = ev.at * baseline_duration
            # Durations and restart delays scale with the baseline too,
            # so one relative plan transfers across workload sizes.
            for key in ("duration", "restart_after"):
                if key in kwargs and kwargs[key] is not None:
                    kwargs[key] = kwargs[key] * baseline_duration
            resolved.append(type(ev)(**kwargs))
        return FaultPlan(events=tuple(resolved), relative=False)

    # ------------------------------------------------------------------
    def payload(self) -> Dict[str, Any]:
        return {
            "relative": self.relative,
            "events": [ev.payload() for ev in
                       sorted(self.events, key=lambda e: (e.at, e.node,
                                                          e.kind))],
        }

    def digest(self) -> str:
        from ..validation.digest import canonical
        return hashlib.sha256(
            canonical(self.payload()).encode()).hexdigest()

    def describe(self) -> str:
        if not self.events:
            return "fault plan: (empty)"
        unit = "x baseline" if self.relative else "s"
        lines = [f"fault plan ({len(self.events)} event(s), times in {unit}):"]
        for ev in sorted(self.events, key=lambda e: (e.at, e.node, e.kind)):
            lines.append(f"  {ev.describe()}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def single_crash(fail_at_fraction: float, node: int = 0,
                     restart_after: Optional[float] = None) -> "FaultPlan":
        """One node crash at a fraction of the baseline duration — the
        scenario the analytic :func:`repro.harness.faults.
        run_with_failure` estimates."""
        if not 0.0 < fail_at_fraction < 1.0:
            raise ValueError("fail_at_fraction must be in (0, 1)")
        return FaultPlan(events=(
            NodeCrash(at=fail_at_fraction, node=node,
                      restart_after=restart_after),), relative=True)

    @staticmethod
    def random(seed: int, num_nodes: int, num_events: int = 3,
               kinds: Sequence[str] = ("node_crash", "disk_slowdown",
                                       "nic_slowdown", "network_partition"),
               ) -> "FaultPlan":
        """A seeded random relative plan (for property tests / sweeps)."""
        rng = np.random.default_rng(seed)
        events = []
        for _ in range(num_events):
            kind = kinds[int(rng.integers(0, len(kinds)))]
            at = float(rng.uniform(0.05, 0.9))
            node = int(rng.integers(0, num_nodes))
            if kind == "node_crash":
                events.append(NodeCrash(at=at, node=node))
            elif kind == "disk_slowdown":
                events.append(DiskSlowdown(
                    at=at, node=node, factor=float(rng.uniform(2.0, 8.0)),
                    duration=float(rng.uniform(0.05, 0.3))))
            elif kind == "nic_slowdown":
                events.append(NicSlowdown(
                    at=at, node=node, factor=float(rng.uniform(2.0, 8.0)),
                    duration=float(rng.uniform(0.05, 0.3))))
            elif kind == "network_partition":
                events.append(NetworkPartition(
                    at=at, node=node,
                    duration=float(rng.uniform(0.02, 0.1))))
            else:
                raise ValueError(f"unknown kind {kind!r}")
        return FaultPlan(events=tuple(events), relative=True)
