"""Cluster-wide fault bookkeeping.

:class:`FaultState` is attached to a :class:`~repro.cluster.topology.
Cluster` (as ``cluster.fault_state``) for fault-injected runs.  It
tracks node liveness, scheduler blacklists, per-node degraded-capacity
traces (fractions of baseline bandwidth over time, for the monitoring
panels and strict audits) and the processes currently executing work on
each node (so the injector can interrupt exactly the affected work).

:class:`TaskLedger` is the conservation proof for recovery: every stage
opens an account of 1.0 work units, survivors commit their fractional
shares, lost shares are debited and re-credited when re-executed, and
strict mode requires each closed account to balance — retries never
lose or duplicate task work.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..cluster.trace import StepSeries

__all__ = ["FaultState", "TaskLedger"]

#: Bandwidth fraction a "dead" resource keeps.  Exactly zero would make
#: any straggling flow take infinite simulated time; a 1e-6 fraction
#: keeps every duration finite while contributing negligible capacity.
DEAD_FRACTION = 1e-6

RESOURCES = ("cpu", "disk", "nic_in", "nic_out")


class TaskLedger:
    """Work-conservation accounting for recovered stages.

    Work is measured in *fractions of a stage* (each stage plans 1.0
    units).  The scalarisation of per-node resource shares into
    fractions lives in the recovery runtime; the ledger only requires
    that commits and debits use the same measure, which is what makes
    the balance check unit-independent.
    """

    def __init__(self) -> None:
        self.accounts: Dict[str, Dict[str, float]] = {}

    def open(self, key: str, planned: float = 1.0) -> None:
        if key in self.accounts:
            raise ValueError(f"ledger account {key!r} already open")
        self.accounts[key] = {"planned": planned, "committed": 0.0,
                              "retried": 0.0, "lost": 0.0,
                              "speculative_waste": 0.0, "attempts": 0.0,
                              "closed": 0.0}

    def commit(self, key: str, units: float) -> None:
        self.accounts[key]["committed"] += units

    def lose(self, key: str, units: float) -> None:
        """Record completed work whose outputs were destroyed (it must
        be committed again by a re-execution)."""
        self.accounts[key]["committed"] -= units
        self.accounts[key]["lost"] += units

    def retry(self, key: str, units: float) -> None:
        self.accounts[key]["retried"] += units
        self.accounts[key]["attempts"] += 1

    def waste(self, key: str, units: float) -> None:
        """Speculative duplicate work (never committed)."""
        self.accounts[key]["speculative_waste"] += units

    def close(self, key: str) -> None:
        self.accounts[key]["closed"] = 1.0

    # ------------------------------------------------------------------
    @property
    def total_retried(self) -> float:
        return sum(acc["retried"] for acc in self.accounts.values())

    @property
    def total_attempts(self) -> int:
        return int(sum(acc["attempts"] for acc in self.accounts.values()))

    @property
    def total_speculative_waste(self) -> float:
        return sum(acc["speculative_waste"] for acc in
                   self.accounts.values())

    def audit(self, tolerance: float = 1e-6,
              max_attempts: Optional[int] = None) -> List[str]:
        """Balance every closed account; bound attempts by the policy."""
        problems = []
        for key, acc in sorted(self.accounts.items()):
            if not acc["closed"]:
                continue
            drift = abs(acc["committed"] - acc["planned"])
            if drift > tolerance * max(1.0, acc["planned"]):
                problems.append(
                    f"ledger {key}: committed {acc['committed']:.9f} of "
                    f"{acc['planned']:.9f} planned units "
                    f"(retries lost or duplicated work)")
            if acc["retried"] < -tolerance or acc["lost"] < -tolerance:
                problems.append(f"ledger {key}: negative retry/lost units")
            if max_attempts is not None and acc["attempts"] > max_attempts:
                problems.append(
                    f"ledger {key}: {acc['attempts']:.0f} attempts exceed "
                    f"the retry policy's {max_attempts}")
        return problems

    def payload(self) -> Dict[str, Dict[str, float]]:
        return {key: dict(acc) for key, acc in sorted(self.accounts.items())}


class FaultState:
    """Liveness, blacklists, degraded capacities and running work."""

    def __init__(self, cluster) -> None:
        self.cluster = cluster
        n = cluster.num_nodes
        self.alive: List[bool] = [True] * n
        self.blacklisted: set = set()
        #: node -> absolute time the machine returns (None = never),
        #: recorded by the injector when a crash fires.
        self.revival_time: Dict[int, Optional[float]] = {}
        #: Per-node per-resource bandwidth fraction over time (1.0 =
        #: healthy).  Series exist only for nodes a fault ever touched.
        self.capacity_traces: Dict[Tuple[int, str], StepSeries] = {}
        #: Failure count per node (drives blacklisting).
        self.failure_counts: Dict[int, int] = {}
        #: Nodes that crashed and whose completed-stage outputs have not
        #: been recomputed from lineage yet (consumed by the Spark
        #: recovery runtime; survives an instant machine restart).
        self.pending_lineage: set = set()
        self._procs: Dict[int, List] = {i: [] for i in range(n)}
        self.ledger = TaskLedger()
        self.crash_count = 0

    # ------------------------------------------------------------------
    # process registry (who is running work on which node)
    # ------------------------------------------------------------------
    def register(self, node_index: int, proc) -> None:
        procs = self._procs[node_index]
        # Prune completed processes lazily so the registry stays small.
        procs[:] = [p for p in procs if not p.triggered]
        procs.append(proc)

    def procs_on(self, node_index: int) -> List:
        return [p for p in self._procs[node_index] if not p.triggered]

    def all_procs(self) -> List:
        out = []
        for i in sorted(self._procs):
            out.extend(self.procs_on(i))
        return out

    # ------------------------------------------------------------------
    # liveness
    # ------------------------------------------------------------------
    def mark_dead(self, node_index: int,
                  revival_time: Optional[float] = None) -> None:
        self.alive[node_index] = False
        self.revival_time[node_index] = revival_time
        self.crash_count += 1

    def mark_alive(self, node_index: int) -> None:
        self.alive[node_index] = True
        self.revival_time.pop(node_index, None)

    def alive_indices(self) -> List[int]:
        return [i for i, a in enumerate(self.alive) if a]

    def dead_indices(self) -> List[int]:
        return [i for i, a in enumerate(self.alive) if not a]

    def schedulable_indices(self) -> List[int]:
        """Alive and not blacklisted — where recovery may place work."""
        out = [i for i in self.alive_indices() if i not in self.blacklisted]
        # A fully-blacklisted cluster must still make progress: Spark
        # ignores the blacklist when no other executor is available.
        return out or self.alive_indices()

    def note_failure(self, node_index: int) -> int:
        self.failure_counts[node_index] = \
            self.failure_counts.get(node_index, 0) + 1
        return self.failure_counts[node_index]

    def latest_revival(self, nodes) -> Optional[float]:
        """Latest return time among the given dead nodes; None if any
        of them never comes back."""
        latest = 0.0
        for ni in nodes:
            t = self.revival_time.get(ni)
            if t is None:
                return None
            latest = max(latest, t)
        return latest

    # ------------------------------------------------------------------
    # degraded-capacity traces
    # ------------------------------------------------------------------
    def record_capacity(self, node_index: int, resource: str,
                        fraction: float) -> None:
        series = self.capacity_traces.get((node_index, resource))
        if series is None:
            series = StepSeries(initial=1.0)
            self.capacity_traces[(node_index, resource)] = series
        series.append(self.cluster.now, fraction)

    def capacity_payload(self) -> Dict[str, List[Tuple[float, float]]]:
        return {f"node-{ni:03d}.{res}": list(series)
                for (ni, res), series in sorted(self.capacity_traces.items())}

    def __repr__(self) -> str:
        dead = self.dead_indices()
        return (f"FaultState(alive={len(self.alive_indices())}/"
                f"{len(self.alive)}, dead={dead}, "
                f"blacklisted={sorted(self.blacklisted)})")
