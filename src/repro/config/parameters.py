"""Typed configuration of both frameworks (paper §IV).

The paper identifies four parameter groups "having a major influence on
the overall execution time, scalability and resource consumption":
task parallelism, shuffle/network behaviour, memory management and data
serialization.  :class:`SparkConfig` and :class:`FlinkConfig` expose
exactly those knobs under their paper names (see each field's comment),
with the frameworks' 2015-era defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..engines.common.serialization import Serializer

__all__ = ["SparkConfig", "FlinkConfig", "ConfigError"]

KiB = 1024
GiB = 2**30


class ConfigError(ValueError):
    pass


@dataclass(frozen=True)
class SparkConfig:
    """Spark 1.5.3 configuration surface used in the study."""

    #: ``spark.default.parallelism`` — partitions of shuffled RDDs.  The
    #: paper sets it to cores x nodes x (2..6).
    default_parallelism: int = 16
    #: ``spark.executor.memory`` — the whole executor heap (bytes).
    executor_memory: float = 22 * GiB
    #: ``spark.storage.memoryFraction`` — heap share for cached RDDs.
    storage_fraction: float = 0.6
    #: ``spark.shuffle.memoryFraction`` — heap share for shuffle buffers.
    shuffle_fraction: float = 0.2
    #: ``spark.serializer`` — Java by default, optionally Kryo.
    serializer: Serializer = Serializer.JAVA
    #: ``spark.shuffle.manager`` — the paper always uses tungsten-sort.
    shuffle_manager: str = "tungsten-sort"
    #: ``spark.shuffle.file.buffer`` (bytes).
    shuffle_file_buffer: int = 32 * KiB
    #: ``spark.shuffle.consolidateFiles`` — enabled in all experiments.
    shuffle_consolidate_files: bool = True
    #: ``spark.shuffle.compress`` — map output compression.
    shuffle_compress: bool = True
    #: GraphX edge partitions (``spark.edge.partition`` in the paper).
    edge_partitions: Optional[int] = None
    #: Executor cores per node (the testbed exposes all 16).
    executor_cores: int = 16

    def __post_init__(self) -> None:
        if self.default_parallelism < 1:
            raise ConfigError("default_parallelism must be >= 1")
        if self.executor_memory <= 0:
            raise ConfigError("executor_memory must be positive")
        if not 0 < self.storage_fraction < 1:
            raise ConfigError("storage_fraction must be in (0, 1)")
        if not 0 < self.shuffle_fraction < 1:
            raise ConfigError("shuffle_fraction must be in (0, 1)")
        if self.storage_fraction + self.shuffle_fraction >= 1.0:
            raise ConfigError("storage + shuffle fractions must leave heap "
                              "room for execution")
        if self.shuffle_manager not in ("sort", "hash", "tungsten-sort"):
            raise ConfigError(f"unknown shuffle manager {self.shuffle_manager!r}")
        if self.shuffle_file_buffer < 1024:
            raise ConfigError("shuffle_file_buffer must be >= 1 KiB")
        if self.executor_cores < 1:
            raise ConfigError("executor_cores must be >= 1")
        if self.edge_partitions is not None and self.edge_partitions < 1:
            raise ConfigError("edge_partitions must be >= 1")

    @property
    def storage_memory(self) -> float:
        return self.executor_memory * self.storage_fraction

    @property
    def shuffle_memory(self) -> float:
        return self.executor_memory * self.shuffle_fraction

    def with_(self, **kw) -> "SparkConfig":
        return replace(self, **kw)


@dataclass(frozen=True)
class FlinkConfig:
    """Flink 0.10.2 configuration surface used in the study."""

    #: ``parallelism.default`` — the paper sets it to cores x nodes
    #: (all task slots), sometimes fewer to give operators more memory.
    default_parallelism: int = 16
    #: ``taskmanager.heap.mb`` equivalent — total task manager memory.
    taskmanager_memory: float = 4 * GiB
    #: ``taskmanager.memory.fraction`` — share managed by Flink for
    #: sorting, hash tables and caching of intermediate results.
    memory_fraction: float = 0.7
    #: ``taskmanager.memory.off-heap`` — hybrid on/off-heap allocation.
    off_heap: bool = True
    #: ``taskmanager.network.numberOfBuffers`` (per task manager).
    network_buffers: int = 2048
    #: ``taskmanager.network.bufferSizeInBytes``.
    buffer_size: int = 32 * KiB
    #: ``taskmanager.numberOfTaskSlots`` per node.
    task_slots: int = 16

    def __post_init__(self) -> None:
        if self.default_parallelism < 1:
            raise ConfigError("default_parallelism must be >= 1")
        if self.taskmanager_memory <= 0:
            raise ConfigError("taskmanager_memory must be positive")
        if not 0 < self.memory_fraction < 1:
            raise ConfigError("memory_fraction must be in (0, 1)")
        if self.network_buffers < 1:
            raise ConfigError("network_buffers must be >= 1")
        if self.buffer_size < 1024:
            raise ConfigError("buffer_size must be >= 1 KiB")
        if self.task_slots < 1:
            raise ConfigError("task_slots must be >= 1")

    @property
    def managed_memory(self) -> float:
        """Memory managed by Flink for sort/hash/cache."""
        return self.taskmanager_memory * self.memory_fraction

    @property
    def heap_memory(self) -> float:
        """The JVM-heap portion (user objects)."""
        return self.taskmanager_memory * (1.0 - self.memory_fraction)

    @property
    def network_buffer_memory(self) -> float:
        return float(self.network_buffers * self.buffer_size)

    def with_(self, **kw) -> "FlinkConfig":
        return replace(self, **kw)
