"""The paper's published parameter settings (Tables II, III, V and VI).

Each function returns the pair ``(SparkConfig, FlinkConfig)`` plus any
experiment-level settings (HDFS block size) for one experiment family,
exactly as printed in the paper.  Values outside the published tables
follow the paper's stated formulas (e.g. Table V's
``spark.def.parallelism = nodes * cores * 6``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .parameters import ConfigError, FlinkConfig, SparkConfig

__all__ = [
    "ExperimentConfig",
    "wordcount_grep_preset", "terasort_preset",
    "kmeans_preset", "small_graph_preset", "medium_graph_preset",
    "large_graph_preset",
    "CORES_PER_NODE",
]

KiB = 1024
MiB = 2**20
GiB = 2**30

CORES_PER_NODE = 16


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything the harness needs to configure one run."""

    spark: SparkConfig
    flink: FlinkConfig
    hdfs_block_size: float
    nodes: int


# ----------------------------------------------------------------------
# Table II — Word Count and Grep (fixed 24 GB per node).
# ----------------------------------------------------------------------
_TABLE_II_SPARK_PARALLELISM: Dict[int, int] = {
    2: 192, 4: 384, 8: 768, 16: 1536, 32: 1024,
}
_TABLE_II_FLINK_PARALLELISM: Dict[int, int] = {
    2: 32, 4: 64, 8: 128, 16: 256, 32: 512,
}
_TABLE_II_FLINK_MEMORY_GB: Dict[int, float] = {
    2: 4, 4: 4, 8: 4, 16: 4, 32: 11,
}


def wordcount_grep_preset(nodes: int) -> ExperimentConfig:
    """Table II settings; interpolated by formula off-table."""
    spark_par = _TABLE_II_SPARK_PARALLELISM.get(
        nodes, nodes * CORES_PER_NODE * 6)
    flink_par = _TABLE_II_FLINK_PARALLELISM.get(nodes, nodes * CORES_PER_NODE)
    flink_mem = _TABLE_II_FLINK_MEMORY_GB.get(nodes, 4 if nodes < 32 else 11)
    spark = SparkConfig(
        default_parallelism=spark_par,
        executor_memory=22 * GiB,
        shuffle_file_buffer=64 * KiB,
    )
    flink = FlinkConfig(
        default_parallelism=flink_par,
        taskmanager_memory=flink_mem * GiB,
        network_buffers=nodes * 2048,
        buffer_size=64 * KiB,
        task_slots=CORES_PER_NODE,
    )
    return ExperimentConfig(spark=spark, flink=flink,
                            hdfs_block_size=256 * MiB, nodes=nodes)


# ----------------------------------------------------------------------
# Table III — Tera Sort.
# ----------------------------------------------------------------------
_TABLE_III_SPARK_PARALLELISM: Dict[int, int] = {
    17: 544, 34: 1088, 63: 1984, 55: 1760, 73: 2336, 97: 3104,
}
_TABLE_III_FLINK_PARALLELISM: Dict[int, int] = {
    17: 134, 34: 270, 63: 500, 55: 475, 73: 580, 97: 750,
}


def terasort_preset(nodes: int) -> ExperimentConfig:
    """Table III settings: 62 GB memory both; 1024 MB blocks;
    partitions equal to the Flink parallelism."""
    spark_par = _TABLE_III_SPARK_PARALLELISM.get(nodes, nodes * CORES_PER_NODE * 2)
    flink_par = _TABLE_III_FLINK_PARALLELISM.get(
        nodes, max(1, nodes * CORES_PER_NODE // 2))
    spark = SparkConfig(
        default_parallelism=spark_par,
        executor_memory=62 * GiB,
        shuffle_file_buffer=128 * KiB,
        # "the fractions of the JVM heap used for storage and shuffle
        # are statically initialized ... to ensure enough shuffling
        # space" (§IV-C): Tera Sort caches nothing and shuffles
        # everything.
        storage_fraction=0.1,
        shuffle_fraction=0.6,
    )
    flink = FlinkConfig(
        default_parallelism=flink_par,
        taskmanager_memory=62 * GiB,
        network_buffers=nodes * 1024,
        buffer_size=128 * KiB,
        # "half the number of cores in order to match the number of
        # custom partitions, otherwise Flink fails due to insufficient
        # task slots"
        task_slots=CORES_PER_NODE,
    )
    return ExperimentConfig(spark=spark, flink=flink,
                            hdfs_block_size=1024 * MiB, nodes=nodes)


# ----------------------------------------------------------------------
# K-Means (51 GB dataset, 10 iterations; §VI-D uses up to 24 nodes).
# ----------------------------------------------------------------------
def kmeans_preset(nodes: int) -> ExperimentConfig:
    spark = SparkConfig(
        default_parallelism=nodes * CORES_PER_NODE * 2,
        executor_memory=22 * GiB,
    )
    flink = FlinkConfig(
        default_parallelism=nodes * CORES_PER_NODE,
        taskmanager_memory=18 * GiB,
        network_buffers=nodes * 2048,
        buffer_size=64 * KiB,
        task_slots=CORES_PER_NODE,
    )
    return ExperimentConfig(spark=spark, flink=flink,
                            hdfs_block_size=256 * MiB, nodes=nodes)


# ----------------------------------------------------------------------
# Table V — Small graph formulas.
# ----------------------------------------------------------------------
def small_graph_preset(nodes: int) -> ExperimentConfig:
    spark = SparkConfig(
        default_parallelism=nodes * CORES_PER_NODE * 6,
        executor_memory=22 * GiB,
        edge_partitions=nodes * CORES_PER_NODE,
    )
    flink = FlinkConfig(
        default_parallelism=nodes * CORES_PER_NODE,
        taskmanager_memory=18 * GiB,
        network_buffers=CORES_PER_NODE * CORES_PER_NODE * nodes * 16,
        buffer_size=32 * KiB,
        task_slots=CORES_PER_NODE,
    )
    return ExperimentConfig(spark=spark, flink=flink,
                            hdfs_block_size=256 * MiB, nodes=nodes)


# ----------------------------------------------------------------------
# Table VI — Medium graph.
# ----------------------------------------------------------------------
_TABLE_VI = {
    # nodes: (spark_par, flink_par, spark_mem_gb, flink_mem_gb, edge_parts)
    24: (1440, 288, 22, 18, 1440),
    27: (1620, 297, 96, 18, 256),
    34: (1632, 442, 62, 62, 320),
    55: (2640, 715, 62, 62, 480),
}


def medium_graph_preset(nodes: int) -> ExperimentConfig:
    if nodes not in _TABLE_VI:
        raise ConfigError(f"Table VI defines nodes in {sorted(_TABLE_VI)}, "
                          f"got {nodes}")
    spark_par, flink_par, s_mem, f_mem, edge_parts = _TABLE_VI[nodes]
    spark = SparkConfig(
        default_parallelism=spark_par,
        executor_memory=s_mem * GiB,
        edge_partitions=edge_parts,
    )
    flink = FlinkConfig(
        default_parallelism=flink_par,
        taskmanager_memory=f_mem * GiB,
        network_buffers=CORES_PER_NODE * CORES_PER_NODE * nodes * 16,
        buffer_size=32 * KiB,
        task_slots=CORES_PER_NODE,
    )
    return ExperimentConfig(spark=spark, flink=flink,
                            hdfs_block_size=256 * MiB, nodes=nodes)


# ----------------------------------------------------------------------
# Table VII — Large graph (§VI-E).
# ----------------------------------------------------------------------
def large_graph_preset(nodes: int, *, double_edge_partitions: bool = False,
                       flink_reduced_parallelism: bool = True) -> ExperimentConfig:
    """Large-graph settings as described in the Table VII discussion.

    ``double_edge_partitions``: at 27/44 nodes Spark "processed
    correctly the graph load stage only when we doubled the number of
    edge partitions from a value equal to the total number of cores".

    ``flink_reduced_parallelism``: at 97 nodes Flink's parallelism was
    set "to three quarters of the total number of cores in order to
    allocate more memory to each CoGroup operator".
    """
    total_cores = nodes * CORES_PER_NODE
    edge_parts = total_cores * (2 if double_edge_partitions else 1)
    spark = SparkConfig(
        default_parallelism=total_cores * 2,
        executor_memory=96 * GiB,
        edge_partitions=edge_parts,
    )
    flink_par = (total_cores * 3 // 4) if flink_reduced_parallelism else total_cores
    flink = FlinkConfig(
        default_parallelism=flink_par,
        taskmanager_memory=96 * GiB,
        network_buffers=CORES_PER_NODE * CORES_PER_NODE * nodes * 16,
        buffer_size=32 * KiB,
        task_slots=CORES_PER_NODE,
    )
    return ExperimentConfig(spark=spark, flink=flink,
                            hdfs_block_size=256 * MiB, nodes=nodes)
