"""Framework configuration: typed parameters, published presets and the
§IV configuration advisor."""

from .advisor import Advice, advise_flink, advise_spark
from .parameters import ConfigError, FlinkConfig, SparkConfig
from .presets import (CORES_PER_NODE, ExperimentConfig, kmeans_preset,
                      large_graph_preset, medium_graph_preset,
                      small_graph_preset, terasort_preset,
                      wordcount_grep_preset)

__all__ = [
    "Advice", "CORES_PER_NODE", "ConfigError", "ExperimentConfig",
    "FlinkConfig", "SparkConfig", "advise_flink", "advise_spark",
    "kmeans_preset", "large_graph_preset", "medium_graph_preset",
    "small_graph_preset", "terasort_preset", "wordcount_grep_preset",
]
