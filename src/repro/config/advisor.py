"""Configuration advisor: §IV's guidance as executable checks.

"Making the most out of these frameworks is challenging because
efficient executions strongly rely on complex parameter
configurations" — the paper closes with per-knob take-aways.  The
advisor inspects a configuration against a cluster size and (optionally)
a workload plan and returns the warnings a seasoned operator would
raise, each tagged with the paper section it comes from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from ..engines.common.operators import LogicalPlan, OpKind
from .parameters import FlinkConfig, SparkConfig
from .presets import CORES_PER_NODE

__all__ = ["Advice", "advise_spark", "advise_flink"]

GiB = 2**30


@dataclass(frozen=True)
class Advice:
    """One actionable configuration warning."""

    severity: str          # "fatal" | "warning" | "hint"
    parameter: str
    message: str
    paper_ref: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.parameter}: {self.message}"


def _count_shuffles(plan: Optional[LogicalPlan]) -> int:
    if plan is None:
        return 1
    count = sum(1 for op in plan.ops if op.wide)
    for op in plan.ops:
        if op.body is not None:
            count += sum(1 for b in op.body.ops if b.wide)
    return max(count, 1)


# ----------------------------------------------------------------------
# Spark
# ----------------------------------------------------------------------
def advise_spark(config: SparkConfig, nodes: int,
                 plan: Optional[LogicalPlan] = None,
                 cores_per_node: int = CORES_PER_NODE) -> List[Advice]:
    out: List[Advice] = []
    total_cores = nodes * cores_per_node

    ratio = config.default_parallelism / total_cores
    if ratio < 2.0:
        out.append(Advice(
            "warning", "spark.default.parallelism",
            f"{config.default_parallelism} is {ratio:.1f}x the "
            f"{total_cores} cores; below 2x the partition imbalance "
            f"costs ~10% (set 2-6x cores)",
            "§IV-A, §VI-A"))
    elif ratio > 8.0:
        out.append(Advice(
            "hint", "spark.default.parallelism",
            f"{ratio:.0f}x cores means task-launch and commit overheads "
            f"dominate small stages",
            "§IV-A"))

    if config.serializer.value == "java":
        out.append(Advice(
            "hint", "spark.serializer",
            "Java serialization inflates shuffles ~45% and burns CPU; "
            "Kryo 'can be more efficient' (the paper compensated by "
            "giving Spark extra memory)",
            "§IV-D"))

    if config.storage_fraction + config.shuffle_fraction > 0.85:
        out.append(Advice(
            "warning", "spark.storage/shuffle.memoryFraction",
            "less than 15% of the heap left for task execution: jobs "
            "die when object working sets overflow it",
            "§IV-C, §VIII"))

    if plan is not None:
        iterations = [op for op in plan.ops if op.is_iteration]
        for it in iterations:
            if it.body is not None and not any(
                    op.cached for op in plan.ops):
                out.append(Advice(
                    "warning", "rdd.persist",
                    "iterative plan without a persisted input RDD: every "
                    "superstep re-reads/recomputes the source",
                    "§II-C"))
        graphish = any(op.kind is OpKind.PARTITION for op in plan.ops)
        if graphish and config.edge_partitions is None:
            out.append(Advice(
                "warning", "spark.edge.partition",
                "graph load without an explicit edge-partition count: "
                "the paper saw 50% swings and heap deaths from this knob",
                "§VI-E"))
        if graphish and config.edge_partitions is not None:
            per_part = (plan.input_stats.total_bytes /
                        config.edge_partitions)
            budget = 0.67 * config.executor_memory / config.executor_cores
            if per_part * 2.2 > budget:
                out.append(Advice(
                    "fatal", "spark.edge.partition",
                    f"an edge partition is "
                    f"{per_part / GiB:.1f} GiB; its object form will not "
                    f"fit the per-task heap budget "
                    f"({budget / GiB:.1f} GiB) - double the partitions "
                    f"(the paper had to)",
                    "Table VII"))
    return out


# ----------------------------------------------------------------------
# Flink
# ----------------------------------------------------------------------
def advise_flink(config: FlinkConfig, nodes: int,
                 plan: Optional[LogicalPlan] = None,
                 cores_per_node: int = CORES_PER_NODE) -> List[Advice]:
    out: List[Advice] = []
    slots_needed = math.ceil(config.default_parallelism / nodes)
    if slots_needed > config.task_slots:
        out.append(Advice(
            "fatal", "parallelism.default",
            f"parallelism {config.default_parallelism} needs "
            f"{slots_needed} slots/node but only {config.task_slots} are "
            f"configured: the job will fail with 'insufficient task "
            f"slots'",
            "§VI-C (Table III note)"))

    slots_per_node = min(slots_needed, config.task_slots)
    required = (slots_per_node * config.default_parallelism *
                _count_shuffles(plan))
    if required > config.network_buffers:
        out.append(Advice(
            "fatal", "taskmanager.network.numberOfBuffers",
            f"the workflow needs ~{required} buffers but only "
            f"{config.network_buffers} are configured: executions will "
            f"fail (the paper had to raise flink.nw.buffers)",
            "§IV-B, §VI-A"))
    elif required > config.network_buffers // 2:
        out.append(Advice(
            "warning", "taskmanager.network.numberOfBuffers",
            "within 2x of the required buffer count; deeper pipelines "
            "or higher parallelism will fail",
            "§IV-B"))

    if not config.off_heap:
        out.append(Advice(
            "hint", "taskmanager.memory.off-heap",
            "hybrid on/off-heap memory reduces GC pressure on large "
            "task managers",
            "§IV-C"))

    if plan is not None:
        has_cogroup_iteration = any(
            op.is_iteration and op.body is not None and any(
                b.kind is OpKind.CO_GROUP for b in op.body.ops)
            for op in plan.ops)
        if has_cogroup_iteration:
            out.append(Advice(
                "warning", "iteration solution set",
                "delta/vertex-centric iterations keep the CoGroup "
                "solution set in memory and cannot spill; on large "
                "graphs reduce the parallelism to leave managed memory "
                "per operator, or expect a crash",
                "§VI-E, Table VII"))
    return out
