"""The paper's methodology: correlate operator plans with resource usage.

"We introduce a methodology to understand performance in Big Data
analytics frameworks by correlating the operators execution plan with
the resource utilization and the parameter configuration."  This module
is that methodology as a library:

* :class:`CorrelatedRun` joins one engine run's operator spans with the
  cluster's metric frames over the run window;
* :meth:`CorrelatedRun.span_profile` attributes resource usage to each
  operator span (the side-by-side panels of Figs. 3/6/9/10/16/17);
* :meth:`CorrelatedRun.bottleneck` classifies what a window was bound
  by, reproducing statements like "for this workload both Flink and
  Spark are CPU and disk-bound";
* :func:`detect_anti_cyclic` checks Flink's sort-based-combiner
  signature: CPU and disk alternating out of phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..cluster.topology import Cluster
from ..engines.common.execution import OperatorSpan
from ..engines.common.result import EngineRunResult
from ..monitoring.collector import ClusterMonitor
from ..monitoring.metrics import Metric, MetricFrame, anti_correlation

__all__ = ["SpanProfile", "CorrelatedRun", "correlate", "detect_anti_cyclic"]

#: Utilisation (percent) above which a resource counts as "bound".
BOUND_THRESHOLD = 55.0
#: Throughput (MiB/s per node) above which disk/network count as busy.
THROUGHPUT_THRESHOLD = 60.0


@dataclass
class SpanProfile:
    """Resource usage attributed to one operator span."""

    span: OperatorSpan
    cpu_percent: float
    memory_percent: float
    disk_util_percent: float
    disk_io_mibs: float
    network_mibs: float

    def dominant_resources(self) -> List[str]:
        out = []
        if self.cpu_percent >= BOUND_THRESHOLD:
            out.append("cpu")
        if self.disk_util_percent >= BOUND_THRESHOLD or \
                self.disk_io_mibs >= THROUGHPUT_THRESHOLD:
            out.append("disk")
        if self.network_mibs >= THROUGHPUT_THRESHOLD:
            out.append("network")
        return out or ["idle"]


@dataclass
class CorrelatedRun:
    """One engine execution joined with its resource traces."""

    result: EngineRunResult
    frames: Dict[Metric, MetricFrame]
    step: float = 1.0
    #: Optional :class:`~repro.harness.runner.TracedRun` set by
    #: ``run_correlated(..., collect_spans=True)``: the span tree,
    #: critical path and per-span attribution of this execution.
    trace: Optional[object] = None

    # ------------------------------------------------------------------
    @property
    def spans(self) -> List[OperatorSpan]:
        return self.result.spans

    def frame(self, metric: Metric) -> MetricFrame:
        return self.frames[metric]

    def span_profile(self, span: OperatorSpan) -> SpanProfile:
        """Mean resource usage inside one span's window."""
        start, end = span.start, max(span.end, span.start + self.step)
        return SpanProfile(
            span=span,
            cpu_percent=self.frames[Metric.CPU_PERCENT]
            .average_between(start, end),
            memory_percent=self.frames[Metric.MEMORY_PERCENT]
            .average_between(start, end),
            disk_util_percent=self.frames[Metric.DISK_UTIL_PERCENT]
            .average_between(start, end),
            disk_io_mibs=self.frames[Metric.DISK_IO_MIBS]
            .average_between(start, end),
            network_mibs=self.frames[Metric.NETWORK_MIBS]
            .average_between(start, end),
        )

    def profiles(self) -> List[SpanProfile]:
        return [self.span_profile(s) for s in self.spans]

    # ------------------------------------------------------------------
    def bottleneck(self, start: Optional[float] = None,
                   end: Optional[float] = None,
                   threshold: float = BOUND_THRESHOLD) -> List[str]:
        """Which resources bound the given window (default: whole run).

        ``threshold`` is the mean utilisation (percent) above which a
        resource counts as binding; scan-limited stages (fewer input
        splits than cores) justify a lower threshold.
        """
        start = self.result.start if start is None else start
        end = self.result.end if end is None else end
        cpu = self.frames[Metric.CPU_PERCENT].average_between(start, end)
        disk = self.frames[Metric.DISK_UTIL_PERCENT].average_between(start, end)
        io = self.frames[Metric.DISK_IO_MIBS].average_between(start, end)
        net = self.frames[Metric.NETWORK_MIBS].average_between(start, end)
        out = []
        if cpu >= threshold:
            out.append("cpu")
        if disk >= threshold or io >= THROUGHPUT_THRESHOLD:
            out.append("disk")
        if net >= THROUGHPUT_THRESHOLD:
            out.append("network")
        return out or ["idle"]

    def cpu_disk_anti_correlation(self, start: Optional[float] = None,
                                  end: Optional[float] = None) -> float:
        """Correlation between CPU% and disk util% over a window."""
        start = self.result.start if start is None else start
        end = self.result.end if end is None else end
        cpu = self.frames[Metric.CPU_PERCENT].values_between(start, end)
        disk = self.frames[Metric.DISK_UTIL_PERCENT].values_between(start, end)
        n = min(len(cpu), len(disk))
        return anti_correlation(cpu[:n], disk[:n])


def correlate(cluster: Cluster, result: EngineRunResult,
              step: float = 1.0) -> CorrelatedRun:
    """Join a finished run with its cluster's resource traces."""
    if result.end <= result.start:
        raise ValueError("run window is empty; did the run execute?")
    monitor = ClusterMonitor(cluster)
    frames = monitor.snapshot(result.start, result.end, step)
    return CorrelatedRun(result=result, frames=frames, step=step)


def detect_anti_cyclic(cpu: Sequence[float], disk: Sequence[float],
                       threshold: float = -0.1) -> bool:
    """True when CPU and disk alternate (sort-based combiner signature).

    The paper: "we notice an anti-cyclic disk utilization (i.e.
    correlated to the CPU usage: the CPU increases to 100% while the
    disk goes down to 0%), which is explained by the use of a
    sort-based combiner".
    """
    n = min(len(cpu), len(disk))
    if n < 4:
        return False
    return anti_correlation(list(cpu)[:n], list(disk)[:n]) <= threshold
