"""Export reproduced artefacts to CSV for external plotting.

The paper's figures are gnuplot-style panels; downstream users will
want the raw series.  These helpers write the three artefact shapes —
scaling series, operator spans, metric frames — as plain CSV.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, Sequence, TextIO, Union

from ..engines.common.execution import OperatorSpan
from ..monitoring.metrics import MetricFrame
from .correlate import CorrelatedRun
from .scalability import ScalingSeries

__all__ = ["scaling_to_csv", "spans_to_csv", "frames_to_csv", "run_to_csv"]


def _writer(out: Union[TextIO, None]):
    buf = out if out is not None else io.StringIO()
    return buf, csv.writer(buf)


def scaling_to_csv(series: Iterable[ScalingSeries],
                   out: TextIO = None) -> str:
    """One row per (engine, nodes): mean and std in seconds."""
    buf, w = _writer(out)
    w.writerow(["engine", "nodes", "mean_seconds", "std_seconds"])
    for s in series:
        for n, mean, std in zip(s.nodes, s.means, s.stds):
            w.writerow([s.engine, n, f"{mean:.3f}", f"{std:.3f}"])
    return buf.getvalue() if isinstance(buf, io.StringIO) else ""


def spans_to_csv(spans: Sequence[OperatorSpan], out: TextIO = None) -> str:
    """One row per operator span (the plan-panel bars)."""
    buf, w = _writer(out)
    w.writerow(["key", "name", "start", "end", "duration", "busy",
                "iteration"])
    for s in spans:
        w.writerow([s.key, s.name, f"{s.start:.3f}", f"{s.end:.3f}",
                    f"{s.duration:.3f}", f"{s.busy:.3f}",
                    s.iteration if s.iteration is not None else ""])
    return buf.getvalue() if isinstance(buf, io.StringIO) else ""


def frames_to_csv(frames: Iterable[MetricFrame], out: TextIO = None) -> str:
    """Long-format metric samples: metric, time, mean, total."""
    buf, w = _writer(out)
    w.writerow(["metric", "time", "mean", "cluster_total"])
    for frame in frames:
        for t, m, tot in zip(frame.times, frame.mean, frame.total):
            w.writerow([frame.metric.value, f"{t:.1f}", f"{m:.4f}",
                        f"{tot:.4f}"])
    return buf.getvalue() if isinstance(buf, io.StringIO) else ""


def run_to_csv(run: CorrelatedRun, out: TextIO = None) -> str:
    """A whole correlated run: spans block then metric block."""
    buf = out if out is not None else io.StringIO()
    buf.write(f"# {run.result.engine} {run.result.workload} "
              f"{run.result.nodes} nodes, "
              f"{run.result.duration:.1f}s\n")
    spans_to_csv(run.result.spans, buf)
    buf.write("\n")
    frames_to_csv(run.frames.values(), buf)
    return buf.getvalue() if isinstance(buf, io.StringIO) else ""
