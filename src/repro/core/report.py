"""Text rendering of the paper's figures: operator-span timelines plus
resource panels, and mean±std bar tables.

The harness and the benchmarks use these to print, for every figure,
the same content the paper plots — a Gantt of the operator plan over
the run window and the aggregated resource usage, or the grouped bars
of an execution-time figure.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence

from ..engines.common.execution import OperatorSpan
from ..monitoring.metrics import Metric, MetricFrame
from .correlate import CorrelatedRun
from .scalability import ScalingSeries

__all__ = ["render_span_gantt", "render_metric_panel", "render_run",
           "render_bar_table"]

_WIDTH = 72


def render_span_gantt(spans: Sequence[OperatorSpan], start: float,
                      end: float, width: int = _WIDTH) -> str:
    """ASCII Gantt chart of operator spans (a plan panel)."""
    if end <= start:
        raise ValueError("empty window")
    scale = width / (end - start)
    lines = []
    seen = set()
    for span in spans:
        if span.iteration is not None and span.key in seen:
            continue  # collapse repeated per-iteration spans to the first
        seen.add(span.key)
        lo = int((span.start - start) * scale)
        hi = max(lo + 1, int((span.end - start) * scale))
        bar = " " * lo + "#" * (hi - lo)
        label = f"{span.key:>6s} |{bar:<{width}}| {span.duration:8.1f}s"
        lines.append(label)
    return "\n".join(lines)


def render_metric_panel(frame: MetricFrame, height: int = 5,
                        width: int = _WIDTH) -> str:
    """Downsampled ASCII area chart of one metric panel."""
    if not frame.mean:
        return "(no samples)"
    n = len(frame.mean)
    bucket = max(1, n // width)
    cols = [max(frame.mean[i:i + bucket]) for i in range(0, n, bucket)][:width]
    top = max(cols) or 1.0
    rows = []
    for level in range(height, 0, -1):
        cut = top * (level - 0.5) / height
        rows.append("".join("#" if v >= cut else " " for v in cols))
    unit = "%" if frame.metric.value.endswith("percent") else " MiB/s"
    header = f"{frame.metric.value} (peak {top:.1f}{unit})"
    return header + "\n" + "\n".join(rows)


def render_run(run: CorrelatedRun, metrics: Optional[List[Metric]] = None,
               width: int = _WIDTH) -> str:
    """Full figure: operator plan + resource panels, like Fig. 3."""
    result = run.result
    parts = [
        f"=== {result.engine} {result.workload} on {result.nodes} nodes: "
        f"{result.duration:.1f}s ===",
        render_span_gantt(result.spans, result.start, result.end, width),
    ]
    for metric in metrics or [Metric.CPU_PERCENT, Metric.DISK_UTIL_PERCENT,
                              Metric.DISK_IO_MIBS, Metric.NETWORK_MIBS]:
        parts.append(render_metric_panel(run.frame(metric), width=width))
    return "\n\n".join(parts)


def render_bar_table(series: Iterable[ScalingSeries],
                     title: str = "") -> str:
    """Execution-time figure as a table: one row per node count."""
    series = list(series)
    if not series:
        return "(no series)"
    nodes = sorted({n for s in series for n in s.nodes})
    header = f"{'nodes':>6s} " + " ".join(
        f"{s.engine + ' mean(s)':>16s} {'std':>8s}" for s in series)
    lines = [title, header] if title else [header]
    for n in nodes:
        cells = []
        for s in series:
            if n in s.nodes:
                i = s.nodes.index(n)
                mean, std = s.means[i], s.stds[i]
                cell = (f"{mean:16.1f} {std:8.1f}"
                        if not math.isnan(mean) else f"{'FAILED':>16s} {'-':>8s}")
            else:
                cell = f"{'-':>16s} {'-':>8s}"
            cells.append(cell)
        lines.append(f"{n:6d} " + " ".join(cells))
    return "\n".join(lines)
