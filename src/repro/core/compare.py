"""Side-by-side run comparison: the paper's analytical narrative as code.

Every results subsection of the paper follows the same template: put
the two engines' runs side by side, name the winner, attribute the gap
to operator spans and resource signatures.  :func:`compare_runs` does
exactly that for two :class:`~repro.core.correlate.CorrelatedRun`s and
returns a structured report plus a rendered narrative.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from ..monitoring.metrics import Metric
from .correlate import CorrelatedRun, detect_anti_cyclic

__all__ = ["RunComparison", "compare_runs"]


@dataclass
class RunComparison:
    """Structured outcome of one side-by-side analysis."""

    workload: str
    durations: Dict[str, float]
    winner: str
    advantage: float
    bottlenecks: Dict[str, List[str]]
    peak_network_mibs: Dict[str, float]
    mean_disk_mibs: Dict[str, float]
    anti_cyclic: Dict[str, bool]
    longest_span: Dict[str, str]
    narrative: str = ""

    def describe(self) -> str:
        return self.narrative


def _fmt_list(items: List[str]) -> str:
    return "- and ".join(items) + "-bound"


def compare_runs(a: CorrelatedRun, b: CorrelatedRun) -> RunComparison:
    """Compare two correlated runs of the same workload."""
    if a.result.workload != b.result.workload:
        raise ValueError(
            f"different workloads: {a.result.workload!r} vs "
            f"{b.result.workload!r}")
    runs = {a.result.engine: a, b.result.engine: b}
    if len(runs) != 2:
        raise ValueError("compare_runs needs two distinct engines")

    durations = {e: r.result.duration for e, r in runs.items()}
    winner = min(durations, key=durations.get)
    loser = max(durations, key=durations.get)
    advantage = (durations[loser] / durations[winner]
                 if durations[winner] > 0 else math.nan)

    bottlenecks = {e: r.bottleneck(threshold=40) for e, r in runs.items()}
    peak_net = {e: r.frame(Metric.NETWORK_MIBS).peak()
                for e, r in runs.items()}
    mean_disk = {e: r.frame(Metric.DISK_IO_MIBS).average()
                 for e, r in runs.items()}
    anti = {}
    longest = {}
    for e, r in runs.items():
        cpu = r.frame(Metric.CPU_PERCENT).mean
        disk = r.frame(Metric.DISK_UTIL_PERCENT).mean
        anti[e] = detect_anti_cyclic(cpu, disk)
        main = max(r.result.spans, key=lambda s: s.duration)
        longest[e] = main.name

    lines = [
        f"{a.result.workload} on {a.result.nodes} nodes: "
        f"{winner} wins by {advantage:.2f}x "
        f"({durations[winner]:.0f}s vs {durations[loser]:.0f}s).",
    ]
    for e in sorted(runs):
        extras = []
        if anti[e]:
            extras.append("anti-cyclic CPU/disk (sort-based combining)")
        extras_text = f"; {', '.join(extras)}" if extras else ""
        lines.append(
            f"  {e}: {_fmt_list(bottlenecks[e])}, dominated by "
            f"'{longest[e]}', disk {mean_disk[e]:.0f} MiB/s avg, "
            f"network {peak_net[e]:.0f} MiB/s peak{extras_text}.")
    hi_net = max(runs, key=lambda e: peak_net[e])
    lo_net = min(runs, key=lambda e: peak_net[e])
    if peak_net[lo_net] > 0 and peak_net[hi_net] > 1.5 * peak_net[lo_net]:
        lines.append(f"  {hi_net} moves substantially more data over the "
                     f"network than {lo_net}.")

    return RunComparison(
        workload=a.result.workload, durations=durations, winner=winner,
        advantage=advantage, bottlenecks=bottlenecks,
        peak_network_mibs=peak_net, mean_disk_mibs=mean_disk,
        anti_cyclic=anti, longest_span=longest,
        narrative="\n".join(lines))
