"""What-if (blocked-time) analysis: re-simulate with one resource made
effectively infinite.

The paper's related work highlights blocked-time analysis [43]
("Making sense of performance in data analytics frameworks") as the
way "to understand the impact of disk and network" and suggests it
"could be applied to Flink as well, where stragglers are caused by the
I/O interference in the execution pipelines".  A simulator can do the
idealised version directly: rerun the identical workload on a cluster
whose disk (or network) is effectively unlimited and report the
speedup bound.  (CPU is not offered: engine task slots, not core
counts, bound compute rates, so "infinite CPU" is not meaningful at
constant configuration.)
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Dict

from ..cluster.node import GRID5000_PARAVANCE, HardwareSpec
from ..config.presets import ExperimentConfig
from ..workloads.base import Workload

__all__ = ["WhatIfResult", "what_if", "blocked_time_report", "RESOURCES"]

#: Resources that can be idealised.
RESOURCES = ("disk", "network")

_HUGE = 1e6  # x base bandwidth: effectively unlimited


def _idealised_spec(base: HardwareSpec, resource: str) -> HardwareSpec:
    if resource == "disk":
        return dataclasses.replace(base,
                                   disk_read_bw=base.disk_read_bw * _HUGE,
                                   disk_write_bw=base.disk_write_bw * _HUGE,
                                   disk_contention_alpha=0.0)
    if resource == "network":
        return dataclasses.replace(base, nic_bw=base.nic_bw * _HUGE)
    raise ValueError(f"unknown resource {resource!r}; "
                     f"choose from {RESOURCES}")


@dataclass
class WhatIfResult:
    """Speedup bound from idealising one resource."""

    engine: str
    workload: str
    resource: str
    baseline_seconds: float
    idealised_seconds: float

    @property
    def speedup(self) -> float:
        if self.idealised_seconds <= 0:
            return math.nan
        return self.baseline_seconds / self.idealised_seconds

    @property
    def blocked_fraction(self) -> float:
        """Upper bound on the run fraction attributable to the resource
        (1 - idealised/baseline, the blocked-time bound)."""
        if self.baseline_seconds <= 0:
            return 0.0
        return max(0.0, 1.0 - self.idealised_seconds /
                   self.baseline_seconds)

    def describe(self) -> str:
        return (f"{self.engine}/{self.workload}: infinitely fast "
                f"{self.resource} -> {self.speedup:.2f}x "
                f"(<= {100 * self.blocked_fraction:.0f}% blocked on it)")


def _run(engine: str, workload: Workload, config: ExperimentConfig,
         spec: HardwareSpec, seed: int) -> float:
    # Local import to avoid a harness<->core cycle.
    from ..cluster.topology import Cluster
    from ..engines.flink.engine import FlinkEngine
    from ..engines.spark.engine import SparkEngine
    from ..hdfs.filesystem import HDFS

    cluster = Cluster(config.nodes, spec=spec, seed=seed)
    hdfs = HDFS(cluster, block_size=config.hdfs_block_size, seed=seed)
    for path, size in workload.input_files():
        hdfs.create_file(path, size)
    eng = (SparkEngine(cluster, hdfs, config.spark) if engine == "spark"
           else FlinkEngine(cluster, hdfs, config.flink))
    start = cluster.now
    for plan in workload.jobs(engine):
        result = eng.run(plan)
        if not result.success:
            raise RuntimeError(f"what-if run failed: {result.failure}")
    return cluster.now - start


def what_if(engine: str, workload: Workload, config: ExperimentConfig,
            resource: str, seed: int = 0,
            base_spec: HardwareSpec = GRID5000_PARAVANCE) -> WhatIfResult:
    """Speedup bound if ``resource`` were infinitely fast."""
    baseline = _run(engine, workload, config, base_spec, seed)
    idealised = _run(engine, workload, config,
                     _idealised_spec(base_spec, resource), seed)
    return WhatIfResult(engine=engine, workload=workload.name,
                        resource=resource, baseline_seconds=baseline,
                        idealised_seconds=idealised)


def blocked_time_report(engine: str, workload: Workload,
                        config: ExperimentConfig, seed: int = 0
                        ) -> Dict[str, WhatIfResult]:
    """The full blocked-time table: one what-if per resource."""
    return {resource: what_if(engine, workload, config, resource,
                              seed=seed)
            for resource in RESOURCES}
