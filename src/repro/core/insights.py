"""Automated take-aways: the paper's §VIII as derived statements.

Given comparison points and correlated runs, produce the high-level
statements the paper closes with ("there is not a single framework for
all data types, sizes and job patterns", "Spark is about 1.7x faster
than Flink for large graph processing", ...), each backed by the
numbers that support it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence

from .correlate import CorrelatedRun
from .scalability import ComparisonPoint

__all__ = ["Insight", "summarize_comparison", "no_single_winner"]


@dataclass(frozen=True)
class Insight:
    """One derived statement with its supporting evidence."""

    statement: str
    evidence: Dict[str, float]
    workload: str = ""

    def __str__(self) -> str:
        return self.statement


def summarize_comparison(workload: str,
                         points: Sequence[ComparisonPoint]) -> Insight:
    """Who wins this workload, by how much, and where."""
    winners = [p.winner for p in points if not math.isnan(p.advantage)]
    if not winners:
        return Insight(statement=f"{workload}: no successful runs to compare",
                       evidence={}, workload=workload)
    flink_wins = winners.count("flink")
    spark_wins = winners.count("spark")
    advantages = [p.advantage for p in points if not math.isnan(p.advantage)]
    best = max(advantages)
    if flink_wins and spark_wins:
        cross = next(p.nodes for p in points
                     if p.winner != points[0].winner)
        statement = (f"{workload}: the winner flips with scale "
                     f"(crossover near {cross} nodes; max advantage "
                     f"{best:.2f}x)")
    else:
        who = "Flink" if flink_wins else "Spark"
        statement = (f"{workload}: {who} wins at every measured scale, "
                     f"up to {best:.2f}x")
    return Insight(statement=statement, workload=workload,
                   evidence={f"advantage@{p.nodes}": p.advantage
                             for p in points})


def no_single_winner(per_workload: Dict[str, Sequence[ComparisonPoint]]
                     ) -> Insight:
    """The paper's key finding: neither framework wins everywhere."""
    overall: Dict[str, str] = {}
    for workload, points in per_workload.items():
        winners = {p.winner for p in points if not math.isnan(p.advantage)}
        if len(winners) == 1:
            overall[workload] = next(iter(winners))
        elif winners:
            overall[workload] = "mixed"
    distinct = {w for w in overall.values() if w != "mixed"}
    if len(distinct) > 1 or "mixed" in overall.values():
        statement = ("no single framework wins for all data types, sizes "
                     "and job patterns: " +
                     ", ".join(f"{k}->{v}" for k, v in sorted(overall.items())))
    else:
        only = next(iter(distinct)) if distinct else "nobody"
        statement = f"{only} won every measured workload (unlike the paper)"
    return Insight(statement=statement,
                   evidence={k: 1.0 if v == "flink" else 0.0
                             for k, v in overall.items() if v != "mixed"})


def bottleneck_insight(run: CorrelatedRun) -> Insight:
    """Name the binding resources of one run."""
    bound = run.bottleneck()
    name = f"{run.result.engine}/{run.result.workload}"
    return Insight(
        statement=f"{name} is {'- and '.join(bound)}-bound",
        workload=run.result.workload,
        evidence={},
    )
