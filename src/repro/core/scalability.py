"""Strong and weak scalability analysis (paper §V, §VI).

The batch experiments validate *weak* scalability (fixed problem size
per node, growing cluster) and *strong* scalability (fixed total
problem, growing cluster / growing dataset on a fixed cluster).  This
module turns series of :class:`~repro.harness.runner.TrialStats` into
the quantities the paper reasons about: speedup, parallel efficiency,
who-wins-by-how-much, and crossover points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Sequence

if TYPE_CHECKING:  # avoid a circular import; duck-typed at runtime
    from ..harness.runner import TrialStats

__all__ = ["ScalingSeries", "ComparisonPoint", "compare_engines",
           "weak_scaling_efficiency", "strong_scaling_speedup",
           "strong_scaling_efficiency"]


@dataclass
class ScalingSeries:
    """One engine's mean duration as a function of cluster size."""

    engine: str
    nodes: List[int]
    means: List[float]
    stds: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.nodes) != len(self.means):
            raise ValueError("nodes and means must align")
        if self.nodes != sorted(self.nodes):
            raise ValueError("nodes must be ascending")
        if not self.stds:
            self.stds = [0.0] * len(self.nodes)

    @classmethod
    def from_trials(cls, trials: Sequence["TrialStats"]) -> "ScalingSeries":
        trials = sorted(trials, key=lambda t: t.nodes)
        if not trials:
            raise ValueError("no trials")
        return cls(engine=trials[0].engine,
                   nodes=[t.nodes for t in trials],
                   means=[t.mean for t in trials],
                   stds=[t.std for t in trials])

    def at(self, nodes: int) -> float:
        return self.means[self.nodes.index(nodes)]

    def variability(self) -> float:
        """Mean coefficient of variation across the series (run-to-run
        variance, the quantity behind the paper's Tera Sort remark)."""
        cvs = [s / m for s, m in zip(self.stds, self.means)
               if m > 0 and not math.isnan(m)]
        return sum(cvs) / len(cvs) if cvs else 0.0


def strong_scaling_speedup(series: ScalingSeries) -> List[float]:
    """Speedup relative to the smallest cluster in the series."""
    base_nodes, base_time = series.nodes[0], series.means[0]
    return [base_time / t if t > 0 else math.nan for t in series.means]


def strong_scaling_efficiency(series: ScalingSeries) -> List[float]:
    """Speedup normalised by the added resources."""
    base = series.nodes[0]
    return [s / (n / base) for s, n
            in zip(strong_scaling_speedup(series), series.nodes)]


def weak_scaling_efficiency(series: ScalingSeries) -> List[float]:
    """T(smallest)/T(n) under fixed per-node work: 1.0 is perfect."""
    base_time = series.means[0]
    return [base_time / t if t > 0 else math.nan for t in series.means]


@dataclass
class ComparisonPoint:
    """Spark vs Flink at one scale."""

    nodes: int
    flink: float
    spark: float

    @property
    def winner(self) -> str:
        if math.isnan(self.flink):
            return "spark"
        if math.isnan(self.spark):
            return "flink"
        return "flink" if self.flink <= self.spark else "spark"

    @property
    def advantage(self) -> float:
        """Loser time / winner time (>= 1); the paper's "1.5x" numbers."""
        lo, hi = sorted([self.flink, self.spark])
        if lo <= 0 or math.isnan(lo) or math.isnan(hi):
            return math.nan
        return hi / lo


def compare_engines(flink: ScalingSeries, spark: ScalingSeries
                    ) -> List[ComparisonPoint]:
    """Pointwise Spark-vs-Flink comparison on the common node counts."""
    common = sorted(set(flink.nodes) & set(spark.nodes))
    if not common:
        raise ValueError("series share no node counts")
    return [ComparisonPoint(nodes=n, flink=flink.at(n), spark=spark.at(n))
            for n in common]
