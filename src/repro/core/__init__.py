"""The paper's methodology as a public API.

Correlate operator execution plans with resource utilisation
(:mod:`~repro.core.correlate`), analyse weak/strong scalability
(:mod:`~repro.core.scalability`), derive the take-away statements
(:mod:`~repro.core.insights`) and render figures as text
(:mod:`~repro.core.report`).
"""

from .correlate import (CorrelatedRun, SpanProfile, correlate,
                        detect_anti_cyclic)
from .compare import RunComparison, compare_runs
from .export import frames_to_csv, run_to_csv, scaling_to_csv, spans_to_csv
from .whatif import WhatIfResult, blocked_time_report, what_if
from .insights import (Insight, bottleneck_insight, no_single_winner,
                       summarize_comparison)
from .scalability import (ComparisonPoint, ScalingSeries, compare_engines,
                          strong_scaling_efficiency, strong_scaling_speedup,
                          weak_scaling_efficiency)
from .report import (render_bar_table, render_metric_panel, render_run,
                     render_span_gantt)

__all__ = [
    "ComparisonPoint", "CorrelatedRun", "Insight", "RunComparison",
    "ScalingSeries", "compare_runs",
    "SpanProfile", "bottleneck_insight", "compare_engines", "correlate",
    "detect_anti_cyclic", "frames_to_csv", "no_single_winner",
    "render_bar_table", "render_metric_panel", "render_run",
    "render_span_gantt", "run_to_csv", "scaling_to_csv", "spans_to_csv",
    "strong_scaling_efficiency", "strong_scaling_speedup",
    "summarize_comparison", "weak_scaling_efficiency", "WhatIfResult",
    "blocked_time_report", "what_if",
]
