"""Per-span resource attribution: "what was I bottlenecked on?".

Each span window is joined with the fluid scheduler's capacity traces
(:class:`~repro.cluster.trace.StepSeries`) on the node(s) the span ran
on: time-weighted mean CPU utilisation, disk utilisation and
throughput, NIC throughput (both directions) and memory occupancy over
``[span.start, span.end]``.  From those means the span's *dominant
resources* are classified with the same thresholds
:mod:`repro.core.correlate` uses for whole-run bottleneck statements,
so a stage-level attribution ("Page Rank's shuffle superstep is
network-bound") reads on the same scale as the paper-facing panels.

Unlike :class:`~repro.core.correlate.CorrelatedRun`, which resamples
monitoring frames onto a uniform grid cluster-wide, attribution reads
the exact step functions and restricts them to the span's own nodes —
a task span on a straggler is profiled against that straggler only.

Requires the scheduler's ``trace_detail="full"`` (the traced-run
entry points force it); with gated traces the series are empty and the
means read 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..cluster.topology import Cluster
from ..core.correlate import BOUND_THRESHOLD, THROUGHPUT_THRESHOLD
from .spans import Span, SpanTree

__all__ = ["SpanAttribution", "attribute_spans", "attribute_span"]

_MiB = 2**20

#: Attribution resources, in report order.
RESOURCES = ("cpu", "disk", "network", "memory")


@dataclass
class SpanAttribution:
    """Mean resource usage inside one span's window, on its nodes."""

    span_id: int
    nodes: List[int]
    cpu_percent: float
    disk_util_percent: float
    disk_io_mibs: float
    network_mibs: float
    memory_percent: float

    def dominant_resources(self) -> List[str]:
        """Resources binding this span (thresholds as in
        :mod:`repro.core.correlate`); ``["idle"]`` when none are."""
        out = []
        if self.cpu_percent >= BOUND_THRESHOLD:
            out.append("cpu")
        if self.disk_util_percent >= BOUND_THRESHOLD or \
                self.disk_io_mibs >= THROUGHPUT_THRESHOLD:
            out.append("disk")
        if self.network_mibs >= THROUGHPUT_THRESHOLD:
            out.append("network")
        return out or ["idle"]

    def to_payload(self) -> Dict[str, object]:
        return {
            "span_id": self.span_id,
            "nodes": list(self.nodes),
            "cpu_percent": self.cpu_percent,
            "disk_util_percent": self.disk_util_percent,
            "disk_io_mibs": self.disk_io_mibs,
            "network_mibs": self.network_mibs,
            "memory_percent": self.memory_percent,
            "dominant": self.dominant_resources(),
        }


def attribute_span(cluster: Cluster, tree: SpanTree,
                   span: Span) -> SpanAttribution:
    """Profile one span against the capacity traces of its nodes.

    The node set is the union of task nodes at or under the span; a
    span with no task descendants (e.g. a driver-gap span) is profiled
    cluster-wide, matching how the paper's panels aggregate.
    """
    nodes = tree.nodes_under(span)
    if not nodes:
        nodes = list(range(cluster.num_nodes))
    start, end = span.start, span.end
    if end <= start:
        return SpanAttribution(span_id=span.id, nodes=nodes,
                               cpu_percent=0.0, disk_util_percent=0.0,
                               disk_io_mibs=0.0, network_mibs=0.0,
                               memory_percent=0.0)
    n = len(nodes)
    cpu = disk_util = disk_io = net = mem = 0.0
    for ni in nodes:
        node = cluster.node(ni)
        cpu += node.cpu.utilisation.mean(start, end)
        disk_util += node.disk.utilisation.mean(start, end)
        disk_io += node.disk.throughput.mean(start, end)
        net += (node.nic_in.throughput.mean(start, end) +
                node.nic_out.throughput.mean(start, end))
        mem += node.memory.occupancy_series_percent().mean(start, end)
    return SpanAttribution(
        span_id=span.id, nodes=nodes,
        cpu_percent=cpu / n,
        disk_util_percent=disk_util / n,
        disk_io_mibs=disk_io / n / _MiB,
        network_mibs=net / n / _MiB,
        memory_percent=mem / n,
    )


def attribute_spans(cluster: Cluster, tree: SpanTree,
                    kinds: Optional[List[str]] = None,
                    ) -> Dict[int, SpanAttribution]:
    """Attribute every span (or only the given kinds) of a tree.

    Memory occupancy series are rebuilt per node once and the per-node
    loop is in :func:`attribute_span`; for the span counts a run
    produces (tens to low hundreds) this stays well under a
    millisecond of real time per run.
    """
    out: Dict[int, SpanAttribution] = {}
    for span in tree:
        if kinds is not None and span.kind not in kinds:
            continue
        out[span.id] = attribute_span(cluster, tree, span)
    return out
