"""Span-based execution observability.

The paper's methodology correlates operator execution plans with
per-node resource utilisation; this package is that correlation as a
first-class artifact.  A :class:`SpanTracer` attached to a cluster
records a well-nested tree of spans (run → job → stage → operator →
task) during a simulated run; :func:`extract_critical_path` tiles the
makespan into the deepest-responsible segments;
:func:`attribute_spans` asks each span "what resource were you
bottlenecked on?" against the fluid capacity traces; and the exporters
render the result as Chrome-trace JSON or CSV.

Entry points: ``repro trace <workload>`` on the CLI, or
:func:`repro.harness.runner.run_traced` from code.
"""

from .attribution import SpanAttribution, attribute_span, attribute_spans
from .critical_path import (CriticalPath, PathSegment,
                            extract_critical_path)
from .exporters import (chrome_trace_json, chrome_trace_payload,
                        critical_path_csv, spans_csv)
from .spans import SPAN_KINDS, FlowRecord, Span, SpanTracer, SpanTree

__all__ = [
    "Span", "SpanTracer", "SpanTree", "FlowRecord", "SPAN_KINDS",
    "CriticalPath", "PathSegment", "extract_critical_path",
    "SpanAttribution", "attribute_span", "attribute_spans",
    "chrome_trace_payload", "chrome_trace_json", "spans_csv",
    "critical_path_csv",
]
