"""Structured execution spans: the run's who-did-what-when tree.

The paper's methodology correlates the *operator execution plan* with
*per-node resource utilisation*.  The simulator already produces both
halves — :class:`~repro.engines.common.execution.OperatorSpan` windows
on one side, :class:`~repro.cluster.trace.StepSeries` capacity traces
on the other — but nothing joins them.  A :class:`SpanTracer` records
that join as a **well-nested span tree** during a run:

    run → job → stage/superstep → operator → task

Each :class:`Span` carries its simulated ``[start, end]`` window, the
node(s) it executed on and (for tasks) the phase's per-node resource
demand, so any span can later be asked "what was I bottlenecked on?"
(:mod:`repro.observability.attribution`) or "am I on the critical
path?" (:mod:`repro.observability.critical_path`).

Design constraints, in force everywhere the tracer is wired:

* **zero simulation impact** — the tracer only *reads* ``sim.now``; it
  never schedules events, so attaching one cannot change durations,
  event counts or traces (pinned by regression tests);
* **zero overhead when off** — every hook site guards with
  ``if tracer is not None``; with no tracer attached the only cost is
  that attribute check;
* **picklable** — spans are plain data (ints, floats, strings, dicts),
  so traced runs cross process boundaries in the parallel harness and
  merge in submission order, bit-identical across ``--jobs``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["Span", "SpanTracer", "SpanTree", "FlowRecord", "SPAN_KINDS"]

#: Valid span kinds, outermost first.  A child's kind must sit strictly
#: deeper than its parent's (a task cannot contain an operator).
#: ``queued``/``preempted`` are the cluster scheduler's wait intervals
#: (:mod:`repro.scheduler`): they nest under ``job`` spans and sit at
#: the deep end so the strict-deepening rule keeps holding for the
#: engine trees, which never record them.
SPAN_KINDS = ("run", "job", "stage", "operator", "task",
              "queued", "preempted")

_DEPTH = {kind: i for i, kind in enumerate(SPAN_KINDS)}


@dataclass
class Span:
    """One node of the span tree: a named, timed execution window."""

    id: int
    kind: str                      # one of SPAN_KINDS
    name: str                      # "FlatMap->MapToPair->ReduceByKey"
    start: float                   # simulated seconds
    end: float
    parent: Optional[int] = None   # parent span id (None for the root)
    key: str = ""                  # short figure label ("DC", "S", ...)
    #: Node index a task span executed on (None above task level).
    node: Optional[int] = None
    #: 1-based loop index for spans inside unrolled/native iterations.
    iteration: Optional[int] = None
    #: Free-form numeric facts: chunk counts, resource demand bytes...
    meta: Dict[str, float] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "Span") -> bool:
        return self.start < other.end and other.start < self.end

    def __repr__(self) -> str:
        where = f" node={self.node}" if self.node is not None else ""
        return (f"Span(#{self.id} {self.kind} {self.name!r} "
                f"[{self.start:.3f}, {self.end:.3f}]{where})")


@dataclass
class FlowRecord:
    """One completed fluid flow (optional leaf detail below tasks)."""

    start: float
    end: float
    size: float
    capacities: Tuple[str, ...]

    @property
    def duration(self) -> float:
        return self.end - self.start


class SpanTracer:
    """Records the span tree of one simulated run.

    The engine driver is a single logical thread, so enclosing spans
    (run/job/stage) follow a strict begin/end stack discipline; the
    concurrent parts (operators racing in a pipelined group, per-node
    task shares) are recorded post-hoc with :meth:`record`, passing the
    parent explicitly.  Times are always explicit simulated timestamps
    — the tracer never looks at a clock itself.
    """

    def __init__(self, record_flows: bool = False) -> None:
        self.spans: List[Span] = []
        self.flows: List[FlowRecord] = []
        self.record_flows = record_flows
        self._stack: List[Span] = []
        self._next_id = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def begin(self, kind: str, name: str, start: float, key: str = "",
              iteration: Optional[int] = None, **meta: float) -> Span:
        """Open an enclosing span and make it the current parent."""
        span = self._make(kind, name, start, start, key=key,
                          iteration=iteration, meta=dict(meta))
        self._stack.append(span)
        return span

    def end(self, span: Span, end: float,
            name: Optional[str] = None) -> Span:
        """Close the innermost open span (must be ``span``).

        Enclosing spans' names are sometimes only known at close time
        (e.g. Spark names a job "load" when the next one begins), so
        ``name`` may rename the span here.
        """
        if not self._stack or self._stack[-1] is not span:
            innermost = self._stack[-1] if self._stack else None
            raise ValueError(
                f"span close out of order: closing {span!r}, "
                f"innermost open is {innermost!r}")
        self._stack.pop()
        span.end = end
        if name is not None:
            span.name = name
        return span

    def cancel(self, span: Span) -> None:
        """Discard the innermost open span without recording it.

        Spark's driver speculatively opens the next job span when it
        closes one; the span opened after the final job has nothing in
        it and is cancelled instead of closed.
        """
        if not self._stack or self._stack[-1] is not span:
            innermost = self._stack[-1] if self._stack else None
            raise ValueError(
                f"span cancel out of order: cancelling {span!r}, "
                f"innermost open is {innermost!r}")
        self._stack.pop()
        self.spans.remove(span)

    def record(self, kind: str, name: str, start: float, end: float,
               parent: Optional[Span] = None, key: str = "",
               node: Optional[int] = None,
               iteration: Optional[int] = None, **meta: float) -> Span:
        """Record a complete span; parent defaults to the innermost
        open span (explicit parents serve the concurrent recorders)."""
        if parent is None and self._stack:
            parent = self._stack[-1]
        span = self._make(kind, name, start, end, key=key, node=node,
                          iteration=iteration, meta=dict(meta))
        span.parent = parent.id if parent is not None else None
        return span

    def current(self) -> Optional[Span]:
        """The innermost open span (the default parent)."""
        return self._stack[-1] if self._stack else None

    def on_flow_complete(self, flow, now: float) -> None:
        """:attr:`repro.cluster.fluid.FluidScheduler.flow_hook` target:
        record the flow's lifetime and route (when enabled)."""
        if self.record_flows:
            self.flows.append(FlowRecord(
                start=flow.started_at, end=now, size=flow.size,
                capacities=tuple(c.name for c in flow.capacities)))

    def _make(self, kind: str, name: str, start: float, end: float,
              key: str = "", node: Optional[int] = None,
              iteration: Optional[int] = None,
              meta: Optional[Dict[str, float]] = None) -> Span:
        if kind not in _DEPTH:
            raise ValueError(f"unknown span kind {kind!r}; "
                             f"one of {SPAN_KINDS}")
        span = Span(id=self._next_id, kind=kind, name=name, start=start,
                    end=end, key=key, node=node, iteration=iteration,
                    meta=meta or {})
        self._next_id += 1
        parent = self._stack[-1] if self._stack else None
        span.parent = parent.id if parent is not None else None
        self.spans.append(span)
        return span

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def tree(self) -> "SpanTree":
        """Freeze the recorded spans into an indexed tree."""
        return SpanTree(list(self.spans), flows=list(self.flows))


class SpanTree:
    """An indexed, queryable view over a recorded span list."""

    def __init__(self, spans: List[Span],
                 flows: Optional[List[FlowRecord]] = None) -> None:
        self.spans = sorted(spans, key=lambda s: s.id)
        self.flows = flows or []
        self._by_id: Dict[int, Span] = {s.id: s for s in self.spans}
        self._children: Dict[Optional[int], List[Span]] = {}
        for span in self.spans:
            self._children.setdefault(span.parent, []).append(span)

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self):
        return iter(self.spans)

    @property
    def root(self) -> Span:
        roots = self._children.get(None, [])
        if len(roots) != 1:
            raise ValueError(f"span tree needs exactly one root, "
                             f"found {len(roots)}")
        return roots[0]

    def span(self, span_id: int) -> Span:
        return self._by_id[span_id]

    def children(self, span: Span) -> List[Span]:
        """Children in id (== creation) order."""
        return list(self._children.get(span.id, []))

    def of_kind(self, kind: str) -> List[Span]:
        return [s for s in self.spans if s.kind == kind]

    def nodes_under(self, span: Span) -> List[int]:
        """Distinct node indices of every task at or under ``span``."""
        out = set()
        stack = [span]
        while stack:
            s = stack.pop()
            if s.node is not None:
                out.add(s.node)
            stack.extend(self._children.get(s.id, ()))
        return sorted(out)

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def check(self, eps: float = 1e-9) -> List[str]:
        """Structural invariants; returns violation strings (empty = ok).

        * exactly one root, and it is a ``run`` span;
        * every parent id resolves, and parents are created first;
        * span kinds strictly deepen from parent to child;
        * every span has ``end >= start``;
        * well-nestedness: a child's window lies within its parent's;
        * sibling task spans live on distinct nodes (one share per node
          per operator, so two tasks of one operator never contend for
          the same cores).
        """
        problems: List[str] = []
        roots = self._children.get(None, [])
        if len(roots) != 1:
            problems.append(f"expected exactly 1 root span, got "
                            f"{len(roots)}")
        elif roots[0].kind != "run":
            problems.append(f"root span has kind {roots[0].kind!r}, "
                            f"expected 'run'")
        for span in self.spans:
            if span.end < span.start - eps:
                problems.append(f"span #{span.id} {span.name!r} ends "
                                f"before it starts "
                                f"({span.end} < {span.start})")
            if span.parent is None:
                continue
            parent = self._by_id.get(span.parent)
            if parent is None:
                problems.append(f"span #{span.id} has unknown parent "
                                f"#{span.parent}")
                continue
            if parent.id >= span.id:
                problems.append(f"span #{span.id} created before its "
                                f"parent #{parent.id}")
            if _DEPTH[span.kind] <= _DEPTH[parent.kind]:
                problems.append(
                    f"span #{span.id} kind {span.kind!r} does not "
                    f"deepen its parent's {parent.kind!r}")
            if span.start < parent.start - eps or \
                    span.end > parent.end + eps:
                problems.append(
                    f"span #{span.id} {span.name!r} "
                    f"[{span.start}, {span.end}] escapes parent "
                    f"#{parent.id} [{parent.start}, {parent.end}]")
        for parent_id, kids in self._children.items():
            if parent_id is None:
                continue
            seen_nodes: Dict[int, Span] = {}
            for kid in kids:
                if kid.kind != "task" or kid.node is None:
                    continue
                other = seen_nodes.get(kid.node)
                if other is not None:
                    problems.append(
                        f"sibling task spans #{other.id} and #{kid.id} "
                        f"share node {kid.node} under span "
                        f"#{parent_id}")
                seen_nodes[kid.node] = kid
        return problems

    # ------------------------------------------------------------------
    # serialisation (digest-friendly, picklable anyway)
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, object]:
        """JSON-ish payload (see :mod:`repro.validation.digest`)."""
        return {
            "spans": [
                {
                    "id": s.id, "kind": s.kind, "name": s.name,
                    "key": s.key, "start": s.start, "end": s.end,
                    "parent": s.parent, "node": s.node,
                    "iteration": s.iteration,
                    "meta": dict(sorted(s.meta.items())),
                } for s in self.spans
            ],
            "flows": [
                {"start": f.start, "end": f.end, "size": f.size,
                 "capacities": list(f.capacities)}
                for f in self.flows
            ],
        }

    @classmethod
    def from_spans(cls, spans: Iterable[Span]) -> "SpanTree":
        return cls(list(spans))
