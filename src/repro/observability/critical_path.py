"""Critical-path extraction over a recorded span tree.

The *critical path* of a run is a chain of span segments whose
durations sum exactly to the makespan: shortening any segment on the
path shortens the run (to first order), while off-path spans have
slack.  It is the standard lens for "why did this run take this long?"
— and, cross-engine, for "which operator does Flink pipeline away that
Spark serialises?".

Algorithm — **backward-chaining recursive tiling**.  Starting from the
root span's window ``[root.start, root.end]``, walk backwards from the
window's end:

1. among the span's children active just before the cursor, descend
   into the one reaching furthest back (ties broken by earliest start,
   then lowest span id — fully deterministic), tiling the overlap
   recursively with *its* children;
2. where no child is active (a scheduling gap, a barrier wait, driver
   work between jobs) the segment is attributed to the current span
   itself;
3. continue until the cursor reaches the window's start.

The produced segments tile the root window with no gaps or overlaps,
so ``sum(seg.duration) == makespan`` holds *by construction* — the
differential tests exploit this: any tiling bug shows up as a
path-length/wall-clock mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .spans import Span, SpanTree

__all__ = ["PathSegment", "CriticalPath", "extract_critical_path"]

#: Simulated timestamps are seconds; windows shorter than this are noise.
_EPS = 1e-9


@dataclass
class PathSegment:
    """One tile of the critical path: ``span`` was the deepest span
    responsible for ``[start, end]``."""

    span_id: int
    kind: str
    name: str
    key: str
    start: float
    end: float
    node: Optional[int] = None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class CriticalPath:
    """The full tiling, start-ordered."""

    segments: List[PathSegment]
    makespan: float

    @property
    def length(self) -> float:
        return sum(seg.duration for seg in self.segments)

    def by_span(self) -> Dict[int, float]:
        """Total path time charged to each span id."""
        out: Dict[int, float] = {}
        for seg in self.segments:
            out[seg.span_id] = out.get(seg.span_id, 0.0) + seg.duration
        return out

    def top_contributors(self, n: int = 5) -> List[PathSegment]:
        """The ``n`` segments covering the most path time (merged per
        span), longest first; ties broken by span id."""
        totals = self.by_span()
        firsts: Dict[int, PathSegment] = {}
        for seg in self.segments:
            firsts.setdefault(seg.span_id, seg)
        ranked = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
        return [PathSegment(span_id=sid, kind=firsts[sid].kind,
                            name=firsts[sid].name, key=firsts[sid].key,
                            start=firsts[sid].start,
                            end=firsts[sid].start + total,
                            node=firsts[sid].node)
                for sid, total in ranked[:n]]

    def to_payload(self) -> Dict[str, object]:
        return {
            "makespan": self.makespan,
            "length": self.length,
            "segments": [
                {"span_id": s.span_id, "kind": s.kind, "name": s.name,
                 "key": s.key, "start": s.start, "end": s.end,
                 "node": s.node}
                for s in self.segments
            ],
        }


def extract_critical_path(tree: SpanTree) -> CriticalPath:
    """Tile the root window into the deepest-responsible span segments."""
    root = tree.root
    segments: List[PathSegment] = []
    _tile(tree, root, root.start, root.end, segments)
    segments.reverse()  # built walking backwards
    return CriticalPath(segments=segments, makespan=root.duration)


def _tile(tree: SpanTree, span: Span, lo: float, hi: float,
          out: List[PathSegment]) -> None:
    """Append segments covering ``[lo, hi]`` (backwards) for ``span``."""
    if hi - lo <= _EPS:
        return
    kids = [c for c in tree.children(span)
            if c.end > lo + _EPS and c.start < hi - _EPS]
    cursor = hi
    while cursor - lo > _EPS:
        active = [c for c in kids
                  if c.start < cursor - _EPS and c.end >= cursor - _EPS]
        if active:
            child = min(active, key=lambda c: (c.start, c.id))
            seg_lo = max(child.start, lo)
            _tile(tree, child, seg_lo, cursor, out)
            cursor = seg_lo
        else:
            ends_before = [c.end for c in kids if c.end < cursor - _EPS]
            gap_lo = max([lo] + [e for e in ends_before if e > lo])
            out.append(PathSegment(
                span_id=span.id, kind=span.kind, name=span.name,
                key=span.key, start=gap_lo, end=cursor, node=span.node))
            cursor = gap_lo
