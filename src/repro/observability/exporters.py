"""Span-tree exporters: Chrome-trace JSON and CSV.

Two consumer-facing formats:

* **Chrome trace** (``chrome://tracing`` / Perfetto "JSON Object
  Format"): complete ``"X"`` duration events with microsecond
  timestamps, laid out on deterministic lanes —

  - pid 0 ``driver``: run (tid 0), jobs (tid 1), stages (tid 2);
  - pid 1 ``operators``: one tid per operator position within its
    stage, so pipelined operators that overlap in time still render
    side by side;
  - pid ``2 + n`` ``node-nnn``: that node's task spans, same per-lane
    mapping as their operators.

  Each event's ``args`` carries the span id/kind/key and, when an
  attribution map is supplied, the span's mean resource usage and
  dominant-resource verdict.

* **CSV**: one row per span (plus a separate critical-path table),
  ready for pandas/spreadsheet digestion.

Exporters are pure functions of the recorded data — same tree in,
byte-identical payload out — which is what lets a golden digest pin
them (see the ``trace01`` replay scenario).
"""

from __future__ import annotations

import io
import json
from typing import Dict, List, Optional

from .attribution import SpanAttribution
from .critical_path import CriticalPath
from .spans import Span, SpanTree

__all__ = ["chrome_trace_payload", "chrome_trace_json",
           "spans_csv", "critical_path_csv"]

_US = 1e6  # simulated seconds -> Chrome-trace microseconds

#: Fixed driver-process lanes, by span kind.
_DRIVER_TIDS = {"run": 0, "job": 1, "stage": 2}


def _lane_of(tree: SpanTree, span: Span) -> int:
    """Operator lane: position among its parent's operator children."""
    if span.parent is None:
        return 0
    siblings = [s for s in tree.children(tree.span(span.parent))
                if s.kind == span.kind]
    for i, sib in enumerate(siblings):
        if sib.id == span.id:
            return i
    return 0


def chrome_trace_payload(
        tree: SpanTree,
        attribution: Optional[Dict[int, SpanAttribution]] = None,
        label: str = "repro") -> Dict[str, object]:
    """Build the ``chrome://tracing`` JSON object for a span tree."""
    events: List[Dict[str, object]] = []
    nodes = sorted({s.node for s in tree if s.node is not None})
    # Process/thread naming metadata first, in lane order.
    def name_proc(pid: int, name: str) -> None:
        events.append({"ph": "M", "pid": pid, "tid": 0,
                       "name": "process_name", "args": {"name": name}})

    name_proc(0, f"{label}: driver")
    name_proc(1, f"{label}: operators")
    for node in nodes:
        name_proc(2 + node, f"{label}: node-{node:03d}")
    for kind, tid in sorted(_DRIVER_TIDS.items(), key=lambda kv: kv[1]):
        events.append({"ph": "M", "pid": 0, "tid": tid,
                       "name": "thread_name", "args": {"name": kind + "s"}})

    # Operator lanes are derived from the tree, so compute them once and
    # reuse for the operators' task children (same tid on the node pid).
    op_lane: Dict[int, int] = {}
    for span in tree:
        args: Dict[str, object] = {"span_id": span.id, "kind": span.kind}
        if span.key:
            args["key"] = span.key
        if span.iteration is not None:
            args["iteration"] = span.iteration
        for k in sorted(span.meta):
            args[k] = span.meta[k]
        if attribution is not None and span.id in attribution:
            attr = attribution[span.id]
            args.update({
                "cpu_percent": attr.cpu_percent,
                "disk_util_percent": attr.disk_util_percent,
                "disk_io_mibs": attr.disk_io_mibs,
                "network_mibs": attr.network_mibs,
                "memory_percent": attr.memory_percent,
                "dominant": "+".join(attr.dominant_resources()),
            })
        if span.kind in _DRIVER_TIDS:
            pid, tid = 0, _DRIVER_TIDS[span.kind]
        elif span.kind == "operator":
            lane = _lane_of(tree, span)
            op_lane[span.id] = lane
            pid, tid = 1, lane
        else:  # task
            lane = op_lane.get(span.parent, 0) \
                if span.parent is not None else 0
            pid = 2 + (span.node if span.node is not None else 0)
            tid = lane
        events.append({
            "ph": "X", "pid": pid, "tid": tid, "cat": span.kind,
            "name": span.name, "ts": span.start * _US,
            "dur": span.duration * _US, "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"exporter": "repro.observability",
                          "label": label}}


def chrome_trace_json(tree: SpanTree,
                      attribution: Optional[Dict[int, SpanAttribution]]
                      = None, label: str = "repro") -> str:
    """The payload serialised with stable key order."""
    return json.dumps(chrome_trace_payload(tree, attribution, label),
                      sort_keys=True, separators=(",", ":"))


_SPAN_COLUMNS = ("id", "kind", "name", "key", "parent", "node",
                 "iteration", "start", "end", "duration")
_ATTR_COLUMNS = ("cpu_percent", "disk_util_percent", "disk_io_mibs",
                 "network_mibs", "memory_percent", "dominant")


def _cell(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return repr(value)
    text = str(value)
    if any(ch in text for ch in ",\"\n"):
        text = '"' + text.replace('"', '""') + '"'
    return text


def spans_csv(tree: SpanTree,
              attribution: Optional[Dict[int, SpanAttribution]] = None
              ) -> str:
    """One CSV row per span, id-ordered; attribution columns optional."""
    columns = _SPAN_COLUMNS + (_ATTR_COLUMNS if attribution else ())
    buf = io.StringIO()
    buf.write(",".join(columns) + "\n")
    for span in tree:
        row = [span.id, span.kind, span.name, span.key, span.parent,
               span.node, span.iteration, span.start, span.end,
               span.duration]
        if attribution:
            attr = attribution.get(span.id)
            if attr is None:
                row.extend([None] * len(_ATTR_COLUMNS))
            else:
                row.extend([attr.cpu_percent, attr.disk_util_percent,
                            attr.disk_io_mibs, attr.network_mibs,
                            attr.memory_percent,
                            "+".join(attr.dominant_resources())])
        buf.write(",".join(_cell(v) for v in row) + "\n")
    return buf.getvalue()


def critical_path_csv(path: CriticalPath) -> str:
    """The critical-path tiling as CSV, start-ordered."""
    buf = io.StringIO()
    buf.write("start,end,duration,span_id,kind,name,key,node\n")
    for seg in path.segments:
        row = [seg.start, seg.end, seg.duration, seg.span_id, seg.kind,
               seg.name, seg.key, seg.node]
        buf.write(",".join(_cell(v) for v in row) + "\n")
    return buf.getvalue()
