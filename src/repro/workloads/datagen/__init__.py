"""Dataset models (for the simulator) and real generators (for the
executable engines): text, TeraGen, K-Means points, power-law graphs."""

from .graphs import (LARGE_GRAPH, MEDIUM_GRAPH, SMALL_GRAPH,
                     GraphDatasetModel, cc_activity_profile,
                     generate_power_law_edges)
from .points import (DEFAULT_KMEANS_MODEL, KMeansDatasetModel,
                     generate_points, true_centers)
from .teragen import (KEY_BYTES, RECORD_BYTES, TeraSortDatasetModel,
                      generate_records, range_partition_boundaries)
from .text import DEFAULT_TEXT_MODEL, TextDatasetModel, generate_lines

__all__ = [
    "DEFAULT_KMEANS_MODEL", "DEFAULT_TEXT_MODEL", "GraphDatasetModel",
    "KEY_BYTES", "KMeansDatasetModel", "LARGE_GRAPH", "MEDIUM_GRAPH",
    "RECORD_BYTES", "SMALL_GRAPH", "TeraSortDatasetModel",
    "TextDatasetModel", "cc_activity_profile", "generate_lines",
    "generate_points", "generate_power_law_edges", "generate_records",
    "range_partition_boundaries", "true_centers",
]
