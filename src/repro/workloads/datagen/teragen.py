"""TeraGen: the Tera Sort input (paper §III).

"100-byte records, with the first 10 bytes representing the sort key",
generated "using the TeraGen program with Hadoop".  The simulator uses
:class:`TeraSortDatasetModel`; the local engines sort real records from
:func:`generate_records`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ...engines.common.stats import DataStats

__all__ = ["TeraSortDatasetModel", "generate_records", "RECORD_BYTES",
           "KEY_BYTES"]

RECORD_BYTES = 100
KEY_BYTES = 10


@dataclass(frozen=True)
class TeraSortDatasetModel:
    """Statistical shape of a TeraGen dataset."""

    record_bytes: float = float(RECORD_BYTES)
    key_bytes: float = float(KEY_BYTES)

    def stats(self, total_bytes: float) -> DataStats:
        records = total_bytes / self.record_bytes
        # Keys are effectively unique 10-byte random strings.
        return DataStats(records=records, record_bytes=self.record_bytes,
                         key_cardinality=records)


def generate_records(num_records: int, seed: int = 0
                     ) -> List[Tuple[bytes, bytes]]:
    """Real (key, payload) records in TeraGen's format."""
    if num_records < 0:
        raise ValueError("num_records must be >= 0")
    rng = np.random.default_rng(seed)
    keys = rng.integers(32, 127, size=(num_records, KEY_BYTES),
                        dtype=np.uint8)
    payloads = rng.integers(32, 127,
                            size=(num_records, RECORD_BYTES - KEY_BYTES),
                            dtype=np.uint8)
    return [(keys[i].tobytes(), payloads[i].tobytes())
            for i in range(num_records)]


def range_partition_boundaries(num_partitions: int) -> List[bytes]:
    """Boundaries of Hadoop's TotalOrderPartitioner over the printable
    ASCII key space (the paper uses "the same range partitioner ... based
    on Hadoop's TotalOrderPartitioner" for both engines)."""
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    lo, hi = 32, 127
    bounds = []
    for i in range(1, num_partitions):
        x = lo + (hi - lo) * i / num_partitions
        first = int(x)
        frac = x - first
        second = int(32 + 95 * frac)
        bounds.append(bytes([first, second] + [32] * (KEY_BYTES - 2)))
    return bounds
