"""Wikipedia-like text: the Word Count / Grep input.

Two products, one distribution family:

* :class:`TextDatasetModel` — the statistical descriptor the simulator
  consumes (line/word sizes, Zipf vocabulary, match selectivity);
* :func:`generate_lines` — a real generator producing Zipf-distributed
  text lines for the executable mini-engines and the examples.

The paper reads "Wikipedia text files from HDFS"; English Wikipedia has
heavily Zipfian word frequencies, which is what makes map-side
combining effective (each map partition sees far fewer distinct words
than words).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ...engines.common.stats import DataStats

__all__ = ["TextDatasetModel", "generate_lines", "DEFAULT_TEXT_MODEL"]


@dataclass(frozen=True)
class TextDatasetModel:
    """Statistical shape of the text corpus."""

    #: Mean line length in bytes (Wikipedia articles, one line ≈ one
    #: sentence/paragraph chunk).
    line_bytes: float = 120.0
    #: Mean words per line.
    words_per_line: float = 18.0
    #: Effective vocabulary (distinct words that matter for combining;
    #: Zipf weight concentrates practically all mass here).
    vocabulary: float = 2.0e6
    #: Mean bytes of one word record (word + framing).
    word_bytes: float = 10.0
    #: Bytes of one (word, count) pair.
    pair_bytes: float = 16.0
    #: Fraction of lines matching the Grep pattern.
    grep_selectivity: float = 0.05

    def lines_stats(self, total_bytes: float) -> DataStats:
        return DataStats(records=total_bytes / self.line_bytes,
                         record_bytes=self.line_bytes)

    def words_stats(self, total_bytes: float) -> DataStats:
        lines = total_bytes / self.line_bytes
        return DataStats(records=lines * self.words_per_line,
                         record_bytes=self.word_bytes,
                         key_cardinality=self.vocabulary)

    @property
    def flatmap_selectivity(self) -> float:
        return self.words_per_line

    @property
    def flatmap_bytes_ratio(self) -> float:
        return self.word_bytes / self.line_bytes


DEFAULT_TEXT_MODEL = TextDatasetModel()


_WORD_CHARS = np.array(list("abcdefghijklmnopqrstuvwxyz"))


def _make_vocabulary(size: int, rng: np.random.Generator) -> List[str]:
    """Deterministic pseudo-words of realistic lengths."""
    lengths = rng.integers(2, 12, size=size)
    words = []
    for i, ln in enumerate(lengths):
        idx = rng.integers(0, 26, size=ln)
        words.append("".join(_WORD_CHARS[idx]))
    return words


def generate_lines(num_lines: int, *, words_per_line: int = 12,
                   vocabulary_size: int = 2000, zipf_a: float = 1.3,
                   seed: int = 0) -> List[str]:
    """Generate Zipf-distributed text lines (for the local engines)."""
    if num_lines < 0:
        raise ValueError("num_lines must be >= 0")
    if vocabulary_size < 1:
        raise ValueError("vocabulary_size must be >= 1")
    rng = np.random.default_rng(seed)
    vocab = _make_vocabulary(vocabulary_size, rng)
    # Zipf ranks (1-based), clipped into the vocabulary.
    total_words = num_lines * words_per_line
    ranks = rng.zipf(zipf_a, size=total_words)
    ranks = np.minimum(ranks, vocabulary_size) - 1
    lines = []
    for i in range(num_lines):
        chunk = ranks[i * words_per_line:(i + 1) * words_per_line]
        lines.append(" ".join(vocab[r] for r in chunk))
    return lines
