"""HiBench-style K-Means input (paper §III).

"The input is generated using the HiBench suite (training records with
2 dimensions)" — a Gaussian mixture around ``k`` true centers.  The
paper's run uses a 51 GB dataset of 1.2 billion samples over 10
iterations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...engines.common.stats import DataStats

__all__ = ["KMeansDatasetModel", "generate_points", "DEFAULT_KMEANS_MODEL"]


@dataclass(frozen=True)
class KMeansDatasetModel:
    """Statistical shape of the HiBench K-Means dataset."""

    #: Text representation: "x,y\n" with ~double precision decimals.
    record_bytes: float = 42.5   # 51 GB / 1.2e9 samples
    #: Parsed in-memory point (two doubles + framing).
    point_bytes: float = 24.0
    dimensions: int = 2
    num_centers: int = 16

    def stats(self, total_bytes: float) -> DataStats:
        return DataStats(records=total_bytes / self.record_bytes,
                         record_bytes=self.record_bytes,
                         key_cardinality=self.num_centers)

    def parsed_stats(self, total_bytes: float) -> DataStats:
        records = total_bytes / self.record_bytes
        return DataStats(records=records, record_bytes=self.point_bytes,
                         key_cardinality=self.num_centers)


DEFAULT_KMEANS_MODEL = KMeansDatasetModel()


def generate_points(num_points: int, num_centers: int = 4,
                    spread: float = 0.05, seed: int = 0) -> np.ndarray:
    """2-D Gaussian mixture samples (HiBench GenKMeansDataset shape)."""
    if num_points < 0:
        raise ValueError("num_points must be >= 0")
    if num_centers < 1:
        raise ValueError("num_centers must be >= 1")
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-1.0, 1.0, size=(num_centers, 2))
    assignment = rng.integers(0, num_centers, size=num_points)
    noise = rng.normal(0.0, spread, size=(num_points, 2))
    return centers[assignment] + noise


def true_centers(num_centers: int = 4, seed: int = 0) -> np.ndarray:
    """The mixture centers :func:`generate_points` drew from."""
    rng = np.random.default_rng(seed)
    return rng.uniform(-1.0, 1.0, size=(num_centers, 2))
