"""Graph datasets: the three published graphs plus real generators.

Table IV of the paper:

=========  ==============  ===========  ========
Graph      Nodes / Edges   Size         Source
=========  ==============  ===========  ========
Small      24.7 M / 0.8 B  13.7 GB      Twitter social graph
Medium     65.6 M / 1.8 B  30.1 GB      Friendster
Large      1.7 B / 64 B    1.2 TB       WDC hyperlink graph
=========  ==============  ===========  ========

The simulator uses :class:`GraphDatasetModel` descriptors constructed
from exactly those numbers; the local engines run on real power-law
(RMAT-style) graphs from :func:`generate_power_law_edges`, which share
the degree skew that drives the workloads' shuffle behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from ...engines.common.stats import DataStats

__all__ = ["GraphDatasetModel", "SMALL_GRAPH", "MEDIUM_GRAPH", "LARGE_GRAPH",
           "generate_power_law_edges", "cc_activity_profile"]

GiB = 2**30
TiB = 2**40


@dataclass(frozen=True)
class GraphDatasetModel:
    """Statistical shape of one graph dataset (Table IV)."""

    name: str
    num_vertices: float
    num_edges: float
    size_bytes: float
    #: Messages exchanged per Page-Rank-style superstep are one per
    #: edge; this is the in-memory bytes of one message.
    message_bytes: float = 12.0
    #: In-memory bytes of one vertex state entry.
    vertex_state_bytes: float = 24.0
    #: GraphX's per-edge iteration cost shrinks on the huge, id-dense
    #: WDC graph (primitive-array vertex storage amortises; the paper
    #: measures Spark ≈1.7x faster than Flink there, Table VII) while
    #: Gelly's CoGroup path does not.  Multiplier on Spark's iteration
    #: operator rates; calibrated against Table VII's Iter. columns.
    spark_iteration_rate_boost: float = 1.0
    #: In-degree concentration: the effective number of distinct
    #: message targets is ``num_vertices * hub_concentration``.  Web
    #: hyperlinks pile onto popular pages, so map-side aggregation
    #: shrinks Page Rank messages dramatically on the WDC graph.
    hub_concentration: float = 1.0

    @property
    def edge_bytes(self) -> float:
        """On-disk bytes of one edge in the text edge list."""
        return self.size_bytes / self.num_edges

    def edges_stats(self) -> DataStats:
        return DataStats(records=self.num_edges,
                         record_bytes=self.edge_bytes,
                         key_cardinality=self.num_vertices)

    def vertices_stats(self) -> DataStats:
        return DataStats(records=self.num_vertices,
                         record_bytes=self.vertex_state_bytes,
                         key_cardinality=self.num_vertices)

    def messages_stats(self, bytes_per_message: Optional[float] = None
                       ) -> DataStats:
        """One message per edge per superstep.

        Page Rank messages carry a double rank plus ids and framing
        (~48 B in object form); Connected Components messages are a
        bare candidate label (~12 B) — the size gap is why Spark's
        Page Rank iterations die on the Large graph while Connected
        Components survives (Table VII).
        """
        return DataStats(records=self.num_edges,
                         record_bytes=(self.message_bytes
                                       if bytes_per_message is None
                                       else bytes_per_message),
                         key_cardinality=self.num_vertices *
                         self.hub_concentration)


#: Twitter social graph [36].
SMALL_GRAPH = GraphDatasetModel("small", 24.7e6, 0.8e9, 13.7 * GiB)
#: Friendster [37].
MEDIUM_GRAPH = GraphDatasetModel("medium", 65.6e6, 1.8e9, 30.1 * GiB)
#: WDC hyperlink graph [38], "the largest hyperlink graph available to
#: the public".
LARGE_GRAPH = GraphDatasetModel("large", 1.7e9, 64e9, 1.2 * TiB,
                                spark_iteration_rate_boost=3.2,
                                hub_concentration=0.01)


class _GeometricActivity:
    """Picklable ``iteration -> activity`` profile (see below).

    A class rather than a closure so that workloads carrying a profile
    can cross process boundaries (the parallel experiment harness ships
    workloads to worker processes by pickle).
    """

    __slots__ = ("decay", "floor")

    def __init__(self, decay: float, floor: float) -> None:
        self.decay = decay
        self.floor = floor

    def __call__(self, iteration: int) -> float:
        return max(self.floor, self.decay ** (iteration - 1))


def cc_activity_profile(decay: float = 0.55, floor: float = 0.02
                        ) -> Callable[[int], float]:
    """Fraction of vertices still active at superstep ``i`` (1-based).

    Connected Components converges geometrically: most vertices adopt
    their final label within a few rounds — the mechanism behind the
    shrinking per-iteration spans of Fig. 17 (``MR1``=61 s down to
    ~22 s) and behind delta iterations' advantage.
    """
    if not 0 < decay <= 1:
        raise ValueError("decay must be in (0, 1]")
    return _GeometricActivity(decay, floor)


def generate_power_law_edges(num_vertices: int, num_edges: int,
                             alpha: float = 0.6, seed: int = 0
                             ) -> List[Tuple[int, int]]:
    """RMAT-flavoured power-law directed edge list (real data).

    Endpoints are drawn from ``U**(1/(1-alpha))``-style skewed indices,
    giving a heavy-tailed degree distribution like the Twitter /
    Friendster / WDC graphs.
    """
    if num_vertices < 1:
        raise ValueError("num_vertices must be >= 1")
    if num_edges < 0:
        raise ValueError("num_edges must be >= 0")
    if not 0 < alpha < 1:
        raise ValueError("alpha must be in (0, 1)")
    rng = np.random.default_rng(seed)
    exponent = 1.0 / (1.0 - alpha)
    u = rng.random(size=(num_edges, 2))
    idx = np.floor(num_vertices * (u ** exponent)).astype(np.int64)
    idx = np.minimum(idx, num_vertices - 1)
    # Avoid self-loops deterministically.
    same = idx[:, 0] == idx[:, 1]
    idx[same, 1] = (idx[same, 1] + 1) % num_vertices
    return [(int(s), int(d)) for s, d in idx]
