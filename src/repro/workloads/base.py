"""Workload abstraction: one benchmark, two engine plans, one oracle.

A :class:`Workload` bundles everything the harness needs to run one of
the paper's six benchmarks on either engine:

* ``input_files()`` — the HDFS datasets to import before the run;
* ``spark_jobs()`` / ``flink_jobs()`` — the logical plans each engine
  executes (matching the operator sequences of §III and Table I);
* ``spark_operators`` / ``flink_operators`` — the Table I inventory;
* a local, really-executable implementation lives in
  ``repro.localexec`` keyed by the same workload name.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Tuple

from ..engines.common.operators import LogicalPlan

__all__ = ["Workload"]


class Workload(abc.ABC):
    """One of the paper's six benchmarks."""

    #: Short identifier ("wordcount", "grep", ...).
    name: str = ""
    #: Table I column header ("WC", "G", "TS", "KM", "PR", "CC").
    table1_column: str = ""
    #: "batch" or "iterative".
    category: str = "batch"

    @abc.abstractmethod
    def input_files(self) -> List[Tuple[str, float]]:
        """(hdfs path, size in bytes) datasets to import before runs."""

    @abc.abstractmethod
    def spark_jobs(self) -> List[LogicalPlan]:
        """The Spark driver program as one plan per triggered job."""

    @abc.abstractmethod
    def flink_jobs(self) -> List[LogicalPlan]:
        """The Flink program, one plan per executed job graph."""

    def jobs(self, engine: str) -> List[LogicalPlan]:
        if engine == "spark":
            return self.spark_jobs()
        if engine == "flink":
            return self.flink_jobs()
        raise ValueError(f"unknown engine {engine!r}")

    # ------------------------------------------------------------------
    # Table I inventory
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def operators(self) -> Dict[str, List[str]]:
        """Table I rows: ``{"common": [...], "spark": [...], "flink": [...]}``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
