"""Word Count (paper §III, §VI-A).

"A good fit for evaluating the aggregation component in each framework,
since both Spark and Flink use a map side combiner to reduce the
intermediate data."

Flink:  flatMap -> groupBy -> sum -> writeAsText
Spark:  flatMap -> mapToPair -> reduceByKey -> saveAsTextFile
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..engines.common.operators import LogicalPlan, Op, OpKind
from .base import Workload
from .datagen.text import DEFAULT_TEXT_MODEL, TextDatasetModel

__all__ = ["WordCount"]


class WordCount(Workload):
    name = "wordcount"
    table1_column = "WC"
    category = "batch"

    def __init__(self, total_bytes: float,
                 model: TextDatasetModel = DEFAULT_TEXT_MODEL) -> None:
        if total_bytes <= 0:
            raise ValueError("total_bytes must be positive")
        self.total_bytes = float(total_bytes)
        self.model = model

    # ------------------------------------------------------------------
    def input_files(self) -> List[Tuple[str, float]]:
        return [("/data/wikipedia.txt", self.total_bytes)]

    def _stats(self):
        return self.model.lines_stats(self.total_bytes)

    def _flatmap_op(self, name: str) -> Op:
        return Op(OpKind.FLAT_MAP, name,
                  selectivity=self.model.flatmap_selectivity,
                  bytes_ratio=self.model.flatmap_bytes_ratio,
                  output_keys=self.model.vocabulary)

    def spark_jobs(self) -> List[LogicalPlan]:
        plan = LogicalPlan(
            name="wordcount",
            input_stats=self._stats(),
            ops=[
                Op(OpKind.SOURCE, hidden=True),
                self._flatmap_op("FlatMap"),
                # Pairing adds a count field; negligible in tungsten's
                # binary form, so the byte volume is unchanged.
                Op(OpKind.MAP_TO_PAIR, "MapToPair"),
                Op(OpKind.REDUCE_BY_KEY, "ReduceByKey",
                   selectivity=1.0, output_keys=self.model.vocabulary),
                Op(OpKind.SINK, "SaveAsTextFile"),
            ])
        return [plan]

    def flink_jobs(self) -> List[LogicalPlan]:
        pair_ratio = self.model.pair_bytes / self.model.word_bytes
        plan = LogicalPlan(
            name="wordcount",
            input_stats=self._stats(),
            ops=[
                Op(OpKind.SOURCE, "DataSource"),
                self._flatmap_op("FlatMap"),
                Op(OpKind.GROUP_REDUCE, "GroupReduce",
                   bytes_ratio=pair_ratio,
                   output_keys=self.model.vocabulary),
                Op(OpKind.SINK, "DataSink"),
            ])
        return [plan]

    @property
    def operators(self) -> Dict[str, List[str]]:
        return {
            "common": ["flatMap", "save"],
            "spark": ["mapToPair", "reduceByKey"],
            "flink": ["groupBy->sum"],
        }
