"""Page Rank (paper §III, §VI-E).

Spark runs GraphX's standalone implementation: the graph is loaded,
partitioned into ``spark.edge.partition`` pieces and cached; every
iteration is an unrolled ``mapPartitions -> foreachPartition`` job that
aggregates messages and *materialises intermediate ranks to disk* — the
disk usage during iterations in Fig. 16 (right).

Flink runs Gelly's vertex-centric iteration: a first job counts the
vertices (reading the dataset one more time — the paper found Flink's
win "rather surprising" given this), then the main job loads the graph
and iterates with CoGroup inside a bulk iteration, all pipelined and
memory-resident (no disk during iterations, more network).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..engines.common.operators import LogicalPlan, Op, OpKind
from .base import Workload
from .datagen.graphs import GraphDatasetModel

__all__ = ["PageRank"]

MiB = 2**20

#: A Page Rank message in object form: rank double + vertex ids +
#: Tuple framing.  PR's fat messages are why its iterations die on the
#: Large graph in Spark while Connected Components' thin ones survive.
PR_MESSAGE_BYTES = 48.0
#: Parsing an edge-list line and emitting (src, dst) tuples.
GRAPH_PARSE_RATE = 11.0 * MiB
#: Building the partitioned graph structures (GraphX EdgePartition /
#: Gelly adjacency): ~600k edges per second per core at split-limited scan parallelism, per the paper's
#: load-span timings on the Small and Medium graphs.
GRAPH_BUILD_RATE = 11.0 * MiB


class PageRank(Workload):
    name = "pagerank"
    table1_column = "PR"
    category = "iterative"

    def __init__(self, graph: GraphDatasetModel, iterations: int = 20,
                 edge_partitions: Optional[int] = None) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.graph = graph
        self.iterations = iterations
        self.edge_partitions = edge_partitions

    def input_files(self) -> List[Tuple[str, float]]:
        return [(f"/data/graph-{self.graph.name}", self.graph.size_bytes)]

    # ------------------------------------------------------------------
    def spark_jobs(self) -> List[LogicalPlan]:
        edges = self.graph.edges_stats()
        messages = self.graph.messages_stats(PR_MESSAGE_BYTES)
        # Aggregated (vertexId, rank) pairs in GraphX's primitive
        # arrays: ~12 B each on the wire.
        ranks_bytes_ratio = 12.0 / PR_MESSAGE_BYTES
        boost = self.graph.spark_iteration_rate_boost
        body = LogicalPlan(
            name="pagerank-step", body_plan=True, input_stats=messages,
            ops=[
                # PR iterates over the ranks/messages RDD, which is
                # hash-partitioned at default parallelism (unlike CC's
                # triplet view, which keeps the edge partitioning).
                Op(OpKind.MAP_PARTITIONS, "mapPartitions",
                   cpu_rate=22 * MiB * boost,
                   use_cached_partitioning=False),
                Op(OpKind.REDUCE_BY_KEY, "aggregateMessages", hidden=True,
                   cpu_rate=50 * MiB * boost, binary_format=True,
                   output_keys=self.graph.num_vertices,
                   bytes_ratio=ranks_bytes_ratio),
                Op(OpKind.MAP, "foreachPartition",
                   materialize_to_disk=True, cpu_rate=120 * MiB),
            ])
        vertices = self.graph.vertices_stats()
        plan = LogicalPlan(
            name="pagerank",
            input_stats=edges,
            ops=[
                Op(OpKind.SOURCE, hidden=True),
                Op(OpKind.MAP, "Map", cpu_rate=GRAPH_BUILD_RATE),
                Op(OpKind.COALESCE, "Coalesce"),
                Op(OpKind.PARTITION, "Load Graph", cached=True,
                   partitions=self.edge_partitions, cpu_rate=16 * MiB),
                Op(OpKind.BULK_ITERATION, "iterate", body=body,
                   iterations=self.iterations,
                   selectivity=vertices.records / edges.records,
                   bytes_ratio=self.graph.vertex_state_bytes /
                   edges.record_bytes),
                Op(OpKind.MAP_PARTITIONS, "mapPartitions",
                   cpu_rate=200 * MiB),
                Op(OpKind.SINK, "saveAsTextFile"),
            ])
        return [plan]

    def flink_jobs(self) -> List[LogicalPlan]:
        edges = self.graph.edges_stats()
        messages = self.graph.messages_stats(PR_MESSAGE_BYTES)
        vertices = self.graph.vertices_stats()
        count_vertices = LogicalPlan(
            name="count-vertices",
            input_stats=edges,
            ops=[
                Op(OpKind.SOURCE, "DataSource"),
                Op(OpKind.FLAT_MAP, "FlatMap", selectivity=2.0,
                   bytes_ratio=0.5, cpu_rate=GRAPH_PARSE_RATE,
                   output_keys=self.graph.num_vertices),
                Op(OpKind.GROUP_REDUCE, "GroupReduce",
                   output_keys=self.graph.num_vertices),
                Op(OpKind.MAP, "Map", cpu_rate=400 * MiB),
                Op(OpKind.FLAT_MAP, "FlatMap",
                   selectivity=1.0 / max(vertices.records, 1.0),
                   cpu_rate=400 * MiB),
                Op(OpKind.SINK, "DataSink"),
            ])
        body = LogicalPlan(
            name="pagerank-superstep", body_plan=True, input_stats=messages,
            ops=[
                Op(OpKind.CO_GROUP, "CoGroup", cpu_rate=30 * MiB,
                   output_keys=self.graph.num_vertices),
            ])
        main = LogicalPlan(
            name="pagerank",
            input_stats=edges,
            ops=[
                Op(OpKind.SOURCE, "DataSource"),
                Op(OpKind.FLAT_MAP, "FlatMap", cpu_rate=GRAPH_PARSE_RATE,
                   output_keys=self.graph.num_vertices),
                Op(OpKind.GROUP_REDUCE, "GroupReduce",
                   output_keys=self.graph.num_vertices,
                   bytes_ratio=2.0),
                Op(OpKind.MAP, "Map", cpu_rate=200 * MiB),
                Op(OpKind.CO_GROUP, "CoGroup", cpu_rate=14 * MiB),
                Op(OpKind.BULK_ITERATION, "Iterations", body=body,
                   iterations=self.iterations,
                   side_input=edges,
                   selectivity=vertices.records / edges.records,
                   bytes_ratio=self.graph.vertex_state_bytes /
                   edges.record_bytes),
                Op(OpKind.SINK, "DataSink"),
            ])
        return [count_vertices, main]

    @property
    def operators(self) -> Dict[str, List[str]]:
        return {
            "common": ["graph-specific", "save"],
            "spark": ["outerJoinVertices", "mapTriplets", "mapVertices",
                      "joinVertices", "foreachPartition", "coalesce",
                      "mapPartitionsWithIndex"],
            "flink": ["outDegrees", "joinWithEdgesOnSource", "withEdges",
                      "BulkIteration"],
        }
