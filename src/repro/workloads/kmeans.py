"""K-Means (paper §III, §VI-D).

"In each iteration, a data point is assigned to its nearest cluster
center, using a map function.  Data points are grouped to their center
to further obtain a new cluster center at the end of each iteration.
This workload evaluates the effectiveness of the caching mechanism and
the basic transformations: map, reduceByKey (for Flink: groupBy ->
reduce), and Flink's bulk iterate operator."

Spark caches the parsed points and unrolls the loop:
``map -> reduceByKey -> collectAsMap`` per iteration (Fig. 10 right).
Flink expresses the loop as one bulk iteration scheduled once
(Fig. 10 left).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..engines.common.operators import LogicalPlan, Op, OpKind
from ..engines.common.stats import DataStats
from .base import Workload
from .datagen.points import DEFAULT_KMEANS_MODEL, KMeansDatasetModel

__all__ = ["KMeans"]

MiB = 2**20

#: Distance computation to every center, per parsed point: calibrated
#: to the paper's ~8 s per-iteration spans on 24 nodes (Fig. 10).
ASSIGN_RATE = 24.0 * MiB
#: Parsing decimal text into boxed doubles and building the cached RDD
#: / DataSet: the dominant cost of the 200 s load span in Fig. 10.
PARSE_RATE = 1.45 * MiB


class KMeans(Workload):
    name = "kmeans"
    table1_column = "KM"
    category = "iterative"

    def __init__(self, total_bytes: float, iterations: int = 10,
                 model: KMeansDatasetModel = DEFAULT_KMEANS_MODEL) -> None:
        if total_bytes <= 0:
            raise ValueError("total_bytes must be positive")
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.total_bytes = float(total_bytes)
        self.iterations = iterations
        self.model = model

    def input_files(self) -> List[Tuple[str, float]]:
        return [("/data/kmeans-samples", self.total_bytes)]

    def _parsed(self) -> DataStats:
        return self.model.parsed_stats(self.total_bytes)

    def _centers(self) -> DataStats:
        return DataStats(records=float(self.model.num_centers),
                         record_bytes=64.0,
                         key_cardinality=float(self.model.num_centers))

    # ------------------------------------------------------------------
    def spark_jobs(self) -> List[LogicalPlan]:
        parsed = self._parsed()
        body = LogicalPlan(
            name="kmeans-step", body_plan=True, input_stats=parsed,
            ops=[
                Op(OpKind.MAP, "map", cpu_rate=ASSIGN_RATE,
                   output_keys=float(self.model.num_centers)),
                Op(OpKind.REDUCE_BY_KEY, "reduceByKey", hidden=True,
                   cpu_rate=60 * MiB,
                   output_keys=float(self.model.num_centers)),
                Op(OpKind.COLLECT_AS_MAP, "collectAsMap"),
            ])
        centers_out = self._centers()
        plan = LogicalPlan(
            name="kmeans",
            input_stats=self.model.stats(self.total_bytes),
            ops=[
                Op(OpKind.SOURCE, hidden=True),
                Op(OpKind.MAP, "map", cached=True, cpu_rate=PARSE_RATE,
                   bytes_ratio=self.model.point_bytes / self.model.record_bytes),
                Op(OpKind.COLLECT_AS_MAP, "collectAsMap",
                   selectivity=self.model.num_centers / parsed.records,
                   bytes_ratio=64.0 / self.model.point_bytes),
                Op(OpKind.BULK_ITERATION, "iterate", body=body,
                   iterations=self.iterations,
                   selectivity=centers_out.records / parsed.records,
                   bytes_ratio=64.0 / self.model.point_bytes),
                Op(OpKind.SINK, "saveAsTextFile", hidden=True),
            ])
        return [plan]

    def flink_jobs(self) -> List[LogicalPlan]:
        parsed = self._parsed()
        body = LogicalPlan(
            name="kmeans-step", body_plan=True, input_stats=parsed,
            ops=[
                Op(OpKind.MAP, "Map", cpu_rate=ASSIGN_RATE,
                   output_keys=float(self.model.num_centers)),
                Op(OpKind.MAP, "Map", cpu_rate=400 * MiB),
                Op(OpKind.GROUP_REDUCE, "Reduce", cpu_rate=60 * MiB,
                   output_keys=float(self.model.num_centers)),
                Op(OpKind.MAP, "Map", cpu_rate=400 * MiB,
                   side_input=self._centers()),  # withBroadcastSet
            ])
        centers_out = self._centers()
        plan = LogicalPlan(
            name="kmeans",
            input_stats=self.model.stats(self.total_bytes),
            ops=[
                Op(OpKind.SOURCE, "DataSource"),
                Op(OpKind.MAP, "Map", cpu_rate=PARSE_RATE,
                   bytes_ratio=self.model.point_bytes / self.model.record_bytes),
                Op(OpKind.BULK_ITERATION, "iterate", body=body,
                   iterations=self.iterations,
                   selectivity=centers_out.records / parsed.records,
                   bytes_ratio=64.0 / self.model.point_bytes),
                Op(OpKind.FLAT_MAP, "FlatMap", cpu_rate=400 * MiB),
                Op(OpKind.SINK, "DataSink"),
            ])
        return [plan]

    @property
    def operators(self) -> Dict[str, List[str]]:
        return {
            "common": ["map", "save"],
            "spark": ["reduceByKey", "collectAsMap"],
            "flink": ["BulkIteration", "groupBy->reduce",
                      "withBroadcastSet"],
        }
