"""Grep (paper §III, §VI-B).

"A common command for searching plain-text data sets. Here, we use it
to evaluate the filter transformation and the count action.  Both Flink
and Spark implement the following sequence of operators applied on
their specific datasets: filter -> count."
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..engines.common.operators import LogicalPlan, Op, OpKind
from .base import Workload
from .datagen.text import DEFAULT_TEXT_MODEL, TextDatasetModel

__all__ = ["Grep"]


class Grep(Workload):
    name = "grep"
    table1_column = "G"
    category = "batch"

    def __init__(self, total_bytes: float,
                 model: TextDatasetModel = DEFAULT_TEXT_MODEL) -> None:
        if total_bytes <= 0:
            raise ValueError("total_bytes must be positive")
        self.total_bytes = float(total_bytes)
        self.model = model

    def input_files(self) -> List[Tuple[str, float]]:
        return [("/data/wikipedia.txt", self.total_bytes)]

    def _filter_op(self, name: str = "Filter") -> Op:
        return Op(OpKind.FILTER, name,
                  selectivity=self.model.grep_selectivity)

    def spark_jobs(self) -> List[LogicalPlan]:
        plan = LogicalPlan(
            name="grep",
            input_stats=self.model.lines_stats(self.total_bytes),
            ops=[
                Op(OpKind.SOURCE, hidden=True),
                self._filter_op(),
                Op(OpKind.COUNT, "Count", hidden=True),
            ])
        return [plan]

    def flink_jobs(self) -> List[LogicalPlan]:
        # Flink 0.10's count() materialises the filtered DataSet through
        # a FlatMap into a low-parallelism sink — the inefficiency the
        # paper observes in Fig. 6.
        plan = LogicalPlan(
            name="grep",
            input_stats=self.model.lines_stats(self.total_bytes),
            ops=[
                Op(OpKind.SOURCE, "DataSource"),
                self._filter_op(),
                Op(OpKind.FLAT_MAP, "FlatMap", selectivity=1.0,
                   cpu_rate=200 * 2**20),
                Op(OpKind.COUNT, "Count", hidden=True),
            ])
        return [plan]

    @property
    def operators(self) -> Dict[str, List[str]]:
        return {
            "common": ["filter->count", "save"],
            "spark": [],
            "flink": [],
        }
