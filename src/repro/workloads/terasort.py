"""Tera Sort (paper §III, §VI-C).

100-byte records with 10-byte keys, Hadoop's TotalOrderPartitioner for
both engines so the comparison is fair.

Spark: ``newAPIHadoopFile`` (read + local sort) then
``repartitionAndSortWithinPartitions`` with the custom partitioner —
two clearly separated stages ("RS=Read->Sort" and
"SSW=Shuffling->Sort->Write" in Fig. 9).

Flink: map to ``OptimizedText`` key/value tuples (binary comparisons
without deserialisation), ``partitionCustom`` on the key, then
``sortPartition`` and the Hadoop output sink — one pipelined stage
("DM=DataSource->Map, P=Partition, SM=Sort-Partition->Map, DS=DataSink").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..engines.common.operators import LogicalPlan, Op, OpKind
from .base import Workload
from .datagen.teragen import TeraSortDatasetModel

__all__ = ["TeraSort"]


class TeraSort(Workload):
    name = "terasort"
    table1_column = "TS"
    category = "batch"

    def __init__(self, total_bytes: float, num_partitions: Optional[int] = None,
                 model: TeraSortDatasetModel = TeraSortDatasetModel()) -> None:
        if total_bytes <= 0:
            raise ValueError("total_bytes must be positive")
        self.total_bytes = float(total_bytes)
        self.model = model
        #: "The number of partitions is equal to the Flink parallelism
        #: number" (Table III).
        self.num_partitions = num_partitions

    def input_files(self) -> List[Tuple[str, float]]:
        return [("/data/teragen", self.total_bytes)]

    def _stats(self):
        return self.model.stats(self.total_bytes)

    def spark_jobs(self) -> List[LogicalPlan]:
        plan = LogicalPlan(
            name="terasort",
            input_stats=self._stats(),
            ops=[
                Op(OpKind.SOURCE, "Read"),
                # newAPIHadoopFile parse + local sort of each block.
                Op(OpKind.MAP, "Sort", cpu_rate=26 * 2**20),
                # The repartition itself only routes records; the real
                # sorting CPU is the SORT_PARTITION op below.
                Op(OpKind.REPARTITION_SORT, "Shuffling",
                   partitions=self.num_partitions, binary_format=True,
                   cpu_rate=200 * 2**20),
                Op(OpKind.SORT_PARTITION, "Sort"),
                Op(OpKind.SINK, "Write", hidden=True, sink_replication=1),
            ])
        return [plan]

    def flink_jobs(self) -> List[LogicalPlan]:
        plan = LogicalPlan(
            name="terasort",
            input_stats=self._stats(),
            ops=[
                Op(OpKind.SOURCE, "DataSource"),
                # Map to OptimizedText binary tuples: avoids
                # deserialisation when comparing keys.
                Op(OpKind.MAP, "Map", cpu_rate=40 * 2**20),
                Op(OpKind.PARTITION, "Partition", binary_format=True,
                   partitions=self.num_partitions, cpu_rate=200 * 2**20),
                Op(OpKind.SORT_PARTITION, "Sort-Partition"),
                Op(OpKind.MAP, "Map", cpu_rate=200 * 2**20),
                Op(OpKind.SINK, "DataSink", sink_replication=1),
            ])
        return [plan]

    @property
    def operators(self) -> Dict[str, List[str]]:
        return {
            "common": ["map", "save"],
            "spark": ["repartitionAndSortWithinPartitions"],
            "flink": ["partitionCustom->sortPartition"],
        }
