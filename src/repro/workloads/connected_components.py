"""Connected Components (paper §III, §VI-E).

Spark runs GraphX's ``ConnectedComponents`` (unrolled
``mapPartitions -> reduce`` jobs whose work shrinks as labels converge,
Fig. 17 right).  Flink runs the vertex-centric implementation and — the
configuration the paper highlights — a *delta iteration* variant whose
workset shrinks every superstep, "mainly because of its efficient delta
iteration operator" (up to 30 % faster on the Medium graph).

``mode="bulk"`` selects Flink's classic bulk-iteration variant so the
paper's delta-vs-bulk comparison (and our ablation bench) can run.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..engines.common.operators import LogicalPlan, Op, OpKind
from .base import Workload
from .datagen.graphs import GraphDatasetModel, cc_activity_profile

__all__ = ["ConnectedComponents"]

MiB = 2**20

#: A CC message is a bare candidate component id (~12 B in binary
#: form) - an order of magnitude thinner than Page Rank's.
CC_MESSAGE_BYTES = 12.0
#: Shared with Page Rank: parsing edge lists / building the graph.
from .pagerank import GRAPH_BUILD_RATE, GRAPH_PARSE_RATE  # noqa: E402


class ConnectedComponents(Workload):
    name = "connected-components"
    table1_column = "CC"
    category = "iterative"

    def __init__(self, graph: GraphDatasetModel, iterations: int = 23,
                 edge_partitions: Optional[int] = None,
                 mode: str = "delta",
                 activity: Optional[Callable[[int], float]] = None) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if mode not in ("delta", "bulk"):
            raise ValueError(f"mode must be 'delta' or 'bulk', got {mode!r}")
        self.graph = graph
        self.iterations = iterations
        self.edge_partitions = edge_partitions
        self.mode = mode
        #: Bulk/GraphX variants process every vertex's messages until
        #: global convergence: activity decays to a substantial floor
        #: (the paper's MRr spans stay ~10 s each).
        self.activity = activity or cc_activity_profile(decay=0.55,
                                                        floor=0.12)
        #: Delta iterations track only *newly changed* vertices: the
        #: workset collapses much faster - the delta advantage.
        self.delta_activity = cc_activity_profile(decay=0.45, floor=0.03)

    def input_files(self) -> List[Tuple[str, float]]:
        return [(f"/data/graph-{self.graph.name}", self.graph.size_bytes)]

    # ------------------------------------------------------------------
    def spark_jobs(self) -> List[LogicalPlan]:
        edges = self.graph.edges_stats()
        messages = self.graph.messages_stats(CC_MESSAGE_BYTES)
        vertices = self.graph.vertices_stats()
        boost = self.graph.spark_iteration_rate_boost
        body = LogicalPlan(
            name="cc-step", body_plan=True, input_stats=messages,
            ops=[
                Op(OpKind.MAP_PARTITIONS, "mapPartitions",
                   cpu_rate=1.35 * MiB * boost,
                   output_keys=self.graph.num_vertices),
                Op(OpKind.REDUCE_BY_KEY, "reduce", cpu_rate=60 * MiB * boost,
                   output_keys=self.graph.num_vertices),
            ])
        plan = LogicalPlan(
            name="connected-components",
            input_stats=edges,
            ops=[
                Op(OpKind.SOURCE, hidden=True),
                Op(OpKind.MAP, "Map", cpu_rate=GRAPH_BUILD_RATE),
                Op(OpKind.COALESCE, "Coalesce"),
                Op(OpKind.PARTITION, "Load Graph", cached=True,
                   partitions=self.edge_partitions, cpu_rate=16 * MiB),
                Op(OpKind.BULK_ITERATION, "iterate", body=body,
                   iterations=self.iterations,
                   workset_activity=self.activity,
                   selectivity=vertices.records / edges.records,
                   bytes_ratio=self.graph.vertex_state_bytes /
                   edges.record_bytes),
                Op(OpKind.MAP_PARTITIONS, "mapPartitions",
                   cpu_rate=200 * MiB),
                Op(OpKind.SINK, "saveAsTextFile"),
            ])
        return [plan]

    def flink_jobs(self) -> List[LogicalPlan]:
        edges = self.graph.edges_stats()
        messages = self.graph.messages_stats(CC_MESSAGE_BYTES)
        vertices = self.graph.vertices_stats()
        body = LogicalPlan(
            name="cc-superstep", body_plan=True, input_stats=messages,
            ops=[
                Op(OpKind.JOIN, "Join", cpu_rate=1.3 * MiB,
                   output_keys=self.graph.num_vertices),
                Op(OpKind.CO_GROUP, "CoGroup", cpu_rate=1.5 * MiB,
                   output_keys=self.graph.num_vertices),
            ])
        iteration_kind = (OpKind.DELTA_ITERATION if self.mode == "delta"
                          else OpKind.BULK_ITERATION)
        activity = (self.delta_activity if self.mode == "delta"
                    else self.activity)
        plan = LogicalPlan(
            name="connected-components",
            input_stats=edges,
            ops=[
                Op(OpKind.SOURCE, "DataSource"),
                Op(OpKind.FLAT_MAP, "FlatMap", cpu_rate=GRAPH_PARSE_RATE,
                   selectivity=2.0, bytes_ratio=0.5,
                   output_keys=self.graph.num_vertices),
                Op(OpKind.GROUP_REDUCE, "GroupReduce",
                   output_keys=self.graph.num_vertices, bytes_ratio=2.0),
                Op(OpKind.MAP, "Map", cpu_rate=200 * MiB),
                Op(iteration_kind, "DeltaIteration"
                   if self.mode == "delta" else "BulkIteration",
                   body=body, iterations=self.iterations,
                   workset_activity=activity,
                   side_input=edges,
                   selectivity=vertices.records / edges.records,
                   bytes_ratio=self.graph.vertex_state_bytes /
                   edges.record_bytes),
                Op(OpKind.SINK, "DataSink"),
            ])
        return [plan]

    @property
    def operators(self) -> Dict[str, List[str]]:
        return {
            "common": ["graph-specific", "save"],
            "spark": ["mapVertices", "mapReduceTriplets", "joinVertices",
                      "coalesce", "mapPartitionsWithIndex"],
            "flink": ["mapEdges", "withEdges",
                      "DeltaIteration", "join", "groupBy", "aggregate"],
        }
