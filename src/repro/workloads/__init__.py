"""The paper's six benchmarks: three batch, three iterative."""

from .base import Workload
from .connected_components import ConnectedComponents
from .grep import Grep
from .kmeans import KMeans
from .pagerank import PageRank
from .terasort import TeraSort
from .wordcount import WordCount

ALL_WORKLOADS = [WordCount, Grep, TeraSort, KMeans, PageRank,
                 ConnectedComponents]

__all__ = ["ALL_WORKLOADS", "ConnectedComponents", "Grep", "KMeans",
           "PageRank", "TeraSort", "WordCount", "Workload"]
