"""Parallel execution of independent simulation runs.

Every experiment in the harness decomposes into *independent* runs:
each :func:`~repro.harness.runner.run_once` deploys a fresh cluster
seeded explicitly, so no state flows between runs (the global flow-id
counter only breaks ties *within* one simulation and never leaks into
results).  That makes fan-out across worker processes safe: a worker
computes exactly what the serial loop would have computed, and results
are collected in **task order**, so the output of a parallel sweep or
figure is bit-identical to the serial one.

``jobs`` resolution order: explicit argument, then the ``REPRO_JOBS``
environment variable, then 1 (serial).  ``jobs=0`` (argument or
environment) means "use every core" (``os.cpu_count()``).  ``jobs=1``
short-circuits to a plain in-process loop — no executor, no pickling —
so the default path is byte-for-byte the historical behaviour.

Two entry points share this contract:

* :func:`parallel_map` — fail-fast: the first failing task raises, with
  the failing task's identity (index and arguments) attached to the
  exception.  A worker process that dies without reporting (segfault,
  ``os._exit``, OOM kill) surfaces as :class:`WorkerCrashError` rather
  than a hung or half-filled result list.
* :func:`robust_map` — graceful degradation for long campaigns: a task
  that raises, crashes its worker or exceeds a per-task timeout fails
  *that task only* (recorded as a :class:`TaskFailure` with full task
  identity, optionally retried with exponential backoff); every other
  task still completes and the results keep their task-order slots.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from multiprocessing import get_context
from multiprocessing.connection import wait as _conn_wait
from typing import (Any, Callable, Dict, List, Optional, Sequence, Tuple)

__all__ = ["ENV_JOBS", "WorkerCrashError", "TaskFailure", "parallel_map",
           "robust_map", "resolve_jobs"]

#: Environment variable consulted when no explicit job count is given.
ENV_JOBS = "REPRO_JOBS"

#: Scheduler poll interval for :func:`robust_map` (wall-clock seconds);
#: only bounds how quickly timeouts/crashes are *noticed*, never what
#: any task computes.
_POLL_SECONDS = 0.05


class WorkerCrashError(RuntimeError):
    """A worker process died without delivering its result.

    ``task_index``/``task_args`` identify the first task that cannot
    have completed (best effort: a broken pool loses the precise
    attribution, so ``candidate_indices`` lists every task in flight).
    """

    def __init__(self, message: str, task_index: Optional[int] = None,
                 task_args: Optional[str] = None,
                 candidate_indices: Optional[List[int]] = None) -> None:
        super().__init__(message)
        self.task_index = task_index
        self.task_args = task_args
        self.candidate_indices = candidate_indices or []


@dataclass(frozen=True)
class TaskFailure:
    """One task :func:`robust_map` could not complete.

    Carries the task's full identity — index into the task list, the
    function name and the argument tuple's ``repr`` — so a single
    failed trial inside a 200-trial campaign is diagnosable from the
    report alone.
    """

    index: int
    fn_name: str
    args_repr: str
    kind: str          #: ``"exception"`` | ``"crash"`` | ``"timeout"``
    error_type: str
    message: str
    attempts: int = 1

    def describe(self) -> str:
        return (f"task #{self.index} {self.fn_name}{self.args_repr}: "
                f"{self.kind} after {self.attempts} attempt(s) — "
                f"{self.error_type}: {self.message}")


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a job count: argument > ``$REPRO_JOBS`` > 1.

    ``0`` (from either source) means "use every core":
    ``os.cpu_count()``.  Negative counts are rejected.
    """
    if jobs is None:
        raw = os.environ.get(ENV_JOBS, "").strip()
        if raw:
            try:
                jobs = int(raw)
            except ValueError:
                raise ValueError(
                    f"{ENV_JOBS} must be an integer, got {raw!r}") from None
        else:
            jobs = 1
    if jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def _ignore_sigint() -> None:
    """Worker initializer: leave Ctrl-C to the coordinator.

    A terminal SIGINT goes to the whole foreground process group, so
    without this every worker would print its own ``KeyboardInterrupt``
    traceback on top of the coordinator's message.  Workers ignore the
    signal; the coordinator notices the interrupt, terminates them and
    reports once.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass


def _args_repr(args: Tuple, limit: int = 200) -> str:
    try:
        text = repr(tuple(args))
    except Exception:  # pragma: no cover - repr() of exotic arguments
        text = "(<unreprable arguments>)"
    if len(text) > limit:
        text = text[:limit - 3] + "..."
    return text


def _fn_name(fn: Callable) -> str:
    return getattr(fn, "__name__", repr(fn))


def _annotate(exc: BaseException, fn: Callable, index: int,
              args: Tuple) -> BaseException:
    """Rebuild ``exc`` with the failing task's identity in its message.

    The original exception *type* is preserved whenever it can be
    constructed from a single message string (the common case);
    otherwise a ``RuntimeError`` carries the identity instead.  Either
    way the returned exception exposes ``task_index`` / ``task_args``.
    """
    note = (f"{exc} [while running task #{index}: "
            f"{_fn_name(fn)}{_args_repr(args)}]")
    try:
        annotated: BaseException = type(exc)(note)
    except Exception:
        annotated = RuntimeError(f"{type(exc).__name__}: {note}")
    annotated.task_index = index          # type: ignore[attr-defined]
    annotated.task_args = _args_repr(args)  # type: ignore[attr-defined]
    return annotated


def _call_identified(fn: Callable, index: int, args: Tuple) -> Any:
    """Run one task; re-raise any failure with the task identity."""
    try:
        return fn(*args)
    except Exception as exc:
        raise _annotate(exc, fn, index, args) from exc


def parallel_map(fn: Callable, tasks: Sequence[Tuple],
                 jobs: Optional[int] = None,
                 on_result: Optional[Callable[[int, Any], None]] = None
                 ) -> List:
    """Apply ``fn`` to argument tuples, returning results in task order.

    With ``jobs <= 1`` (or fewer than two tasks) this is literally
    ``[fn(*t) for t in tasks]``.  Otherwise tasks are submitted to a
    :class:`~concurrent.futures.ProcessPoolExecutor` and the futures are
    drained in submission order, so result ordering never depends on
    worker scheduling.  ``fn`` must be a module-level (picklable)
    function and the argument tuples and results picklable values.

    Exceptions raised *inside* a worker propagate with their original
    type and the failing task's index/arguments appended to the message
    (matching serial behaviour); a worker that dies outright raises
    :class:`WorkerCrashError` carrying the same identity.

    ``on_result(index, result)`` is invoked in the parent process, in
    task order, as each result becomes available — the checkpoint hook:
    a kill mid-campaign keeps everything already reported.
    """
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(tasks) <= 1:
        results = []
        for i, t in enumerate(tasks):
            result = _call_identified(fn, i, t)
            if on_result is not None:
                on_result(i, result)
            results.append(result)
        return results
    workers = min(jobs, len(tasks))
    with ProcessPoolExecutor(max_workers=workers,
                             initializer=_ignore_sigint) as pool:
        futures = [pool.submit(_call_identified, fn, i, t)
                   for i, t in enumerate(tasks)]
        results = []
        for i, f in enumerate(futures):
            try:
                result = f.result()
            except KeyboardInterrupt:
                # Drain fast: cancel queued tasks, kill the workers (they
                # ignore SIGINT) and let the caller report once.
                for fut in futures:
                    fut.cancel()
                for proc in getattr(pool, "_processes", {}).values():
                    proc.terminate()
                pool.shutdown(wait=False, cancel_futures=True)
                raise
            except BrokenProcessPool as err:
                candidates = [
                    j for j, fut in enumerate(futures)
                    if not fut.done() or (fut.cancelled() or isinstance(
                        fut.exception(), BrokenProcessPool))]
                first = candidates[0] if candidates else i
                raise WorkerCrashError(
                    f"a worker process crashed while running "
                    f"{_fn_name(fn)!r} ({len(tasks)} tasks, {workers} "
                    f"workers); first unfinished task #{first}: "
                    f"{_fn_name(fn)}{_args_repr(tasks[first])} "
                    f"({len(candidates)} task(s) in doubt)",
                    task_index=first, task_args=_args_repr(tasks[first]),
                    candidate_indices=candidates) from err
            if on_result is not None:
                on_result(i, result)
            results.append(result)
        return results


# ----------------------------------------------------------------------
# robust_map: graceful degradation for long campaigns
# ----------------------------------------------------------------------
def _robust_child(fn: Callable, index: int, args: Tuple, conn) -> None:
    """Worker entry: run one task, report ("ok", result) or ("err", ...).

    Any exception is reported as plain strings (type name + message), so
    unpicklable exceptions cannot take the report channel down with
    them.  A worker that dies before sending anything is detected by
    the parent as a crash.
    """
    _ignore_sigint()
    try:
        try:
            result = fn(*args)
        except Exception as exc:
            conn.send(("err", type(exc).__name__, str(exc)))
            return
        conn.send(("ok", result))
    finally:
        conn.close()


@dataclass
class _Running:
    index: int
    attempts: int
    proc: Any
    conn: Any
    started: float


def robust_map(fn: Callable, tasks: Sequence[Tuple],
               jobs: Optional[int] = None,
               timeout: Optional[float] = None,
               retries: int = 0, backoff: float = 0.5,
               on_result: Optional[Callable[[int, Any], None]] = None
               ) -> Tuple[List[Optional[Any]], List[TaskFailure]]:
    """Apply ``fn`` to every task, surviving per-task failures.

    Returns ``(results, failures)``: ``results[i]`` is the task's value,
    or ``None`` for a failed task; each failed task contributes one
    :class:`TaskFailure` (sorted by index) naming the task, the failure
    kind (``exception`` / ``crash`` / ``timeout``) and the attempt
    count.  The campaign itself always completes — graceful degradation
    instead of abort.

    With ``jobs >= 2`` each task runs in its own worker process, so a
    hung task can be killed (``timeout`` seconds of wall clock, checked
    every ~50 ms) and a crashed worker takes down only its own task.
    Failed tasks are retried up to ``retries`` times with exponential
    backoff (``backoff * 2**(attempt-1)`` seconds before relaunch).

    Serially (``jobs <= 1``) exceptions are caught per task but
    ``timeout`` cannot be enforced (there is no worker to kill) and
    crashes are fatal by nature; campaigns that need the full
    protection should run with ``jobs >= 2``.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if timeout is not None and timeout <= 0:
        raise ValueError(f"timeout must be > 0, got {timeout}")
    results: List[Optional[Any]] = [None] * len(tasks)
    failures: List[TaskFailure] = []

    if jobs <= 1:
        for i, t in enumerate(tasks):
            failure: Optional[TaskFailure] = None
            for attempt in range(1, retries + 2):
                try:
                    results[i] = fn(*t)
                    failure = None
                except Exception as exc:
                    failure = TaskFailure(
                        index=i, fn_name=_fn_name(fn),
                        args_repr=_args_repr(t), kind="exception",
                        error_type=type(exc).__name__, message=str(exc),
                        attempts=attempt)
                    continue
                if on_result is not None:
                    on_result(i, results[i])
                break
            if failure is not None:
                failures.append(failure)
        return results, failures

    ctx = get_context()
    #: (index, attempts_so_far, earliest_start) — retries wait out
    #: their backoff without blocking other tasks.
    queue: List[Tuple[int, int, float]] = [(i, 0, 0.0)
                                           for i in range(len(tasks))]
    running: List[_Running] = []

    def _fail_or_retry(run: _Running, kind: str, error_type: str,
                       message: str) -> None:
        attempts = run.attempts + 1
        if attempts <= retries:
            delay = backoff * (2.0 ** (attempts - 1)) if backoff > 0 else 0.0
            queue.append((run.index, attempts, time.monotonic() + delay))
            return
        failures.append(TaskFailure(
            index=run.index, fn_name=_fn_name(fn),
            args_repr=_args_repr(tasks[run.index]), kind=kind,
            error_type=error_type, message=message, attempts=attempts))

    def _reap(run: _Running) -> None:
        run.conn.close()
        run.proc.join()

    try:
        while queue or running:
            now = time.monotonic()
            # Launch eligible tasks into free worker slots.
            queue.sort(key=lambda q: (q[2], q[0]))
            while queue and len(running) < jobs and queue[0][2] <= now:
                index, attempts, _ = queue.pop(0)
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_robust_child,
                    args=(fn, index, tasks[index], child_conn))
                proc.start()
                child_conn.close()
                running.append(_Running(index=index, attempts=attempts,
                                        proc=proc, conn=parent_conn,
                                        started=time.monotonic()))
            if not running:
                # Only backed-off retries remain: sleep to eligibility.
                if queue:
                    time.sleep(max(0.0, min(
                        queue[0][2] - time.monotonic(), _POLL_SECONDS)))
                continue
            ready = _conn_wait([r.conn for r in running],
                               timeout=_POLL_SECONDS)
            for run in [r for r in running if r.conn in ready]:
                running.remove(run)
                try:
                    kind_payload = run.conn.recv()
                except (EOFError, OSError):
                    # Closed without a report: the worker died.
                    _reap(run)
                    _fail_or_retry(
                        run, "crash", "WorkerCrashError",
                        f"worker exited with code {run.proc.exitcode} "
                        f"before reporting a result")
                    continue
                _reap(run)
                if kind_payload[0] == "ok":
                    results[run.index] = kind_payload[1]
                    if on_result is not None:
                        on_result(run.index, kind_payload[1])
                else:
                    _fail_or_retry(run, "exception", kind_payload[1],
                                   kind_payload[2])
            if timeout is not None:
                now = time.monotonic()
                for run in [r for r in running
                            if now - r.started > timeout]:
                    running.remove(run)
                    run.proc.terminate()
                    run.proc.join()
                    run.conn.close()
                    _fail_or_retry(
                        run, "timeout", "TrialTimeout",
                        f"exceeded the per-task timeout of {timeout}s")
    finally:
        for run in running:  # pragma: no cover - interrupt cleanup
            run.proc.terminate()
            run.proc.join()
            run.conn.close()
    failures.sort(key=lambda f: f.index)
    return results, failures
