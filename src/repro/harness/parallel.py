"""Parallel execution of independent simulation runs.

Every experiment in the harness decomposes into *independent* runs:
each :func:`~repro.harness.runner.run_once` deploys a fresh cluster
seeded explicitly, so no state flows between runs (the global flow-id
counter only breaks ties *within* one simulation and never leaks into
results).  That makes fan-out across worker processes safe: a worker
computes exactly what the serial loop would have computed, and results
are collected in **submission order**, so the output of a parallel
sweep or figure is bit-identical to the serial one.

``jobs`` resolution order: explicit argument, then the ``REPRO_JOBS``
environment variable, then 1 (serial).  ``jobs=1`` short-circuits to a
plain in-process loop — no executor, no pickling — so the default path
is byte-for-byte the historical behaviour.

A worker process that dies without reporting (segfault, ``os._exit``,
OOM kill) surfaces as :class:`WorkerCrashError` rather than a hung or
half-filled result list.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence, Tuple

__all__ = ["ENV_JOBS", "WorkerCrashError", "parallel_map", "resolve_jobs"]

#: Environment variable consulted when no explicit job count is given.
ENV_JOBS = "REPRO_JOBS"


class WorkerCrashError(RuntimeError):
    """A worker process died without delivering its result."""


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a job count: argument > ``$REPRO_JOBS`` > 1."""
    if jobs is None:
        raw = os.environ.get(ENV_JOBS, "").strip()
        if raw:
            try:
                jobs = int(raw)
            except ValueError:
                raise ValueError(
                    f"{ENV_JOBS} must be an integer, got {raw!r}") from None
        else:
            jobs = 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def parallel_map(fn: Callable, tasks: Sequence[Tuple],
                 jobs: Optional[int] = None) -> List:
    """Apply ``fn`` to argument tuples, returning results in task order.

    With ``jobs <= 1`` (or fewer than two tasks) this is literally
    ``[fn(*t) for t in tasks]``.  Otherwise tasks are submitted to a
    :class:`~concurrent.futures.ProcessPoolExecutor` and the futures are
    drained in submission order, so result ordering never depends on
    worker scheduling.  ``fn`` must be a module-level (picklable)
    function and the argument tuples and results picklable values.

    Exceptions raised *inside* a worker propagate with their original
    type, matching serial behaviour; a worker that dies outright raises
    :class:`WorkerCrashError`.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(tasks) <= 1:
        return [fn(*t) for t in tasks]
    workers = min(jobs, len(tasks))
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(fn, *t) for t in tasks]
            return [f.result() for f in futures]
    except BrokenProcessPool as err:
        raise WorkerCrashError(
            f"a worker process crashed while running {getattr(fn, '__name__', fn)!r} "
            f"({len(tasks)} tasks, {workers} workers)") from err
