"""Crash-safe, resumable experiment storage.

A :class:`CheckpointStore` makes a long campaign (sweep, figure,
resilience curve) survive the death of the *harness itself* — a kill
-9, an OOM, a CI timeout — not just the simulated faults it studies.
The design is a journaled, atomic-write result store:

* ``manifest.json`` pins the campaign's identity: a fingerprint digest
  of everything that determines its output (figure id, workload names,
  grid, seeds, trials).  Resuming against a store recorded for a
  *different* campaign is an error, not silent garbage.
* ``journal.jsonl`` is an append-only journal: one complete JSON record
  per finished unit of work, flushed and fsynced before the harness
  moves on.  A crash can only ever truncate the *final* line, which the
  loader detects and discards — every fully-written record survives.
* every record carries a ``sha`` — the canonical digest of its payload
  — so *mid-file* corruption (bit flips, partial overwrites, anything
  beyond the crash-truncated tail) is detected on load instead of
  silently resuming from bad state.  ``on_corrupt="error"`` (the
  default, right for campaigns) raises a :class:`CheckpointError`
  naming the record; ``on_corrupt="quarantine"`` (what the serving
  cache uses) moves the bad record to ``quarantine.jsonl`` and drops
  it, so its unit simply recomputes — a corrupt entry is never served.

Because every unit of work is a deterministic function of its key, a
resumed campaign replays the journal for finished units and recomputes
only the missing ones; the merged output is **bit-identical** to an
uninterrupted run (the resume-identity tests pin this with digests).

Records must be JSON-ish (the canonical-digest value types plus NaN).
Only the coordinating process writes; workers report results back to
it, so the journal has a single writer and needs no locking.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

from ..validation.digest import digest_payload

__all__ = ["CheckpointError", "CheckpointStore"]

MANIFEST_NAME = "manifest.json"
JOURNAL_NAME = "journal.jsonl"
QUARANTINE_NAME = "quarantine.jsonl"


class CheckpointError(RuntimeError):
    """The store cannot be (re)opened safely."""


def _atomic_write_text(path: Path, text: str) -> None:
    """Write via a same-directory temp file + ``os.replace`` so readers
    (and crashes) see either the old content or the new, never a mix."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


class CheckpointStore:
    """Journaled store of completed campaign units, keyed by string.

    ``fingerprint`` is any canonicalisable payload identifying the
    campaign; its digest is recorded in the manifest and must match on
    resume.  Open modes:

    * fresh directory — created, manifest written, empty journal;
    * existing store, ``resume=True`` — fingerprint verified, journal
      replayed (tolerating one crash-truncated trailing line);
    * existing store, ``resume=False`` — :class:`CheckpointError`: an
      unexpected leftover store is surfaced, never silently clobbered.

    ``on_corrupt`` picks the policy for records whose stored ``sha``
    no longer matches their payload (or interior lines that are not
    JSON at all): ``"error"`` raises :class:`CheckpointError`;
    ``"quarantine"`` appends the bad line to ``quarantine.jsonl``,
    drops the record and lists its key in :attr:`quarantined_keys`.
    Records written before checksums existed (no ``sha`` field) are
    accepted as-is for backward compatibility.
    """

    def __init__(self, root, fingerprint: Any, resume: bool = False,
                 on_corrupt: str = "error") -> None:
        if on_corrupt not in ("error", "quarantine"):
            raise ValueError(f"on_corrupt must be 'error' or "
                             f"'quarantine', got {on_corrupt!r}")
        self.root = Path(root)
        self.on_corrupt = on_corrupt
        self.fingerprint_digest = digest_payload(fingerprint)
        self._records: Dict[str, Any] = {}
        self._truncated_tail = False
        self.quarantined_keys: List[str] = []
        manifest = self.root / MANIFEST_NAME
        if manifest.exists():
            if not resume:
                raise CheckpointError(
                    f"checkpoint store {self.root} already exists; resume "
                    f"it (resume=True / --resume) or remove it first")
            self._open_existing(manifest)
        else:
            if self.root.exists() and any(self.root.iterdir()):
                raise CheckpointError(
                    f"{self.root} exists, is not empty and has no "
                    f"{MANIFEST_NAME}: refusing to treat it as a "
                    f"checkpoint store")
            self.root.mkdir(parents=True, exist_ok=True)
            _atomic_write_text(manifest, json.dumps({
                "comment": "repro campaign checkpoint; see "
                           "docs/resilience.md",
                "fingerprint": self.fingerprint_digest,
            }, indent=2, sort_keys=True) + "\n")
            # Touch the journal so resume-after-zero-records works.
            (self.root / JOURNAL_NAME).touch()
        self._journal = open(self.root / JOURNAL_NAME, "a",
                             encoding="utf-8")

    # ------------------------------------------------------------------
    def _open_existing(self, manifest: Path) -> None:
        try:
            meta = json.loads(manifest.read_text(encoding="utf-8"))
        except json.JSONDecodeError as err:
            raise CheckpointError(
                f"unreadable manifest {manifest}: {err}") from err
        recorded = meta.get("fingerprint")
        if recorded != self.fingerprint_digest:
            raise CheckpointError(
                f"checkpoint store {self.root} was recorded for a "
                f"different campaign (fingerprint {recorded} != "
                f"{self.fingerprint_digest}); resuming it would mix "
                f"incompatible results")
        journal = self.root / JOURNAL_NAME
        if not journal.exists():
            return
        with open(journal, "r", encoding="utf-8") as fh:
            lines = fh.read().split("\n")
        for lineno, line in enumerate(lines):
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if lineno == len(lines) - 1:
                    # The crash interrupted the final append: the record
                    # never completed, so its unit simply re-runs.
                    self._truncated_tail = True
                    continue
                self._reject_corrupt(
                    journal, lineno, line, key=None,
                    why="not JSON (not the trailing line, so not crash "
                        "truncation)")
                continue
            key = record.get("key")
            if not isinstance(key, str) or "payload" not in record:
                self._reject_corrupt(journal, lineno, line, key=None,
                                     why="missing key/payload fields")
                continue
            recorded_sha = record.get("sha")
            if recorded_sha is not None:
                actual = digest_payload(record["payload"])
                if actual != recorded_sha:
                    self._reject_corrupt(
                        journal, lineno, line, key=key,
                        why=f"payload checksum {actual[:12]}... does not "
                            f"match the recorded sha "
                            f"{str(recorded_sha)[:12]}... (mid-file "
                            f"corruption: bit flip or partial overwrite)")
                    continue
            self._records[key] = record["payload"]

    def _reject_corrupt(self, journal: Path, lineno: int, line: str,
                        key: Optional[str], why: str) -> None:
        """Apply the ``on_corrupt`` policy to one bad journal line."""
        where = f"{journal}:{lineno + 1}"
        if self.on_corrupt == "error":
            raise CheckpointError(
                f"corrupt journal record at {where}"
                + (f" (key {key!r})" if key else "") + f": {why}")
        with open(self.root / QUARANTINE_NAME, "a",
                  encoding="utf-8") as fh:
            fh.write(json.dumps({"line": lineno + 1, "key": key,
                                 "why": why, "raw": line},
                                sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        if key is not None:
            self._records.pop(key, None)
            self.quarantined_keys.append(key)

    # ------------------------------------------------------------------
    @property
    def truncated_tail(self) -> bool:
        """True when the journal ended in a crash-truncated record."""
        return self._truncated_tail

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def keys(self) -> Iterator[str]:
        return iter(self._records)

    def load(self, key: str) -> Any:
        return self._records[key]

    def get(self, key: str) -> Optional[Any]:
        return self._records.get(key)

    def save(self, key: str, payload: Any) -> None:
        """Append one completed record; durable before returning.

        The record carries the canonical digest of its payload, so a
        later load detects any in-file corruption of this line."""
        if key in self._records:
            return
        line = json.dumps({"key": key, "payload": payload,
                           "sha": digest_payload(payload)},
                          sort_keys=True)
        self._journal.write(line + "\n")
        self._journal.flush()
        os.fsync(self._journal.fileno())
        self._records[key] = payload

    def close(self) -> None:
        if not self._journal.closed:
            self._journal.close()

    def __enter__(self) -> "CheckpointStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"CheckpointStore({str(self.root)!r}, "
                f"{len(self._records)} record(s))")
