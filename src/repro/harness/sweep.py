"""Parameter sweeps: grid exploration of the configuration space.

The paper's §IV argument is that "for every workload, we found that
different parameter settings were necessary to provide an optimal
performance".  :func:`sweep` runs a workload under every combination of
config overrides and returns flat rows (dicts) ready for CSV export or
analysis — the tool a user needs to find their own optimum.
"""

from __future__ import annotations

import csv
import io
import itertools
import math
from typing import Dict, Iterable, List, Optional, Sequence, TextIO

from ..config.presets import ExperimentConfig
from ..workloads.base import Workload
from .runner import run_once

__all__ = ["sweep", "sweep_rows_to_csv", "best_row"]


def _apply_overrides(config: ExperimentConfig,
                     overrides: Dict[str, object]) -> ExperimentConfig:
    """Apply ``spark.*`` / ``flink.*`` / top-level override keys."""
    spark = config.spark
    flink = config.flink
    top: Dict[str, object] = {}
    for key, value in overrides.items():
        if key.startswith("spark."):
            spark = spark.with_(**{key[6:]: value})
        elif key.startswith("flink."):
            flink = flink.with_(**{key[6:]: value})
        else:
            top[key] = value
    return ExperimentConfig(
        spark=spark, flink=flink,
        hdfs_block_size=top.get("hdfs_block_size",
                                config.hdfs_block_size),
        nodes=top.get("nodes", config.nodes))


def sweep(engine: str, workload: Workload, base_config: ExperimentConfig,
          grid: Dict[str, Sequence], trials: int = 1,
          base_seed: int = 0) -> List[Dict[str, object]]:
    """Run the cartesian product of ``grid`` values.

    ``grid`` keys use dotted paths: ``"spark.default_parallelism"``,
    ``"flink.network_buffers"``, or top-level ``"hdfs_block_size"``.
    Returns one row per combination with the mean duration (NaN plus a
    ``failure`` message for failed combinations).
    """
    if not grid:
        raise ValueError("empty sweep grid")
    keys = list(grid)
    rows: List[Dict[str, object]] = []
    for combo in itertools.product(*(grid[k] for k in keys)):
        overrides = dict(zip(keys, combo))
        config = _apply_overrides(base_config, overrides)
        durations: List[float] = []
        failure: Optional[str] = None
        for t in range(trials):
            result = run_once(engine, workload, config,
                              seed=base_seed + 1000 * t)
            if result.success:
                durations.append(result.duration)
            else:
                failure = result.failure
                break
        row: Dict[str, object] = dict(overrides)
        row["engine"] = engine
        row["workload"] = workload.name
        if durations and failure is None:
            row["mean_seconds"] = sum(durations) / len(durations)
            row["failure"] = ""
        else:
            row["mean_seconds"] = math.nan
            row["failure"] = failure or "no runs"
        rows.append(row)
    return rows


def best_row(rows: Iterable[Dict[str, object]]) -> Dict[str, object]:
    """The fastest successful combination."""
    candidates = [r for r in rows
                  if not math.isnan(float(r["mean_seconds"]))]
    if not candidates:
        raise ValueError("every sweep combination failed")
    return min(candidates, key=lambda r: float(r["mean_seconds"]))


def sweep_rows_to_csv(rows: Sequence[Dict[str, object]],
                      out: Optional[TextIO] = None) -> str:
    """Write sweep rows as CSV (stable column order)."""
    if not rows:
        return ""
    buf = out if out is not None else io.StringIO()
    fields = list(rows[0].keys())
    writer = csv.DictWriter(buf, fieldnames=fields)
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buf.getvalue() if isinstance(buf, io.StringIO) else ""
