"""Parameter sweeps: grid exploration of the configuration space.

The paper's §IV argument is that "for every workload, we found that
different parameter settings were necessary to provide an optimal
performance".  :func:`sweep` runs a workload under every combination of
config overrides and returns flat rows (dicts) ready for CSV export or
analysis — the tool a user needs to find their own optimum.
"""

from __future__ import annotations

import csv
import io
import itertools
import math
from typing import Dict, Iterable, List, Optional, Sequence, TextIO

from ..config.presets import ExperimentConfig
from ..validation.digest import digest_payload
from ..validation.invariants import strict_enabled
from ..workloads.base import Workload
from .parallel import parallel_map
from .runner import run_once

__all__ = ["sweep", "sweep_rows_to_csv", "best_row"]


def _apply_overrides(config: ExperimentConfig,
                     overrides: Dict[str, object]) -> ExperimentConfig:
    """Apply ``spark.*`` / ``flink.*`` / top-level override keys."""
    spark = config.spark
    flink = config.flink
    top: Dict[str, object] = {}
    for key, value in overrides.items():
        if key.startswith("spark."):
            spark = spark.with_(**{key[6:]: value})
        elif key.startswith("flink."):
            flink = flink.with_(**{key[6:]: value})
        else:
            top[key] = value
    return ExperimentConfig(
        spark=spark, flink=flink,
        hdfs_block_size=top.get("hdfs_block_size",
                                config.hdfs_block_size),
        nodes=top.get("nodes", config.nodes))


def _combo_task(engine: str, workload: Workload, config: ExperimentConfig,
                overrides: Dict[str, object], trials: int, base_seed: int,
                strict: bool) -> Dict[str, object]:
    """Run every trial of one grid combination and build its row.

    All ``trials`` run even if one fails: a mid-sequence failure used to
    throw away the durations already measured, which made multi-trial
    sweeps report NaN for combinations that mostly worked.  The row now
    carries the mean over the completed trials plus ``completed_trials``
    so callers can judge how much evidence backs the number.  Sweeps
    only report durations, so tracing is off (strict runs re-enable it).
    """
    durations: List[float] = []
    failure: Optional[str] = None
    sim_events = 0
    for t in range(trials):
        result = run_once(engine, workload, config,
                          seed=base_seed + 1000 * t, strict=strict,
                          trace_detail="off")
        sim_events += result.sim_events or 0
        if result.success:
            durations.append(result.duration)
        elif failure is None:
            failure = result.failure or "unknown failure"
    row: Dict[str, object] = dict(overrides)
    row["engine"] = engine
    row["workload"] = workload.name
    row["completed_trials"] = len(durations)
    if durations:
        row["mean_seconds"] = sum(durations) / len(durations)
    else:
        row["mean_seconds"] = math.nan
    row["failure"] = failure or ""
    row["sim_events"] = sim_events
    return row


def sweep(engine: str, workload: Workload, base_config: ExperimentConfig,
          grid: Dict[str, Sequence], trials: int = 1,
          base_seed: int = 0, strict: Optional[bool] = None,
          jobs: Optional[int] = None,
          checkpoint=None) -> List[Dict[str, object]]:
    """Run the cartesian product of ``grid`` values.

    ``grid`` keys use dotted paths: ``"spark.default_parallelism"``,
    ``"flink.network_buffers"``, or top-level ``"hdfs_block_size"``.
    Returns one row per combination with the mean duration over the
    trials that completed (NaN plus a ``failure`` message when none
    did; ``completed_trials`` counts the successes behind each mean).

    ``jobs`` fans the combinations across worker processes (default
    ``$REPRO_JOBS`` or serial); every combination is an independent
    deterministic run, so the rows are identical either way.

    ``checkpoint`` (a :class:`~repro.harness.checkpoint.
    CheckpointStore`) journals every finished row as it completes;
    rerunning a killed sweep against the resumed store replays the
    journaled rows and computes only the missing combinations — the
    merged row list is bit-identical to an uninterrupted sweep.
    """
    if not grid:
        raise ValueError("empty sweep grid")
    keys = list(grid)
    strict_flag = strict_enabled(strict)
    tasks = []
    row_keys = []
    for combo in itertools.product(*(grid[k] for k in keys)):
        overrides = dict(zip(keys, combo))
        config = _apply_overrides(base_config, overrides)
        tasks.append((engine, workload, config, overrides, trials,
                      base_seed, strict_flag))
        row_keys.append(digest_payload({
            "engine": engine, "workload": workload.name,
            "overrides": {k: v for k, v in overrides.items()},
            "trials": trials, "base_seed": base_seed}))
    if checkpoint is None:
        return parallel_map(_combo_task, tasks, jobs=jobs)
    rows: List[Optional[Dict[str, object]]] = [None] * len(tasks)
    pending = []
    for i, key in enumerate(row_keys):
        if key in checkpoint:
            rows[i] = checkpoint.load(key)
        else:
            pending.append(i)
    if pending:
        def _journal(pos: int, row: Dict[str, object]) -> None:
            checkpoint.save(row_keys[pending[pos]], row)

        fresh = parallel_map(_combo_task, [tasks[i] for i in pending],
                             jobs=jobs, on_result=_journal)
        for pos, row in zip(pending, fresh):
            rows[pos] = row
    return rows  # type: ignore[return-value]


def best_row(rows: Iterable[Dict[str, object]]) -> Dict[str, object]:
    """The fastest successful combination."""
    candidates = [r for r in rows
                  if not math.isnan(float(r["mean_seconds"]))]
    if not candidates:
        raise ValueError("every sweep combination failed")
    return min(candidates, key=lambda r: float(r["mean_seconds"]))


def sweep_rows_to_csv(rows: Sequence[Dict[str, object]],
                      out: Optional[TextIO] = None) -> str:
    """Render sweep rows as CSV (stable column order).

    The CSV text is always returned; when ``out`` is given it is also
    written there.  (It used to be returned only for ``StringIO``
    targets — real file handles got ``""`` back, so callers that both
    saved and post-processed the text silently lost it.)
    """
    if not rows:
        return ""
    buf = io.StringIO()
    fields = list(rows[0].keys())
    writer = csv.DictWriter(buf, fieldnames=fields)
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    text = buf.getvalue()
    if out is not None:
        out.write(text)
    return text
