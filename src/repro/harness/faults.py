"""Failure-recovery analysis (extension of the paper's §VIII remark).

"The pipelined execution brings important benefits to Flink ...  There
are several issues related to the pipeline fault tolerance, but Flink
is currently working in this direction [FLINK-2250]."

This module quantifies that trade-off for a single node failure at a
chosen progress point, using each engine's 2015-era recovery story:

* **Spark** — lineage + materialised shuffle files: completed stages
  survive on the other nodes; recovery re-runs the interrupted stage
  and recomputes the failed node's share (1/N) of earlier stage
  outputs that feed it;
* **Flink 0.10** — the pipelined job graph has no intermediate
  materialisation: a task failure restarts the whole job.

Both estimates are computed from the *actual* stage/span structure of
a baseline simulated run, so staged jobs with many barriers and
pipelined single-window jobs are each charged faithfully.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from ..config.presets import ExperimentConfig
from ..engines.common.result import EngineRunResult
from ..workloads.base import Workload
from .runner import run_once

__all__ = ["FaultRecoveryResult", "analytic_total", "run_with_failure"]


@dataclass
class FaultRecoveryResult:
    """Estimated end-to-end time with one node failing mid-run."""

    engine: str
    workload: str
    nodes: int
    fail_at_seconds: float
    baseline_seconds: float
    total_seconds: float

    @property
    def recovery_overhead(self) -> float:
        """Extra time caused by the failure (seconds)."""
        return self.total_seconds - self.baseline_seconds

    @property
    def overhead_fraction(self) -> float:
        if self.baseline_seconds <= 0:
            return math.nan
        return self.recovery_overhead / self.baseline_seconds

    def describe(self) -> str:
        return (f"{self.engine}/{self.workload}: node failure at "
                f"{self.fail_at_seconds:.0f}s -> total "
                f"{self.total_seconds:.0f}s "
                f"(+{100 * self.overhead_fraction:.0f}% over "
                f"{self.baseline_seconds:.0f}s)")


def _stage_windows(result: EngineRunResult) -> List[tuple]:
    """(start, end) windows of the barriered units, in time order."""
    if result.stage_windows:
        return sorted(result.stage_windows)
    spans = sorted(result.spans, key=lambda s: s.start)
    return [(s.start, s.end) for s in spans]


def _spark_recovery(result: EngineRunResult, fail_at: float,
                    nodes: int) -> float:
    """Time to finish after a failure at ``fail_at`` (absolute).

    Task-level re-execution: only the failed node's tasks of the
    interrupted stage re-run (its 1/N share, redistributed), and the
    failed node's share of *completed* stage outputs (shuffle files /
    cached blocks) is recomputed from lineage.
    """
    windows = _stage_windows(result)
    n = max(nodes, 1)
    remaining_after = result.end - fail_at
    completed = 0.0
    rerun_lost_tasks = 0.0
    for s, e in windows:
        if e <= fail_at:
            # A stage ending exactly at the failure has materialised its
            # outputs: it is completed, never also charged as in-flight.
            completed += e - s
        elif s <= fail_at:
            # Every window open at the failure loses the failed node's
            # share of its progress — span-fallback windows can overlap,
            # so this must charge all of them, not just the first.
            rerun_lost_tasks += (fail_at - s) / n
    recompute = completed / n
    return remaining_after + rerun_lost_tasks + recompute


def analytic_total(engine: str, baseline: EngineRunResult,
                   fail_at_fraction: float, nodes: int) -> float:
    """Estimated total seconds given an already-run baseline."""
    T = baseline.duration
    fail_at = baseline.start + fail_at_fraction * T
    if engine == "flink":
        # No materialised intermediates in the 0.10 pipeline: restart.
        return fail_at_fraction * T + T
    if engine == "spark":
        return (fail_at_fraction * T +
                _spark_recovery(baseline, fail_at, nodes))
    raise ValueError(f"unknown engine {engine!r}")


def run_with_failure(engine: str, workload: Workload,
                     config: ExperimentConfig,
                     fail_at_fraction: float = 0.5,
                     seed: int = 0) -> FaultRecoveryResult:
    """Estimate total time with one node failing mid-run."""
    if not 0.0 < fail_at_fraction < 1.0:
        raise ValueError("fail_at_fraction must be in (0, 1)")
    baseline = run_once(engine, workload, config, seed=seed)
    if not baseline.success:
        raise RuntimeError(f"baseline failed: {baseline.failure}")
    T = baseline.duration
    total = analytic_total(engine, baseline, fail_at_fraction, config.nodes)
    return FaultRecoveryResult(
        engine=engine, workload=workload.name, nodes=config.nodes,
        fail_at_seconds=fail_at_fraction * T, baseline_seconds=T,
        total_seconds=total)
