"""Pinned performance benchmark suite (``repro bench``).

The simulator's value is iteration speed: how many what-if experiment
runs fit in a minute.  This module pins a small, fixed suite covering
the main cost profiles —

* ``batch_terasort``      — one huge shuffle (Tera Sort, 3.5 TiB, 97
  nodes) on both engines: flow-churn heavy, few long stages;
* ``iterative_pagerank``  — Page Rank on the medium graph (55 nodes,
  20 iterations) on both engines: many small stages, the event-count
  record holder;
* ``fault_recovery``      — the fig. 18 crash/recovery sweep: fault
  timers, aborts and re-execution paths;
* ``sweep_wordcount``     — a 2x2 config grid x 2 trials: the
  many-small-runs profile of parameter exploration (traces off);
* ``streaming_pair``      — both executed streaming engines (continuous
  operators and micro-batch D-Streams) under Poisson load: the
  slice/batch-driver profile of the fig20/fig21 campaigns;
* ``streaming_degrade``   — both engines at 1.5x their stability
  boundary with repeated crashes and the degradation policies active
  (backoff restarts, shedding, adaptive batching): the per-slice
  policy-decision overhead of the fig22 campaign;
* ``tenancy_mix``         — the fig23 multi-tenant campaign cell
  profile: profile four job templates through the legacy path, then
  run the three queue policies (FIFO, fair share, capacity) over the
  same compiled Poisson arrival mix on one shared cluster;
* ``scale_1000``          — a 1000-node cluster (1 TiB Tera Sort on
  flink, Page Rank on spark): the giant-component regime where the
  HDFS replication ring chains every node's pipeline together.  One
  workload per engine keeps the case under a minute while still
  exercising both engines' 1000-node paths.

— and reports wall-clock plus simulated events/second for each, so a
perf regression (or win) in any layer shows up as a number, not a
feeling.  Results are written to ``BENCH_<date>.json``; committing the
file alongside a perf-sensitive change documents the before/after.

The workloads and seeds are fixed: any two reports from the same
machine are comparable.  ``--quick`` shrinks every case (CI smoke);
``--jobs`` fans independent runs across worker processes — simulated
results are identical (see :mod:`repro.harness.parallel`), only the
wall-clock changes.
"""

from __future__ import annotations

import json
import math
import os
import platform
import time
from dataclasses import dataclass, field
from datetime import date
from pathlib import Path
from typing import Dict, List, Optional

from ..config.presets import (medium_graph_preset, small_graph_preset,
                              terasort_preset, wordcount_grep_preset)
from ..workloads import PageRank, TeraSort, WordCount
from ..workloads.datagen.graphs import MEDIUM_GRAPH, SMALL_GRAPH
from .parallel import parallel_map, resolve_jobs
from .runner import run_once

__all__ = ["BenchCase", "BenchReport", "BENCH_CASE_NAMES", "run_bench",
           "write_report", "default_report_path", "compare_reports"]

GiB = float(2**30)
TiB = float(2**40)

BENCH_CASE_NAMES = ("batch_terasort", "iterative_pagerank",
                    "fault_recovery", "sweep_wordcount",
                    "streaming_pair", "streaming_degrade",
                    "tenancy_mix", "scale_1000")


@dataclass
class BenchCase:
    """One timed suite entry."""

    name: str
    wall_seconds: float
    runs: int
    #: Total kernel events dispatched across the case's runs (every
    #: case tracks them, so every case reports a throughput).
    sim_events: Optional[int] = None

    @property
    def events_per_second(self) -> Optional[float]:
        if not self.sim_events or self.wall_seconds <= 0:
            return None
        return self.sim_events / self.wall_seconds


@dataclass
class BenchReport:
    """A full suite run plus enough context to compare reports."""

    label: str
    quick: bool
    jobs: int
    seed: int
    cases: List[BenchCase] = field(default_factory=list)

    @property
    def total_wall_seconds(self) -> float:
        return sum(c.wall_seconds for c in self.cases)

    def to_payload(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "date": date.today().isoformat(),
            "quick": self.quick,
            "jobs": self.jobs,
            "seed": self.seed,
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "cases": {
                c.name: {
                    "wall_seconds": round(c.wall_seconds, 4),
                    "runs": c.runs,
                    "sim_events": c.sim_events,
                    "events_per_second":
                        round(c.events_per_second, 1)
                        if c.events_per_second else None,
                } for c in self.cases
            },
            "total_wall_seconds": round(self.total_wall_seconds, 4),
        }

    def describe(self) -> str:
        lines = []
        for c in self.cases:
            ev = f" events={c.sim_events}" if c.sim_events else ""
            eps = (f" ({c.events_per_second:,.0f} ev/s)"
                   if c.events_per_second else "")
            lines.append(f"{c.name:20s} {c.wall_seconds:8.3f}s "
                         f"runs={c.runs}{ev}{eps}")
        lines.append(f"{'TOTAL':20s} {self.total_wall_seconds:8.3f}s "
                     f"(jobs={self.jobs})")
        return "\n".join(lines)


def _bench_run(engine: str, workload, config, seed: int) -> int:
    """Worker: one run; returns the kernel event count."""
    result = run_once(engine, workload, config, seed=seed,
                      keep_deployment=True)
    if not result.success:
        raise RuntimeError(
            f"bench run failed: {engine}/{workload.name}: {result.failure}")
    deployment = result.metrics.pop("_deployment")
    return deployment.cluster.sim.steps_executed


def _engine_pair_case(name: str, workload, config, seed: int,
                      jobs: Optional[int]) -> BenchCase:
    tasks = [(engine, workload, config, seed)
             for engine in ("flink", "spark")]
    t0 = time.perf_counter()
    events = parallel_map(_bench_run, tasks, jobs=jobs)
    wall = time.perf_counter() - t0
    return BenchCase(name=name, wall_seconds=wall, runs=len(tasks),
                     sim_events=sum(events))


def _case_batch_terasort(quick: bool, seed: int,
                         jobs: Optional[int]) -> BenchCase:
    nodes = 4 if quick else 97
    total = nodes * 2 * GiB if quick else 3.5 * TiB
    cfg = terasort_preset(nodes)
    workload = TeraSort(total, num_partitions=cfg.flink.default_parallelism)
    return _engine_pair_case("batch_terasort", workload, cfg, seed, jobs)


def _case_iterative_pagerank(quick: bool, seed: int,
                             jobs: Optional[int]) -> BenchCase:
    nodes = 8 if quick else 55
    graph = SMALL_GRAPH if quick else MEDIUM_GRAPH
    preset = small_graph_preset if quick else medium_graph_preset
    cfg = preset(nodes)
    workload = PageRank(graph, iterations=5 if quick else 20,
                        edge_partitions=cfg.spark.edge_partitions)
    return _engine_pair_case("iterative_pagerank", workload, cfg, seed, jobs)


def _case_fault_recovery(quick: bool, seed: int,
                         jobs: Optional[int]) -> BenchCase:
    from . import figures
    t0 = time.perf_counter()
    fig = figures.fig18_fault_recovery(seed=seed, nodes=4, fractions=(0.5,),
                                       jobs=jobs)
    wall = time.perf_counter() - t0
    failed = [c for c in fig.cells if not c.success]
    if failed:
        raise RuntimeError(f"bench fault case failed: {failed[0].failure}")
    events = sum(c.sim_events or 0 for c in fig.cells)
    return BenchCase(name="fault_recovery", wall_seconds=wall,
                     runs=len(fig.cells), sim_events=events or None)


def _case_sweep_wordcount(quick: bool, seed: int,
                          jobs: Optional[int]) -> BenchCase:
    from .sweep import sweep
    nodes = 4 if quick else 8
    cfg = wordcount_grep_preset(nodes)
    workload = WordCount(total_bytes=nodes * (1 if quick else 8) * GiB)
    grid = {"spark.default_parallelism": [nodes * 4, nodes * 8],
            "hdfs_block_size": [128 * 2**20, 256 * 2**20]}
    trials = 2
    t0 = time.perf_counter()
    rows = sweep("spark", workload, cfg, grid, trials=trials,
                 base_seed=seed, jobs=jobs)
    wall = time.perf_counter() - t0
    bad = [r for r in rows if r["failure"]]
    if bad:
        raise RuntimeError(f"bench sweep case failed: {bad[0]['failure']}")
    events = sum(int(r.get("sim_events") or 0) for r in rows)
    return BenchCase(name="sweep_wordcount", wall_seconds=wall,
                     runs=len(rows) * trials, sim_events=events or None)


def _bench_streaming_run(engine: str, rate: float, duration: float,
                         nodes: int, seed: int) -> int:
    """Worker: one streaming run; returns the kernel event count."""
    from ..streaming import PoissonArrivals, run_streaming
    result = run_streaming(engine, PoissonArrivals(rate),
                           duration=duration, nodes=nodes, seed=seed)
    return result.sim_events


def _case_streaming_pair(quick: bool, seed: int,
                         jobs: Optional[int]) -> BenchCase:
    from ..streaming import StreamingWorkloadModel, max_stable_throughput
    nodes = 4 if quick else 8
    duration = 20.0 if quick else 60.0
    model = StreamingWorkloadModel()
    tasks = [(engine,
              0.8 * max_stable_throughput(model, nodes, engine,
                                          batch_interval=1.0),
              duration, nodes, seed)
             for engine in ("flink", "spark")]
    t0 = time.perf_counter()
    events = parallel_map(_bench_streaming_run, tasks, jobs=jobs)
    wall = time.perf_counter() - t0
    return BenchCase(name="streaming_pair", wall_seconds=wall,
                     runs=len(tasks), sim_events=sum(events))


def _bench_degrade_run(engine: str, rate: float, duration: float,
                       nodes: int, seed: int) -> int:
    """Worker: one overloaded run with the degrade policies active."""
    from ..streaming import (PoissonArrivals, compile_crash_schedule,
                             resolve_policy, run_streaming)
    strategy, shedding, batch_policy = resolve_policy(engine, "degrade")
    schedule = compile_crash_schedule(seed, nodes, duration, 0.5)
    result = run_streaming(engine, PoissonArrivals(rate),
                           duration=duration, nodes=nodes, seed=seed,
                           crash_times=schedule,
                           restart_strategy=strategy, shedding=shedding,
                           batch_policy=batch_policy)
    return result.sim_events


def _case_streaming_degrade(quick: bool, seed: int,
                            jobs: Optional[int]) -> BenchCase:
    from ..streaming import StreamingWorkloadModel, max_stable_throughput
    nodes = 4 if quick else 8
    duration = 20.0 if quick else 60.0
    model = StreamingWorkloadModel()
    tasks = [(engine,
              1.5 * max_stable_throughput(model, nodes, engine,
                                          batch_interval=1.0),
              duration, nodes, seed)
             for engine in ("flink", "spark")]
    t0 = time.perf_counter()
    events = parallel_map(_bench_degrade_run, tasks, jobs=jobs)
    wall = time.perf_counter() - t0
    return BenchCase(name="streaming_degrade", wall_seconds=wall,
                     runs=len(tasks), sim_events=sum(events))


def _case_tenancy_mix(quick: bool, seed: int,
                      jobs: Optional[int]) -> BenchCase:
    """The fig23 cell profile: template profiling (four legacy runs)
    plus the three-policy tenancy campaign over one compiled mix.

    The scheduler's own event loop is cheap (hundreds of events); the
    case exists to time the end-to-end campaign path — profiling runs,
    plan compilation, policy allocation and audits — that every fig23
    cell pays."""
    from ..scheduler import profile_templates, tenancy_sweep
    from ..scheduler.sweep import default_templates
    nodes = 4 if quick else 8
    loads = (0.5, 0.9) if quick else (0.3, 0.6, 0.9)
    jobs_target = 6 if quick else 12
    t0 = time.perf_counter()
    profiles = profile_templates(default_templates(nodes), seed=seed)
    fig = tenancy_sweep(loads=loads, nodes=nodes, seed=seed,
                        jobs_target=jobs_target, jobs=jobs)
    wall = time.perf_counter() - t0
    if fig.gaps:
        raise RuntimeError(
            f"bench tenancy case failed: {fig.gaps[0].gap_detail}")
    events = (sum(p.sim_events for p in profiles.values())
              + sum(c.events for c in fig.cells))
    return BenchCase(name="tenancy_mix", wall_seconds=wall,
                     runs=len(profiles) + len(fig.cells),
                     sim_events=events or None)


def _case_scale_1000(quick: bool, seed: int,
                     jobs: Optional[int]) -> BenchCase:
    """1000 nodes: the regime the vectorized kernel unlocked.

    Every node writes its output through the HDFS replication ring, so
    the concurrent pipelines chain the whole cluster into one
    ~2-flows-per-node component; before tie batching and dirty-capacity
    record skipping this case did not finish in any reasonable time.
    Sized at 1 GiB of Tera Sort input per node; one workload per engine
    (flink sorts, spark ranks) keeps the full case under a minute.
    """
    nodes = 100 if quick else 1000
    cfg_sort = terasort_preset(nodes)
    cfg_rank = small_graph_preset(nodes)
    sort = TeraSort(nodes * GiB,
                    num_partitions=cfg_sort.flink.default_parallelism)
    rank = PageRank(SMALL_GRAPH, iterations=2 if quick else 5,
                    edge_partitions=cfg_rank.spark.edge_partitions)
    tasks = [("flink", sort, cfg_sort, seed),
             ("spark", rank, cfg_rank, seed)]
    t0 = time.perf_counter()
    events = parallel_map(_bench_run, tasks, jobs=jobs)
    wall = time.perf_counter() - t0
    return BenchCase(name="scale_1000", wall_seconds=wall,
                     runs=len(tasks), sim_events=sum(events))


_CASES = {
    "batch_terasort": _case_batch_terasort,
    "iterative_pagerank": _case_iterative_pagerank,
    "fault_recovery": _case_fault_recovery,
    "sweep_wordcount": _case_sweep_wordcount,
    "streaming_pair": _case_streaming_pair,
    "streaming_degrade": _case_streaming_degrade,
    "tenancy_mix": _case_tenancy_mix,
    "scale_1000": _case_scale_1000,
}


def run_bench(quick: bool = False, jobs: Optional[int] = None,
              seed: int = 0, label: str = "",
              echo=None) -> BenchReport:
    """Run the pinned suite; returns the report (nothing written)."""
    jobs_resolved = resolve_jobs(jobs)
    report = BenchReport(
        label=label or ("quick" if quick else "full"),
        quick=quick, jobs=jobs_resolved, seed=seed)
    for name in BENCH_CASE_NAMES:
        case = _CASES[name](quick, seed, jobs_resolved)
        report.cases.append(case)
        if echo is not None:
            ev = f" events={case.sim_events}" if case.sim_events else ""
            echo(f"{name:20s} {case.wall_seconds:8.3f}s "
                 f"runs={case.runs}{ev}")
    return report


def compare_reports(a: Dict[str, object], b: Dict[str, object]) -> str:
    """Render a per-case comparison of two report payloads (``b vs a``).

    ``a`` and ``b`` are parsed ``BENCH_<date>.json`` payloads (``a`` the
    baseline).  Speedup compares events/second when both reports carry
    it and falls back to the inverse wall-clock ratio otherwise (older
    reports predate universal event tracking); cases present in only
    one report are flagged instead of silently dropped.  Comparing a
    ``--quick`` report against a full one is almost always a mistake,
    so the header calls the labels out.
    """
    cases_a: Dict[str, Dict] = dict(a.get("cases", {}))  # type: ignore[arg-type]
    cases_b: Dict[str, Dict] = dict(b.get("cases", {}))  # type: ignore[arg-type]
    lines = [f"baseline: {a.get('label', '?')} @ {a.get('date', '?')}   "
             f"candidate: {b.get('label', '?')} @ {b.get('date', '?')}",
             f"{'case':20s} {'base ev/s':>12s} {'cand ev/s':>12s} "
             f"{'speedup':>8s}"]
    order = [n for n in BENCH_CASE_NAMES
             if n in cases_a or n in cases_b]
    order += [n for n in cases_a if n not in order]
    order += [n for n in cases_b if n not in order]
    for name in order:
        ca, cb = cases_a.get(name), cases_b.get(name)
        if ca is None or cb is None:
            side = "baseline" if cb is None else "candidate"
            lines.append(f"{name:20s} {'—':>12s} {'—':>12s} "
                         f"{side} only")
            continue
        ea, eb = ca.get("events_per_second"), cb.get("events_per_second")
        if ea and eb:
            ratio = float(eb) / float(ea)
            sa, sb = f"{float(ea):,.1f}", f"{float(eb):,.1f}"
        else:
            wa, wb = float(ca["wall_seconds"]), float(cb["wall_seconds"])
            ratio = wa / wb if wb > 0 else math.inf
            sa, sb = f"{wa:.3f}s", f"{wb:.3f}s"
        tag = "" if 0.95 <= ratio <= 1.05 else (
            "  <-- faster" if ratio > 1 else "  <-- REGRESSION")
        lines.append(f"{name:20s} {sa:>12s} {sb:>12s} {ratio:7.2f}x{tag}")
    lines.append(f"{'total wall':20s} "
                 f"{float(a.get('total_wall_seconds', 0)):>11.3f}s "
                 f"{float(b.get('total_wall_seconds', 0)):>11.3f}s")
    return "\n".join(lines)


def default_report_path(directory: Optional[Path] = None) -> Path:
    base = Path(directory) if directory is not None else Path.cwd()
    return base / f"BENCH_{date.today().isoformat()}.json"


def write_report(report: BenchReport, path: Optional[Path] = None) -> Path:
    """Write the report JSON; returns the path written."""
    out = Path(path) if path is not None else default_report_path()
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(report.to_payload(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return out
