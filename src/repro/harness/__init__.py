"""Experiment lifecycle and figure/table regeneration."""

from . import figures
from .runner import (Deployment, TrialStats, run_correlated, run_once,
                     run_trials)
from .faults import FaultRecoveryResult, run_with_failure
from .sweep import best_row, sweep, sweep_rows_to_csv

__all__ = ["Deployment", "FaultRecoveryResult", "TrialStats",
           "best_row", "figures", "run_correlated", "run_once",
           "run_trials", "run_with_failure", "sweep",
           "sweep_rows_to_csv"]
