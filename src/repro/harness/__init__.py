"""Experiment lifecycle and figure/table regeneration."""

from . import figures
from .bench import BenchCase, BenchReport, run_bench
from .checkpoint import CheckpointError, CheckpointStore
from .parallel import (TaskFailure, WorkerCrashError, parallel_map,
                       resolve_jobs, robust_map)
from .runner import (Deployment, TrialStats, run_correlated, run_once,
                     run_trials)
from .faults import FaultRecoveryResult, run_with_failure
from .sweep import best_row, sweep, sweep_rows_to_csv

__all__ = ["BenchCase", "BenchReport", "CheckpointError",
           "CheckpointStore", "Deployment", "FaultRecoveryResult",
           "TaskFailure", "TrialStats", "WorkerCrashError", "best_row",
           "figures", "parallel_map", "resolve_jobs", "robust_map",
           "run_bench", "run_correlated", "run_once", "run_trials",
           "run_with_failure", "sweep", "sweep_rows_to_csv"]
