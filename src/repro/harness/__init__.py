"""Experiment lifecycle and figure/table regeneration."""

from . import figures
from .bench import BenchCase, BenchReport, run_bench
from .parallel import WorkerCrashError, parallel_map, resolve_jobs
from .runner import (Deployment, TrialStats, run_correlated, run_once,
                     run_trials)
from .faults import FaultRecoveryResult, run_with_failure
from .sweep import best_row, sweep, sweep_rows_to_csv

__all__ = ["BenchCase", "BenchReport", "Deployment",
           "FaultRecoveryResult", "TrialStats", "WorkerCrashError",
           "best_row", "figures", "parallel_map", "resolve_jobs",
           "run_bench", "run_correlated", "run_once", "run_trials",
           "run_with_failure", "sweep", "sweep_rows_to_csv"]
