"""The experiment registry: one entry per figure/table of the paper.

Each ``fig*``/``tab*`` function reproduces the corresponding artefact:
it runs the published workload at the published scales and
configurations on both engines and returns the series/frames/statuses
the paper plots.  The benchmarks call these and assert the paper's
qualitative claims; EXPERIMENTS.md records the numbers.

All experiments honour ``trials`` (the paper averaged 5 runs) and a
``seed`` for determinism.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..config.presets import (ExperimentConfig, kmeans_preset,
                              large_graph_preset, medium_graph_preset,
                              small_graph_preset, terasort_preset,
                              wordcount_grep_preset)
from ..core.correlate import CorrelatedRun
from ..core.scalability import ScalingSeries
from ..workloads import (ConnectedComponents, Grep, KMeans, PageRank,
                         TeraSort, WordCount)
from ..workloads.base import Workload
from ..validation.invariants import strict_enabled
from ..workloads.datagen.graphs import (LARGE_GRAPH, MEDIUM_GRAPH,
                                        SMALL_GRAPH, GraphDatasetModel)
from .parallel import parallel_map
from .runner import TrialStats, run_correlated, run_trials

__all__ = [
    "ScalingFigure", "ResourceFigure", "LargeGraphCell",
    "fig01_wordcount_weak", "fig02_wordcount_strong",
    "fig03_wordcount_resources", "fig04_grep_weak", "fig05_grep_strong",
    "fig06_grep_resources", "fig07_terasort_weak", "fig08_terasort_strong",
    "fig09_terasort_resources", "fig10_kmeans_resources",
    "fig11_kmeans_scaling", "fig12_pagerank_small", "fig13_pagerank_medium",
    "fig14_cc_small", "fig15_cc_medium", "fig16_pagerank_resources",
    "fig17_cc_resources", "tab07_large_graph",
    "FaultCell", "FaultFigure", "fig18_fault_recovery",
    "fig19_resilience", "fig20_streaming_latency",
    "fig21_streaming_recovery",
    "fig22_degradation",
    "fig23_tenancy",
]

GiB = float(2**30)
TiB = float(2**40)
ENGINES = ("flink", "spark")


@dataclass
class ScalingFigure:
    """An execution-time figure: one ScalingSeries per engine."""

    figure_id: str
    title: str
    series: Dict[str, ScalingSeries]
    #: x-axis values as published (node counts or GB/node).
    xs: List[float]
    trials_raw: Dict[str, List[TrialStats]] = field(default_factory=dict)

    def flink(self) -> ScalingSeries:
        return self.series["flink"]

    def spark(self) -> ScalingSeries:
        return self.series["spark"]


@dataclass
class ResourceFigure:
    """A resource-usage figure: one correlated run per engine."""

    figure_id: str
    title: str
    runs: Dict[str, CorrelatedRun]

    def flink(self) -> CorrelatedRun:
        return self.runs["flink"]

    def spark(self) -> CorrelatedRun:
        return self.runs["spark"]

    def stage_attribution(self, kinds: Sequence[str] = ("stage",)
                          ) -> Dict[str, List[Dict[str, object]]]:
        """Dominant resource per stage span, per engine.

        Requires the figure to have been built with ``spans=True``;
        this is the "cite the dominant resource per stage" hook the
        cross-engine comparisons use (e.g. Word Count's disk/CPU-bound
        map versus Page Rank's network-bound shuffle supersteps).
        """
        out: Dict[str, List[Dict[str, object]]] = {}
        for engine, run in self.runs.items():
            trace = getattr(run, "trace", None)
            if trace is None:
                raise ValueError(
                    f"figure {self.figure_id} was built without "
                    f"spans=True; no attribution for {engine!r}")
            rows: List[Dict[str, object]] = []
            for span in trace.tree:
                if span.kind not in kinds:
                    continue
                attr = trace.attribution.get(span.id)
                rows.append({
                    "name": span.name, "key": span.key,
                    "start": span.start, "end": span.end,
                    "iteration": span.iteration,
                    "dominant": (attr.dominant_resources()
                                 if attr is not None else ["idle"]),
                })
            out[engine] = rows
        return out


def _stats_payload(stats: TrialStats) -> Dict[str, object]:
    """The journal form of one scaling data point (checkpoint record)."""
    return {"engine": stats.engine, "workload": stats.workload,
            "nodes": stats.nodes, "durations": list(stats.durations),
            "failures": list(stats.failures)}


def _stats_from_payload(payload: Dict[str, object]) -> TrialStats:
    # Full EngineRunResults are deliberately not journaled (they are
    # simulation-internal object graphs); everything a figure digest
    # observes — durations, failures, mean/std — round-trips exactly.
    return TrialStats(engine=payload["engine"], workload=payload["workload"],
                      nodes=payload["nodes"],
                      durations=list(payload["durations"]),
                      failures=list(payload["failures"]))


def _scaling(figure_id: str, title: str, xs: Sequence[float],
             make_workload: Callable[[float], Workload],
             make_config: Callable[[float], ExperimentConfig],
             trials: int, seed: int,
             strict: Optional[bool] = None,
             jobs: Optional[int] = None,
             checkpoint=None) -> ScalingFigure:
    # Every (engine, x) data point is an independent deterministic batch
    # of trials; materialise the workload/config here (the lambdas do
    # not cross process boundaries) and fan out.  Results come back in
    # task order, so the figure is identical at any job count.
    strict_flag = strict_enabled(strict)
    tasks = [(engine, make_workload(x), make_config(x), trials, seed,
              strict_flag)
             for engine in ENGINES for x in xs]
    flat: List[TrialStats] = _checkpointed_trials(
        figure_id, tasks, xs, trials, seed, jobs, checkpoint)
    series: Dict[str, ScalingSeries] = {}
    raw: Dict[str, List[TrialStats]] = {}
    for i, engine in enumerate(ENGINES):
        stats = flat[i * len(xs):(i + 1) * len(xs)]
        raw[engine] = stats
        series[engine] = ScalingSeries(
            engine=engine,
            nodes=[int(x) for x in xs],
            means=[s.mean for s in stats],
            stds=[s.std for s in stats])
    return ScalingFigure(figure_id=figure_id, title=title, series=series,
                         xs=list(xs), trials_raw=raw)


def _checkpointed_trials(figure_id: str, tasks, xs, trials: int, seed: int,
                         jobs: Optional[int], checkpoint
                         ) -> List[TrialStats]:
    """Fan the trial batches out, journaling each finished data point.

    Without a checkpoint store this is exactly
    ``parallel_map(run_trials, tasks)``.  With one, already-journaled
    points are replayed and only the missing ones run — resume after a
    kill reproduces the uninterrupted figure digests bit-identically.
    """
    from ..validation.digest import digest_payload
    if checkpoint is None:
        return parallel_map(run_trials, tasks, jobs=jobs)
    keys = [digest_payload({
        "figure_id": figure_id, "engine": engine, "x": float(x),
        "trials": trials, "seed": seed})
        for (engine, _w, _c, _t, _s, _f), x in
        zip(tasks, [x for _ in ENGINES for x in xs])]
    results: List[Optional[TrialStats]] = [None] * len(tasks)
    pending = []
    for i, key in enumerate(keys):
        if key in checkpoint:
            results[i] = _stats_from_payload(checkpoint.load(key))
        else:
            pending.append(i)
    if pending:
        def _journal(pos: int, stats: TrialStats) -> None:
            checkpoint.save(keys[pending[pos]], _stats_payload(stats))

        fresh = parallel_map(run_trials, [tasks[i] for i in pending],
                             jobs=jobs, on_result=_journal)
        for pos, stats in zip(pending, fresh):
            results[pos] = stats
    return results  # type: ignore[return-value]


def _resources(figure_id: str, title: str, workload: Workload,
               config: ExperimentConfig, seed: int,
               strict: Optional[bool] = None,
               jobs: Optional[int] = None,
               spans: bool = False) -> ResourceFigure:
    strict_flag = strict_enabled(strict)
    tasks = [(engine, workload, config, seed, 1.0, strict_flag, spans)
             for engine in ENGINES]
    results = parallel_map(run_correlated, tasks, jobs=jobs)
    runs = dict(zip(ENGINES, results))
    return ResourceFigure(figure_id=figure_id, title=title, runs=runs)


# ----------------------------------------------------------------------
# Word Count (Figs. 1-3)
# ----------------------------------------------------------------------
def fig01_wordcount_weak(trials: int = 3, seed: int = 0,
                         nodes: Sequence[int] = (2, 4, 8, 16, 32),
                         strict: Optional[bool] = None,
        jobs: Optional[int] = None,
        checkpoint=None) -> ScalingFigure:
    """Word Count, fixed 24 GB per node."""
    return _scaling(
        "fig01", "Word Count - fixed problem size per node (24GB)",
        nodes,
        lambda n: WordCount(total_bytes=n * 24 * GiB),
        lambda n: wordcount_grep_preset(int(n)),
        trials, seed, strict=strict, jobs=jobs, checkpoint=checkpoint)


def fig02_wordcount_strong(trials: int = 3, seed: int = 0,
                           gb_per_node: Sequence[int] = (24, 27, 30, 33),
                           nodes: int = 16,
                           strict: Optional[bool] = None,
        jobs: Optional[int] = None,
        checkpoint=None) -> ScalingFigure:
    """Word Count, 16 nodes, growing datasets."""
    fig = _scaling(
        "fig02", "Word Count - 16 nodes, different datasets",
        gb_per_node,
        lambda gb: WordCount(total_bytes=nodes * gb * GiB),
        lambda gb: wordcount_grep_preset(nodes),
        trials, seed, strict=strict, jobs=jobs, checkpoint=checkpoint)
    return fig


def fig03_wordcount_resources(seed: int = 0, nodes: int = 32,
        strict: Optional[bool] = None,
        jobs: Optional[int] = None,
        spans: bool = False) -> ResourceFigure:
    """Word Count resource usage, 32 nodes, 768 GB."""
    return _resources("fig03",
                      "Word Count resource usage (32 nodes, 768 GB)",
                      WordCount(total_bytes=nodes * 24 * GiB),
                      wordcount_grep_preset(nodes), seed, strict=strict, jobs=jobs,
                      spans=spans)


# ----------------------------------------------------------------------
# Grep (Figs. 4-6)
# ----------------------------------------------------------------------
def fig04_grep_weak(trials: int = 3, seed: int = 0,
                    nodes: Sequence[int] = (2, 4, 8, 16, 32),
                    strict: Optional[bool] = None,
        jobs: Optional[int] = None,
        checkpoint=None) -> ScalingFigure:
    return _scaling(
        "fig04", "Grep - fixed problem size per node (24GB)",
        nodes,
        lambda n: Grep(total_bytes=n * 24 * GiB),
        lambda n: wordcount_grep_preset(int(n)),
        trials, seed, strict=strict, jobs=jobs, checkpoint=checkpoint)


def fig05_grep_strong(trials: int = 3, seed: int = 0,
                      gb_per_node: Sequence[int] = (24, 27, 30, 33),
                      nodes: int = 16,
                      strict: Optional[bool] = None,
        jobs: Optional[int] = None,
        checkpoint=None) -> ScalingFigure:
    return _scaling(
        "fig05", "Grep - 16 nodes, different datasets",
        gb_per_node,
        lambda gb: Grep(total_bytes=nodes * gb * GiB),
        lambda gb: wordcount_grep_preset(nodes),
        trials, seed, strict=strict, jobs=jobs, checkpoint=checkpoint)


def fig06_grep_resources(seed: int = 0, nodes: int = 32,
        strict: Optional[bool] = None,
        jobs: Optional[int] = None,
        spans: bool = False) -> ResourceFigure:
    return _resources("fig06", "Grep resource usage (32 nodes, 768 GB)",
                      Grep(total_bytes=nodes * 24 * GiB),
                      wordcount_grep_preset(nodes), seed, strict=strict, jobs=jobs,
                      spans=spans)


# ----------------------------------------------------------------------
# Tera Sort (Figs. 7-9)
# ----------------------------------------------------------------------
def _terasort(nodes: int, total_bytes: float) -> TeraSort:
    preset = terasort_preset(nodes)
    return TeraSort(total_bytes,
                    num_partitions=preset.flink.default_parallelism)


def fig07_terasort_weak(trials: int = 3, seed: int = 0,
                        nodes: Sequence[int] = (17, 34, 63),
                        strict: Optional[bool] = None,
        jobs: Optional[int] = None,
        checkpoint=None) -> ScalingFigure:
    return _scaling(
        "fig07", "Tera Sort - fixed problem size per node (32 GB)",
        nodes,
        lambda n: _terasort(int(n), n * 32 * GiB),
        lambda n: terasort_preset(int(n)),
        trials, seed, strict=strict, jobs=jobs, checkpoint=checkpoint)


def fig08_terasort_strong(trials: int = 3, seed: int = 0,
                          nodes: Sequence[int] = (55, 73, 97),
                          strict: Optional[bool] = None,
        jobs: Optional[int] = None,
        checkpoint=None) -> ScalingFigure:
    return _scaling(
        "fig08", "Tera Sort - adding nodes, same dataset (3.5TB)",
        nodes,
        lambda n: _terasort(int(n), 3.5 * TiB),
        lambda n: terasort_preset(int(n)),
        trials, seed, strict=strict, jobs=jobs, checkpoint=checkpoint)


def fig09_terasort_resources(seed: int = 0, nodes: int = 55,
        strict: Optional[bool] = None,
        jobs: Optional[int] = None,
        spans: bool = False) -> ResourceFigure:
    return _resources("fig09",
                      "Tera Sort resource usage (55 nodes, 3.5 TB)",
                      _terasort(nodes, 3.5 * TiB),
                      terasort_preset(nodes), seed, strict=strict, jobs=jobs,
                      spans=spans)


# ----------------------------------------------------------------------
# K-Means (Figs. 10-11)
# ----------------------------------------------------------------------
def fig10_kmeans_resources(seed: int = 0, nodes: int = 24,
        strict: Optional[bool] = None,
        jobs: Optional[int] = None,
        spans: bool = False) -> ResourceFigure:
    return _resources(
        "fig10", "K-Means resource usage (24 nodes, 10 iterations)",
        KMeans(total_bytes=51 * GiB, iterations=10),
        kmeans_preset(nodes), seed, strict=strict, jobs=jobs, spans=spans)


def fig11_kmeans_scaling(trials: int = 3, seed: int = 0,
                         nodes: Sequence[int] = (8, 14, 20, 24),
                         strict: Optional[bool] = None,
        jobs: Optional[int] = None,
        checkpoint=None) -> ScalingFigure:
    return _scaling(
        "fig11", "K-Means - increasing cluster size, same dataset",
        nodes,
        lambda n: KMeans(total_bytes=51 * GiB, iterations=10),
        lambda n: kmeans_preset(int(n)),
        trials, seed, strict=strict, jobs=jobs, checkpoint=checkpoint)


# ----------------------------------------------------------------------
# Graphs (Figs. 12-17, Table VII)
# ----------------------------------------------------------------------
def _pagerank(graph: GraphDatasetModel, cfg: ExperimentConfig,
              iterations: int) -> PageRank:
    return PageRank(graph, iterations=iterations,
                    edge_partitions=cfg.spark.edge_partitions)


def _cc(graph: GraphDatasetModel, cfg: ExperimentConfig,
        iterations: int) -> ConnectedComponents:
    return ConnectedComponents(graph, iterations=iterations,
                               edge_partitions=cfg.spark.edge_partitions)


def fig12_pagerank_small(trials: int = 3, seed: int = 0,
                         nodes: Sequence[int] = (8, 14, 20, 27),
                         strict: Optional[bool] = None,
        jobs: Optional[int] = None,
        checkpoint=None) -> ScalingFigure:
    return _scaling(
        "fig12", "Page Rank - Small Graph (increasing cluster size)",
        nodes,
        lambda n: _pagerank(SMALL_GRAPH, small_graph_preset(int(n)), 20),
        lambda n: small_graph_preset(int(n)),
        trials, seed, strict=strict, jobs=jobs, checkpoint=checkpoint)


def fig13_pagerank_medium(trials: int = 3, seed: int = 0,
                          nodes: Sequence[int] = (24, 27, 34, 55),
                          strict: Optional[bool] = None,
        jobs: Optional[int] = None,
        checkpoint=None) -> ScalingFigure:
    return _scaling(
        "fig13", "Page Rank - Medium Graph (increasing cluster size)",
        nodes,
        lambda n: _pagerank(MEDIUM_GRAPH, medium_graph_preset(int(n)), 20),
        lambda n: medium_graph_preset(int(n)),
        trials, seed, strict=strict, jobs=jobs, checkpoint=checkpoint)


def fig14_cc_small(trials: int = 3, seed: int = 0,
                   nodes: Sequence[int] = (8, 14, 20, 27),
                   strict: Optional[bool] = None,
        jobs: Optional[int] = None,
        checkpoint=None) -> ScalingFigure:
    return _scaling(
        "fig14", "Connected Components - Small Graph",
        nodes,
        lambda n: _cc(SMALL_GRAPH, small_graph_preset(int(n)), 23),
        lambda n: small_graph_preset(int(n)),
        trials, seed, strict=strict, jobs=jobs, checkpoint=checkpoint)


def fig15_cc_medium(trials: int = 3, seed: int = 0,
                    nodes: Sequence[int] = (27, 34, 55),
                    strict: Optional[bool] = None,
        jobs: Optional[int] = None,
        checkpoint=None) -> ScalingFigure:
    return _scaling(
        "fig15", "Connected Components - Medium Graph",
        nodes,
        lambda n: _cc(MEDIUM_GRAPH, medium_graph_preset(int(n)), 23),
        lambda n: medium_graph_preset(int(n)),
        trials, seed, strict=strict, jobs=jobs, checkpoint=checkpoint)


def fig16_pagerank_resources(seed: int = 0, nodes: int = 27,
        strict: Optional[bool] = None,
        jobs: Optional[int] = None,
        spans: bool = False) -> ResourceFigure:
    cfg = small_graph_preset(nodes)
    return _resources("fig16",
                      "Page Rank resource usage (27 nodes, Small Graph)",
                      _pagerank(SMALL_GRAPH, cfg, 20), cfg, seed, strict=strict, jobs=jobs,
                      spans=spans)


def fig17_cc_resources(seed: int = 0, nodes: int = 27,
        strict: Optional[bool] = None,
        jobs: Optional[int] = None,
        spans: bool = False) -> ResourceFigure:
    cfg = medium_graph_preset(nodes)
    return _resources("fig17",
                      "CC resource usage (27 nodes, Medium Graph)",
                      _cc(MEDIUM_GRAPH, cfg, 23), cfg, seed, strict=strict, jobs=jobs,
                      spans=spans)


# ----------------------------------------------------------------------
# Table VII — Large graph
# ----------------------------------------------------------------------
@dataclass
class LargeGraphCell:
    """One Table VII cell: engine x workload x nodes."""

    engine: str
    workload: str
    nodes: int
    success: bool
    load_seconds: float = math.nan
    iter_seconds: float = math.nan
    failure: Optional[str] = None

    @property
    def total(self) -> float:
        return self.load_seconds + self.iter_seconds


def tab07_large_graph(seed: int = 0,
                      node_counts: Sequence[int] = (27, 44, 97),
                      double_edge_partitions: bool = True,
                      strict: Optional[bool] = None,
                      jobs: Optional[int] = None) -> List[LargeGraphCell]:
    """Run the Table VII grid; Flink's load includes the vertex count."""
    from .runner import run_once
    strict_flag = strict_enabled(strict)
    labels: List[Tuple[str, str, int]] = []
    tasks = []
    for nodes in node_counts:
        cfg = large_graph_preset(nodes,
                                 double_edge_partitions=double_edge_partitions)
        workloads = [
            ("PR", _pagerank(LARGE_GRAPH, cfg, 5)),
            ("CC", _cc(LARGE_GRAPH, cfg, 10)),
        ]
        for name, workload in workloads:
            for engine in ENGINES:
                labels.append((engine, name, nodes))
                tasks.append((engine, workload, cfg, seed, False,
                              strict_flag))
    results = parallel_map(run_once, tasks, jobs=jobs)
    cells: List[LargeGraphCell] = []
    for (engine, name, nodes), result in zip(labels, results):
        if not result.success:
            cells.append(LargeGraphCell(
                engine=engine, workload=name, nodes=nodes,
                success=False, failure=result.failure))
            continue
        load, iters = _split_load_iter(result)
        cells.append(LargeGraphCell(
            engine=engine, workload=name, nodes=nodes, success=True,
            load_seconds=load, iter_seconds=iters))
    return cells


def _split_load_iter(result) -> Tuple[float, float]:
    """Split a run into Load vs Iter the way Table VII reports it."""
    load = 0.0
    iters = 0.0
    for job in result.jobs:
        if job.name in ("load", "count-vertices"):
            load += job.duration
        elif job.name == "iterations":
            iters += job.duration
        else:
            # Flink's single pipelined job: split at the iteration-head
            # span; its load stage includes the vertices count.
            head = next((s for s in job.spans
                         if s.key in ("B", "W")), None)
            if head is None:
                load += job.duration
            else:
                load += head.start - job.start
                iters += job.end - head.start
    return load, iters


# ----------------------------------------------------------------------
# Fig. 18 (extension) — failure recovery overhead
# ----------------------------------------------------------------------
@dataclass
class FaultCell:
    """One recovery data point: engine x workload x failure point."""

    engine: str
    workload: str
    nodes: int
    fail_at_fraction: float
    success: bool
    baseline_seconds: float = math.nan
    simulated_seconds: float = math.nan
    analytic_seconds: float = math.nan
    retries: int = 0
    restarts: int = 0
    failure: Optional[str] = None
    #: Kernel events behind this data point.  The shared fault-free
    #: baseline is charged to the *first* cell of its task, so summing
    #: ``sim_events`` over a figure gives the campaign total exactly.
    #: (``fault_payload`` enumerates its fields, so this one stays out
    #: of the golden digests.)
    sim_events: Optional[int] = None

    @property
    def simulated_overhead(self) -> float:
        return self.simulated_seconds - self.baseline_seconds

    @property
    def analytic_overhead(self) -> float:
        return self.analytic_seconds - self.baseline_seconds


@dataclass
class FaultFigure:
    """Recovery-overhead figure: simulated vs analytic estimates."""

    figure_id: str
    title: str
    cells: List[FaultCell]

    def of_engine(self, engine: str) -> List[FaultCell]:
        return [c for c in self.cells if c.engine == engine]


def _fault_cells_task(engine: str, workload: Workload,
                      cfg: ExperimentConfig, nodes: int,
                      fractions: Sequence[float], seed: int,
                      strict: bool) -> List[FaultCell]:
    """One fig18 unit of work: a baseline plus its crash runs.

    The crash runs reuse the baseline, so this is the smallest
    independently parallelisable piece of the figure.
    """
    from ..faults import FaultPlan, FlinkRestartPolicy, RetryPolicy, \
        run_with_faults
    from .faults import analytic_total
    from .runner import run_once
    baseline = run_once(engine, workload, cfg, seed=seed, strict=strict)
    cells: List[FaultCell] = []
    pending_events = baseline.sim_events or 0
    for fraction in fractions:
        if not baseline.success:
            cells.append(FaultCell(
                engine=engine, workload=workload.name, nodes=nodes,
                fail_at_fraction=fraction, success=False,
                failure=baseline.failure,
                sim_events=pending_events or None))
            pending_events = 0
            continue
        plan = FaultPlan.single_crash(fraction, node=1,
                                      restart_after=0.0)
        faulted = run_with_faults(
            engine, workload, cfg, plan, seed=seed,
            retry_policy=RetryPolicy(backoff=0.0),
            restart_policy=FlinkRestartPolicy(restart_delay=0.0),
            strict=strict, baseline=baseline)
        cells.append(FaultCell(
            engine=engine, workload=workload.name, nodes=nodes,
            fail_at_fraction=fraction, success=faulted.success,
            baseline_seconds=faulted.baseline_duration,
            simulated_seconds=faulted.faulted_duration,
            analytic_seconds=analytic_total(
                engine, baseline, fraction, cfg.nodes),
            retries=faulted.retry_attempts,
            restarts=len(faulted.restarts),
            failure=faulted.result.failure,
            sim_events=pending_events + (faulted.result.sim_events or 0)))
        pending_events = 0
    return cells


def fig18_fault_recovery(seed: int = 0, nodes: int = 4,
                         fractions: Sequence[float] = (0.25, 0.5, 0.75),
                         strict: Optional[bool] = None,
                         jobs: Optional[int] = None) -> FaultFigure:
    """Single-node crash recovery sweep (extension of §VIII).

    For each engine and workload, one fault-free baseline is run, then
    one in-simulation crash-and-recover run per failure point (process
    kill: the machine rejoins immediately, its task state is lost), and
    the analytic lineage/restart estimate over the same baseline.
    Spark pays stage-level re-execution; Flink 0.10 restarts the whole
    pipeline, so its overhead grows with the failure point.
    """
    strict_flag = strict_enabled(strict)
    workloads = [
        (WordCount(total_bytes=nodes * 4 * GiB), wordcount_grep_preset(nodes)),
        (_terasort(nodes, nodes * 2 * GiB), terasort_preset(nodes)),
    ]
    tasks = [(engine, workload, cfg, nodes, tuple(fractions), seed,
              strict_flag)
             for workload, cfg in workloads for engine in ENGINES]
    cell_groups = parallel_map(_fault_cells_task, tasks, jobs=jobs)
    cells: List[FaultCell] = [c for group in cell_groups for c in group]
    return FaultFigure(
        "fig18", f"Failure recovery overhead ({nodes} nodes, "
        f"single node crash)", cells)


# ----------------------------------------------------------------------
# Fig. 19 (extension) — resilience under sustained fault rates
# ----------------------------------------------------------------------
def fig19_resilience(seed: int = 0, nodes: int = 8,
                     rates: Sequence[float] = (0.0, 0.5, 1.0, 2.0),
                     trials: int = 1, stragglers: int = 0,
                     workload_names: Optional[Sequence[str]] = None,
                     strict: Optional[bool] = None,
                     jobs: Optional[int] = None,
                     timeout: Optional[float] = None,
                     checkpoint=None):
    """Slowdown/availability-vs-fault-rate curves (extension of §VIII).

    For each engine and each of the six workloads, a seeded stochastic
    fault process (per-node Poisson/MTTF arrivals, see
    :mod:`repro.resilience.stochastic`) is compiled into a
    deterministic plan per rate and injected into the simulation;
    the curves report the mean slowdown over completed trials and the
    fraction of trials that completed at all.  Deterministic per seed
    and bit-identical at any job count; pass ``checkpoint`` (a
    :class:`~repro.harness.checkpoint.CheckpointStore`) to journal
    cells and resume a killed campaign.
    """
    from ..resilience.sweep import default_workloads, resilience_sweep
    workloads = default_workloads(nodes)
    if workload_names is not None:
        wanted = set(workload_names)
        unknown = wanted - {name for name, _w, _c in workloads}
        if unknown:
            raise ValueError(f"unknown workload(s) {sorted(unknown)}")
        workloads = [w for w in workloads if w[0] in wanted]
    return resilience_sweep(
        workloads=workloads, rates=rates, trials=trials, nodes=nodes,
        seed=seed, stragglers=stragglers, strict=strict, jobs=jobs,
        timeout=timeout, checkpoint=checkpoint, figure_id="fig19")


# ----------------------------------------------------------------------
# Fig. 20 / Fig. 21 (extension) — executed streaming engines
# ----------------------------------------------------------------------
def fig20_streaming_latency(seed: int = 0, nodes: int = 8,
                            load_fractions: Optional[Sequence[float]] = None,
                            arrival_kinds: Optional[Sequence[str]] = None,
                            duration: Optional[float] = None,
                            strict: Optional[bool] = None,
                            jobs: Optional[int] = None,
                            timeout: Optional[float] = None,
                            checkpoint=None):
    """Latency percentiles vs offered load for the executed streaming
    engines (the §VIII future-work question, answered by execution).

    Each cell runs one engine under one compiled arrival plan (steady
    Poisson or bursty MMPP) at a fraction of that engine's analytic
    capacity on the fluid kernel; see :mod:`repro.streaming.engines`.
    Deterministic per seed and bit-identical at any job count; pass
    ``checkpoint`` to journal cells and resume a killed campaign.
    """
    from ..streaming.sweep import (ARRIVAL_KINDS, DEFAULT_DURATION,
                                   DEFAULT_LOAD_FRACTIONS, streaming_sweep)
    return streaming_sweep(
        figure_id="fig20",
        arrival_kinds=(tuple(arrival_kinds) if arrival_kinds is not None
                       else ARRIVAL_KINDS),
        load_fractions=(tuple(load_fractions) if load_fractions is not None
                        else DEFAULT_LOAD_FRACTIONS),
        nodes=nodes, seed=seed,
        duration=duration if duration is not None else DEFAULT_DURATION,
        strict=strict, jobs=jobs, timeout=timeout, checkpoint=checkpoint)


def fig21_streaming_recovery(seed: int = 0, nodes: int = 8,
                             checkpoint_intervals: Optional[
                                 Sequence[float]] = None,
                             crash_at: Optional[float] = None,
                             duration: Optional[float] = None,
                             strict: Optional[bool] = None,
                             jobs: Optional[int] = None,
                             timeout: Optional[float] = None,
                             checkpoint=None):
    """Recovery time after a node crash vs checkpoint interval.

    Both streaming engines run at half capacity under Poisson arrivals;
    a crash kills the pipeline mid-run and the engine replays from its
    last checkpoint (Flink: barrier snapshot; Spark: lineage since the
    last RDD checkpoint).  Longer intervals mean more replay, so
    recovery time grows with the interval.
    """
    from ..streaming.sweep import (DEFAULT_CHECKPOINT_INTERVALS,
                                   DEFAULT_DURATION, FIG21_CRASH_AT,
                                   FIG21_LOAD_FRACTION, streaming_sweep)
    return streaming_sweep(
        figure_id="fig21",
        load_fractions=(FIG21_LOAD_FRACTION,),
        checkpoint_intervals=(tuple(checkpoint_intervals)
                              if checkpoint_intervals is not None
                              else DEFAULT_CHECKPOINT_INTERVALS),
        crash_at=crash_at if crash_at is not None else FIG21_CRASH_AT,
        nodes=nodes, seed=seed,
        duration=duration if duration is not None else DEFAULT_DURATION,
        strict=strict, jobs=jobs, timeout=timeout, checkpoint=checkpoint)


def fig22_degradation(seed: int = 0, nodes: int = 8,
                      load_multiples: Optional[Sequence[float]] = None,
                      fault_rates: Optional[Sequence[float]] = None,
                      policies: Optional[Sequence[str]] = None,
                      duration: Optional[float] = None,
                      strict: Optional[bool] = None,
                      jobs: Optional[int] = None,
                      timeout: Optional[float] = None,
                      checkpoint=None):
    """Overload survival: goodput, loss fraction, p99 latency and
    availability vs offered load x fault rate x degradation policy.

    Each cell runs one engine under Poisson arrivals at a *multiple*
    of its stability boundary, with a crash schedule compiled from the
    stochastic fault model (common random numbers across engines and
    policies).  The ``"none"`` policy is the fixed-delay,
    never-shedding baseline whose latency diverges above 1.0x; the
    ``"degrade"`` policy (backoff restarts + shedding / adaptive
    batching) keeps p99 within the policy's bound at a measured loss
    fraction.  Deterministic per seed and bit-identical at any job
    count; pass ``checkpoint`` to journal cells and resume.
    """
    from ..streaming.sweep import (DEFAULT_DURATION, DEFAULT_FAULT_RATES,
                                   DEFAULT_LOAD_MULTIPLES,
                                   degradation_sweep)
    return degradation_sweep(
        figure_id="fig22",
        load_multiples=(tuple(load_multiples)
                        if load_multiples is not None
                        else DEFAULT_LOAD_MULTIPLES),
        fault_rates=(tuple(fault_rates) if fault_rates is not None
                     else DEFAULT_FAULT_RATES),
        policies=(tuple(policies) if policies is not None
                  else ("none", "degrade")),
        nodes=nodes, seed=seed,
        duration=duration if duration is not None else DEFAULT_DURATION,
        strict=strict, jobs=jobs, timeout=timeout, checkpoint=checkpoint)


# ----------------------------------------------------------------------
# Fig. 23 (extension) — multi-tenant cluster scheduling
# ----------------------------------------------------------------------
def fig23_tenancy(seed: int = 0, nodes: int = 8,
                  policies: Optional[Sequence[str]] = None,
                  loads: Optional[Sequence[float]] = None,
                  trials: int = 1,
                  jobs_target: Optional[int] = None,
                  crash_rate: float = 0.0,
                  strict: Optional[bool] = None,
                  jobs: Optional[int] = None,
                  timeout: Optional[float] = None,
                  checkpoint=None):
    """Multi-tenant scheduling: per-policy job slowdown, queue wait vs
    utilization, and Jain fairness vs offered load.

    The paper ran one job per cluster; this figure shares one cluster
    between a seeded Poisson mix of jobs (both engines, two queues)
    admitted under FIFO, fair-share or capacity scheduling with
    engine-faithful preemption loss (Spark lineage vs Flink restart —
    see :mod:`repro.scheduler`).  Deterministic per seed and
    bit-identical at any job count; pass ``checkpoint`` to journal
    cells and resume a killed campaign.
    """
    from ..scheduler.sweep import (DEFAULT_JOBS_TARGET, DEFAULT_LOADS,
                                   DEFAULT_POLICIES, tenancy_sweep)
    return tenancy_sweep(
        policies=(tuple(policies) if policies is not None
                  else DEFAULT_POLICIES),
        loads=tuple(loads) if loads is not None else DEFAULT_LOADS,
        trials=trials, nodes=nodes, seed=seed,
        jobs_target=(jobs_target if jobs_target is not None
                     else DEFAULT_JOBS_TARGET),
        crash_rate=crash_rate, strict=strict, jobs=jobs,
        timeout=timeout, checkpoint=checkpoint, figure_id="fig23")
