"""Experiment runner: the paper's per-experiment cycle (§V).

"For every experiment we follow the same cycle.  We install Hadoop
(HDFS) and we configure a standalone setup of Flink and Spark.  We
import the analyzed dataset and we execute on average 5 runs for each
experiment.  For each run we measure the time necessary to finish the
execution excluding the time to start and stop the cluster ... We make
sure to clear the OS buffer cache and temporary generated data or logs
before a new execution starts."

:func:`run_once` performs one such run on a freshly deployed simulated
cluster (fresh cluster == cleared caches); :func:`run_trials` repeats
it with distinct seeds and aggregates mean/std, which is what every
figure plots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..cluster.topology import Cluster
from ..config.presets import ExperimentConfig
from ..engines.common.result import EngineRunResult
from ..engines.flink.engine import FlinkEngine
from ..engines.spark.engine import SparkEngine
from ..hdfs.filesystem import HDFS
from ..observability import (CriticalPath, SpanAttribution, SpanTracer,
                             SpanTree, attribute_spans,
                             extract_critical_path)
from ..validation.invariants import InvariantChecker, strict_enabled
from ..workloads.base import Workload

__all__ = ["Deployment", "TrialStats", "TracedRun", "run_once",
           "run_traced", "run_trials"]


@dataclass
class Deployment:
    """One standalone deployment: cluster + HDFS + engine + traces."""

    cluster: Cluster
    hdfs: HDFS
    engine: object
    result: EngineRunResult


@dataclass
class TrialStats:
    """Mean/std over repeated runs — one figure data point."""

    engine: str
    workload: str
    nodes: int
    durations: List[float] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)
    results: List[EngineRunResult] = field(default_factory=list)

    @property
    def trials(self) -> int:
        return len(self.durations) + len(self.failures)

    @property
    def success(self) -> bool:
        return bool(self.durations) and not self.failures

    @property
    def mean(self) -> float:
        if not self.durations:
            return math.nan
        return float(np.mean(self.durations))

    @property
    def std(self) -> float:
        if len(self.durations) < 2:
            return 0.0
        return float(np.std(self.durations, ddof=1))

    def describe(self) -> str:
        if not self.success:
            return (f"{self.engine:5s} {self.workload} x{self.nodes}: FAILED "
                    f"({self.failures[0] if self.failures else 'no runs'})")
        return (f"{self.engine:5s} {self.workload} x{self.nodes}: "
                f"{self.mean:8.1f}s +/- {self.std:.1f}")


def run_once(engine_name: str, workload: Workload, config: ExperimentConfig,
             seed: int = 0, keep_deployment: bool = False,
             strict: Optional[bool] = None,
             trace_detail: str = "full",
             tracer: Optional[SpanTracer] = None,
             fast_forward: Optional[float] = None) -> EngineRunResult:
    """Deploy, import the dataset, run every job of the workload.

    ``strict`` attaches an :class:`~repro.validation.InvariantChecker`
    to the deployment: the kernel and fluid scheduler are audited online
    and the whole cluster post-run; any violation raises
    :class:`~repro.validation.InvariantViolation`.  ``None`` defers to
    :func:`repro.validation.set_strict_default`.

    ``trace_detail`` tunes resource tracing (see
    :data:`repro.cluster.fluid.TRACE_DETAIL_MODES`); callers that only
    need durations can pass ``"off"`` to skip trace appends.  Strict
    runs force ``"full"`` — the audits integrate the throughput traces.

    ``tracer`` attaches a :class:`~repro.observability.SpanTracer` to
    the deployment: the engines record their run/job/stage/operator/
    task windows into it (purely from clock reads, so the simulation
    itself is bit-identical with or without one).  The root ``run``
    span covers exactly the execution window — HDFS import is outside
    it, matching how the paper measures.  Tracing forces
    ``trace_detail="full"`` because attribution integrates the
    capacity traces.  On a *failed* run the span stack is left as the
    failure found it; use :func:`run_traced` for a checked entry point.

    ``fast_forward`` (opt-in, default off) enables the fluid
    scheduler's calibrated fast-forward mode at the given relative
    tolerance (see :class:`~repro.cluster.fluid.FluidScheduler`):
    completions land at most ``tol * now`` early, compounding along
    the critical path, while wakeup churn drops.
    It is rejected in strict mode — absorbed completions break the
    exact byte-conservation audit by construction.
    """
    checker = InvariantChecker() if strict_enabled(strict) else None
    if fast_forward is not None and checker is not None:
        raise ValueError("fast_forward is an approximation and cannot be "
                         "combined with strict invariant checking")
    if checker is not None or tracer is not None:
        trace_detail = "full"
    cluster = Cluster(config.nodes, seed=seed, trace_detail=trace_detail,
                      fast_forward=fast_forward)
    if checker is not None:
        checker.attach(cluster)
    if tracer is not None:
        cluster.tracer = tracer
        cluster.fluid.flow_hook = tracer.on_flow_complete
    hdfs = HDFS(cluster, block_size=config.hdfs_block_size, seed=seed)
    for path, size in workload.input_files():
        hdfs.create_file(path, size)
    if engine_name == "spark":
        engine = SparkEngine(cluster, hdfs, config.spark)
    elif engine_name == "flink":
        engine = FlinkEngine(cluster, hdfs, config.flink)
    else:
        raise ValueError(f"unknown engine {engine_name!r}")

    run_span = None
    if tracer is not None:
        run_span = tracer.begin(
            "run", f"{engine_name}/{workload.name}", cluster.now)
    merged: Optional[EngineRunResult] = None
    for plan in workload.jobs(engine_name):
        result = engine.run(plan)
        if merged is None:
            merged = result
            merged.workload = workload.name
        else:
            merged.jobs.extend(result.jobs)
            merged.end = result.end
            merged.stage_windows.extend(result.stage_windows)
            for key, value in result.metrics.items():
                merged.metrics[key] = merged.metrics.get(key, 0.0) + value
            if not result.success:
                merged.success = False
                merged.failure = result.failure
        if not result.success:
            break
    assert merged is not None
    merged.sim_events = cluster.sim.steps_executed
    if tracer is not None and merged.success:
        # Closing at merged.end makes root duration == result duration
        # exactly (a property test pins this).
        tracer.end(run_span, merged.end)
    if checker is not None:
        checker.audit_cluster(cluster)
        checker.audit_engine(engine)
        checker.audit_result(merged)
        checker.require_clean(
            f"{engine_name}/{workload.name} x{config.nodes} seed={seed}")
        checker.detach(cluster)
    if keep_deployment:
        merged.metrics["_deployment"] = Deployment(  # type: ignore[assignment]
            cluster=cluster, hdfs=hdfs, engine=engine, result=merged)
    return merged


@dataclass
class TracedRun:
    """One traced execution: result + span tree + derived analyses.

    Plain data end to end (spans, path segments and attributions are
    dataclasses of scalars), so traced runs pickle across the parallel
    harness and merge in submission order bit-identically.
    """

    result: EngineRunResult
    tree: SpanTree
    critical_path: CriticalPath
    attribution: Dict[int, SpanAttribution]

    def to_payload(self) -> Dict[str, object]:
        """Digest-friendly payload (see :mod:`repro.validation.digest`)."""
        return {
            "engine": self.result.engine,
            "workload": self.result.workload,
            "nodes": self.result.nodes,
            "duration": self.result.duration,
            "spans": self.tree.to_payload(),
            "critical_path": self.critical_path.to_payload(),
            "attribution": [self.attribution[sid].to_payload()
                            for sid in sorted(self.attribution)],
        }


def run_traced(engine_name: str, workload: Workload,
               config: ExperimentConfig, seed: int = 0,
               strict: Optional[bool] = None,
               record_flows: bool = False) -> TracedRun:
    """Run once with a span tracer attached and analyse the tree.

    Returns a :class:`TracedRun` bundling the span tree, its critical
    path and per-span resource attribution.  Module-level and
    picklable throughout, so ``parallel_map(run_traced, ...)`` fans
    traced runs across processes.  Raises on failed runs — a failure
    aborts mid-tree and there is nothing coherent to analyse.
    """
    tracer = SpanTracer(record_flows=record_flows)
    result = run_once(engine_name, workload, config, seed=seed,
                      keep_deployment=True, strict=strict, tracer=tracer)
    deployment: Deployment = result.metrics.pop("_deployment")
    if not result.success:
        raise RuntimeError(f"run failed, cannot trace: {result.failure}")
    tree = tracer.tree()
    return TracedRun(
        result=result, tree=tree,
        critical_path=extract_critical_path(tree),
        attribution=attribute_spans(deployment.cluster, tree))


def run_correlated(engine_name: str, workload: Workload,
                   config: ExperimentConfig, seed: int = 0,
                   step: float = 1.0, strict: Optional[bool] = None,
                   collect_spans: bool = False):
    """Run once and join the result with its resource traces.

    Returns a :class:`~repro.core.correlate.CorrelatedRun` — the unit
    the paper's resource figures are drawn from.  In strict mode the
    resampled panels are bounds-checked on top of the run audits.
    With ``collect_spans`` the run is additionally traced and the
    :class:`TracedRun` lands on the returned run's ``trace`` field, so
    figure-level comparisons can cite the dominant resource per stage.
    """
    from ..core.correlate import correlate  # local import: avoid cycle
    tracer = SpanTracer() if collect_spans else None
    result = run_once(engine_name, workload, config, seed=seed,
                      keep_deployment=True, strict=strict, tracer=tracer)
    deployment: Deployment = result.metrics.pop("_deployment")
    if not result.success:
        raise RuntimeError(f"run failed, cannot correlate: {result.failure}")
    run = correlate(deployment.cluster, result, step=step)
    if strict_enabled(strict):
        checker = InvariantChecker()
        checker.audit_frames(run.frames)
        checker.require_clean(
            f"{engine_name}/{workload.name} x{config.nodes} frames")
    if tracer is not None:
        tree = tracer.tree()
        run.trace = TracedRun(
            result=result, tree=tree,
            critical_path=extract_critical_path(tree),
            attribution=attribute_spans(deployment.cluster, tree))
    return run


def run_trials(engine_name: str, workload: Workload,
               config: ExperimentConfig, trials: int = 3,
               base_seed: int = 0, strict: Optional[bool] = None
               ) -> TrialStats:
    """Repeat :func:`run_once` with fresh deployments and varied seeds."""
    stats = TrialStats(engine=engine_name, workload=workload.name,
                       nodes=config.nodes)
    for t in range(trials):
        result = run_once(engine_name, workload, config,
                          seed=base_seed + 1000 * t, strict=strict)
        stats.results.append(result)
        if result.success:
            stats.durations.append(result.duration)
        else:
            stats.failures.append(result.failure or "unknown")
    return stats
