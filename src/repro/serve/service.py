"""The capacity-advisor service: ``python -m repro serve``.

A long-running asyncio HTTP service (stdlib only — hand-rolled
HTTP/1.1 over :func:`asyncio.start_server`, one request per
connection) that answers the operator question the paper leaves open:
*what is the smallest cluster size × engine × configuration that meets
this SLO for this workload?*  Planning queries fan candidate
configurations out as simulations over process-isolated workers
(:class:`~repro.serve.pool.AsyncWorkerPool`); answers are cached by
canonical digest at two tiers (whole answer, individual candidate) and
re-verified on every read (:class:`~repro.serve.cache.DigestCache`).

Robustness is the contract, not a wishlist — each guarantee maps to a
ledger bucket and a chaos test:

* **deadlines cancel work** — a request past its deadline gets a 504
  *and* its in-flight simulation child is SIGKILLed (no orphaned work);
* **bounded admission** — more than ``queue_limit`` concurrent plans
  sheds with 429 + ``Retry-After``, it never queues unboundedly;
* **circuit breaker** — repeated worker crashes/timeouts trip it;
  while open, plans shed with 503 + ``Retry-After`` instead of feeding
  a sick pool; half-open probes recover it;
* **crash retry** — worker deaths are retried with exponential backoff
  before the request fails with 500;
* **verified cache** — corrupt entries are quarantined and recomputed,
  never served;
* **liveness vs readiness** — ``/healthz`` answers as long as the loop
  runs; ``/readyz`` says whether new work is welcome;
* **graceful drain** — SIGTERM stops admission, lets in-flight
  requests finish within ``drain_grace``, sheds the rest explicitly,
  flushes the cache journal, and leaves ``in_flight == 0``.

Every request terminates in exactly one
:class:`~repro.serve.ledger.ServingLedger` bucket;
``InvariantChecker.audit_serving`` proves the books balance.

Endpoints::

    GET  /healthz    liveness (200 while the loop is alive, even draining)
    GET  /readyz     readiness (200 accepting / 503 draining or breaker open)
    GET  /statz      ledger + breaker + cache + pool snapshot
    POST /v1/advise  advisor rules only, no simulation
    POST /v1/plan    full capacity plan (body: CapacityQuery fields,
                     optional "deadline_seconds")
"""

from __future__ import annotations

import asyncio
import json
import signal
from typing import Any, Dict, List, Optional, Set, Tuple

from ..config.parameters import ConfigError
from .breaker import CircuitBreaker
from .cache import DigestCache
from .ledger import ServingLedger
from .planner import (CapacityQuery, PlanError, apply_overrides,
                      build_plan_workload, candidate_digest,
                      evaluate_candidate, plan_capacity_async,
                      _advice_payload, _advise)
from .pool import AsyncWorkerPool, TaskFailed, PoolError

__all__ = ["AdvisorService", "MAX_BODY_BYTES"]

#: Largest request body we will read; beyond this is a 413 rejection.
MAX_BODY_BYTES = 64 * 1024


def _json_response(status: int, payload: Any,
                   extra_headers: Tuple[Tuple[str, str], ...] = ()
                   ) -> bytes:
    reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
               405: "Method Not Allowed", 408: "Request Timeout",
               413: "Payload Too Large", 429: "Too Many Requests",
               500: "Internal Server Error", 503: "Service Unavailable",
               504: "Gateway Timeout"}
    body = json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
    lines = [f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}",
             "Content-Type: application/json",
             f"Content-Length: {len(body)}",
             "Connection: close"]
    lines.extend(f"{k}: {v}" for k, v in extra_headers)
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body


class _BadRequest(Exception):
    def __init__(self, status: int, error: str) -> None:
        super().__init__(error)
        self.status = status
        self.error = error


class AdvisorService:
    """The fault-tolerant capacity-advisor service.

    ``chaos`` (deterministic fault hook for the chaos harness) is
    passed through to the worker pool; ``clock`` feeds the breaker.
    All tunables mirror the ``repro serve`` CLI flags.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 jobs: int = 2, queue_limit: int = 8,
                 default_deadline: float = 30.0,
                 client_timeout: float = 5.0,
                 task_timeout: float = 30.0, retries: int = 1,
                 backoff: float = 0.05,
                 breaker_threshold: int = 5,
                 breaker_reset: float = 0.5,
                 breaker_max_reset: float = 30.0,
                 drain_grace: float = 10.0,
                 cache_store=None, clock=None, chaos=None) -> None:
        if queue_limit < 1:
            raise ValueError(
                f"queue_limit must be >= 1, got {queue_limit}")
        self.host = host
        self.port = port
        self.queue_limit = queue_limit
        self.default_deadline = default_deadline
        self.client_timeout = client_timeout
        self.drain_grace = drain_grace
        self.ledger = ServingLedger()
        breaker_kw: Dict[str, Any] = {}
        if clock is not None:
            breaker_kw["clock"] = clock
        self.breaker = CircuitBreaker(
            threshold=breaker_threshold, reset_timeout=breaker_reset,
            max_timeout=breaker_max_reset,
            on_transition=self._on_breaker_transition, **breaker_kw)
        self.pool = AsyncWorkerPool(
            jobs=jobs, task_timeout=task_timeout, retries=retries,
            backoff=backoff, ledger=self.ledger, breaker=self.breaker,
            chaos=chaos)
        self._store = cache_store
        self.cache = DigestCache(store=cache_store)
        self._server: Optional[asyncio.AbstractServer] = None
        self._draining = False
        self._drained = asyncio.Event()
        #: In-flight *work* futures (plan evaluations), cancellable by
        #: the drain; handler tasks are never cancelled directly.
        self._work: Set[asyncio.Task] = set()
        self._idle = asyncio.Event()
        self._idle.set()

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting; sets ``self.port`` to the actual
        bound port (useful with ``port=0``)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                sig, lambda: asyncio.ensure_future(self.shutdown()))

    async def serve_forever(self) -> None:
        await self._drained.wait()

    async def shutdown(self) -> None:
        """Graceful drain: stop admitting, finish or shed in-flight,
        flush the cache journal.  Idempotent."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Let in-flight work finish within the grace period...
        try:
            await asyncio.wait_for(self._idle.wait(), self.drain_grace)
        except asyncio.TimeoutError:
            # ...then shed what remains, explicitly and accountably.
            for task in list(self._work):
                task.cancel()
            await asyncio.gather(*self._work, return_exceptions=True)
            # The shed handlers still need a tick to send their 503s
            # and settle the in-flight gauge back to zero.
            try:
                await asyncio.wait_for(self._idle.wait(), 5.0)
            except asyncio.TimeoutError:  # pragma: no cover
                pass
        await self.pool.close()
        if self._store is not None:
            self._store.close()
        self._drained.set()

    # -- bookkeeping ---------------------------------------------------
    def _on_breaker_transition(self, previous: str, state: str) -> None:
        if state == "open" and previous == "closed":
            self.ledger.breaker_trips += 1
        elif state == "closed":
            self.ledger.breaker_recoveries += 1

    def _sync_cache_counters(self) -> None:
        snap = self.cache.snapshot()
        self.ledger.cache_lookups = snap["lookups"]
        self.ledger.cache_hits = snap["hits"]
        self.ledger.cache_misses = snap["misses"]
        self.ledger.cache_quarantined = snap["quarantined"]

    def statz(self) -> Dict[str, Any]:
        self._sync_cache_counters()
        return {"ledger": self.ledger.snapshot(),
                "breaker": self.breaker.snapshot(),
                "cache": self.cache.snapshot(),
                "draining": self._draining,
                "queue_limit": self.queue_limit,
                "jobs": self.pool.jobs}

    # -- connection handling -------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.ledger.received += 1
        try:
            try:
                method, path, body = await self._read_request(reader)
            except _BadRequest as exc:
                if exc.status == 408:
                    self.ledger.rejected_slow += 1
                else:
                    self.ledger.rejected_invalid += 1
                await self._send(writer,
                                 _json_response(exc.status,
                                                {"error": exc.error}))
                return
            await self._dispatch(writer, method, path, body)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; the ledger already has a bucket
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Tuple[str, str, Optional[Any]]:
        """Parse one HTTP/1.1 request; :class:`_BadRequest` on garbage,
        oversized bodies, or clients slower than ``client_timeout``."""
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), self.client_timeout)
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                raise _BadRequest(400, "malformed request line")
            method, path = parts[0].upper(), parts[1]
            content_length = 0
            while True:
                line = await asyncio.wait_for(
                    reader.readline(), self.client_timeout)
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    try:
                        content_length = int(value.strip())
                    except ValueError:
                        raise _BadRequest(
                            400, "unreadable Content-Length") from None
            if content_length > MAX_BODY_BYTES:
                raise _BadRequest(
                    413, f"body of {content_length} bytes exceeds the "
                         f"{MAX_BODY_BYTES}-byte limit")
            raw = b""
            if content_length:
                raw = await asyncio.wait_for(
                    reader.readexactly(content_length),
                    self.client_timeout)
        except asyncio.TimeoutError:
            raise _BadRequest(
                408, f"client did not deliver the request within "
                     f"{self.client_timeout}s") from None
        except asyncio.IncompleteReadError:
            raise _BadRequest(400, "body shorter than "
                                   "Content-Length") from None
        except UnicodeDecodeError:
            raise _BadRequest(400, "undecodable request head") from None
        body: Optional[Any] = None
        if raw:
            try:
                body = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                raise _BadRequest(400, "body is not valid JSON") from None
        return method, path, body

    async def _dispatch(self, writer: asyncio.StreamWriter, method: str,
                        path: str, body: Optional[Any]) -> None:
        # Liveness and introspection stay up during a drain: a dying
        # service that stops answering /healthz looks crashed, not
        # draining.
        if path == "/healthz":
            self._complete()
            await self._send(writer, _json_response(
                200, {"ok": True,
                      "draining": self._draining}))
            return
        if path == "/readyz":
            self._complete()
            ready = not self._draining and not self.breaker.blocking()
            await self._send(writer, _json_response(
                200 if ready else 503,
                {"ready": ready, "draining": self._draining,
                 "breaker": self.breaker.state}))
            return
        if path == "/statz":
            self._complete()
            await self._send(writer, _json_response(200, self.statz()))
            return
        if path not in ("/v1/plan", "/v1/advise"):
            self.ledger.rejected_invalid += 1
            await self._send(writer, _json_response(
                404, {"error": f"unknown path {path!r}"}))
            return
        if method != "POST":
            self.ledger.rejected_invalid += 1
            await self._send(writer, _json_response(
                405, {"error": f"{path} expects POST, got {method}"}))
            return
        if self._draining:
            self.ledger.admitted += 1
            self.ledger.shed_drain += 1
            await self._send(writer, _json_response(
                503, {"error": "service is draining",
                      "shed": "drain"}))
            return
        if path == "/v1/advise":
            await self._handle_advise(writer, body)
            return
        await self._handle_plan(writer, body)

    def _complete(self) -> None:
        """A trivially-served request: admitted and completed at once."""
        self.ledger.admitted += 1
        self.ledger.completed += 1

    async def _send(self, writer: asyncio.StreamWriter,
                    payload: bytes) -> None:
        writer.write(payload)
        await writer.drain()

    # -- /v1/advise ----------------------------------------------------
    async def _handle_advise(self, writer: asyncio.StreamWriter,
                             body: Optional[Any]) -> None:
        """Advisor rules only — cheap enough to answer inline."""
        try:
            payload = self._advise_payload(body)
        except _BadRequest as exc:
            self.ledger.rejected_invalid += 1
            await self._send(writer, _json_response(
                exc.status, {"error": exc.error}))
            return
        self.ledger.admitted += 1
        self.ledger.in_flight += 1
        try:
            self.ledger.completed += 1
            await self._send(writer, _json_response(200, payload))
        finally:
            self.ledger.in_flight -= 1

    def _advise_payload(self, body: Optional[Any]) -> Dict[str, Any]:
        from ..cli import build_config
        if not isinstance(body, dict):
            raise _BadRequest(400, "advise body must be a JSON object")
        try:
            workload = body["workload"]
            engine = body["engine"]
            nodes = body["nodes"]
        except KeyError as exc:
            raise _BadRequest(
                400, f"advise body needs {exc.args[0]!r}") from None
        if engine not in ("spark", "flink"):
            raise _BadRequest(400, f"unknown engine {engine!r}")
        if not isinstance(nodes, int) or nodes < 1:
            raise _BadRequest(400, "nodes must be a positive integer")
        try:
            config = apply_overrides(
                build_config(workload, nodes), engine,
                dict(body.get("overrides") or {}))
            plan_wl = build_plan_workload(workload, nodes)
        except (PlanError, ConfigError, ValueError) as exc:
            raise _BadRequest(400, str(exc)) from None
        advice = _advise(engine, config, nodes,
                         plan_wl.jobs(engine)[0])
        return {"workload": workload, "engine": engine, "nodes": nodes,
                "advice": _advice_payload(advice),
                "fatal": any(a.severity == "fatal" for a in advice)}

    # -- /v1/plan ------------------------------------------------------
    async def _handle_plan(self, writer: asyncio.StreamWriter,
                           body: Optional[Any]) -> None:
        try:
            query, deadline = self._parse_plan_body(body)
        except (PlanError, _BadRequest) as exc:
            status = exc.status if isinstance(exc, _BadRequest) else 400
            self.ledger.rejected_invalid += 1
            await self._send(writer, _json_response(
                status, {"error": str(exc)}))
            return
        self.ledger.admitted += 1
        # Bounded admission: shed rather than queue without limit.
        if self.ledger.in_flight >= self.queue_limit:
            self.ledger.shed_queue_full += 1
            await self._send(writer, _json_response(
                429, {"error": f"queue full "
                               f"({self.queue_limit} in flight)",
                      "shed": "queue_full"},
                (("Retry-After", "1"),)))
            return
        # Open breaker: fail fast instead of feeding a sick pool.
        if self.breaker.blocking():
            self.ledger.shed_breaker += 1
            retry = max(1, int(self.breaker.retry_after() + 0.5))
            await self._send(writer, _json_response(
                503, {"error": "worker pool circuit breaker is open",
                      "shed": "breaker",
                      "breaker": self.breaker.snapshot()},
                (("Retry-After", str(retry)),)))
            return
        self.ledger.in_flight += 1
        self._idle.clear()
        try:
            await self._run_plan(writer, query, deadline)
        finally:
            self.ledger.in_flight -= 1
            if self.ledger.in_flight == 0:
                self._idle.set()

    async def _run_plan(self, writer: asyncio.StreamWriter,
                        query: CapacityQuery, deadline: float) -> None:
        answer_key = "answer:" + query.digest()
        cached = self.cache.get(answer_key)
        self._sync_cache_counters()
        if cached is not None:
            self.ledger.completed += 1
            self.ledger.completed_cache_hits += 1
            await self._send(writer, _json_response(
                200, dict(cached, cached=True)))
            return
        work = asyncio.ensure_future(self._plan_work(query))
        self._work.add(work)
        work.add_done_callback(self._work.discard)
        try:
            payload = await asyncio.wait_for(work, deadline)
        except asyncio.TimeoutError:
            # wait_for already cancelled the work task, which killed
            # any in-flight worker child: real cancellation.
            self.ledger.failed_deadline += 1
            await self._send(writer, _json_response(
                504, {"error": f"deadline of {deadline:g}s exceeded",
                      "query_digest": query.digest()}))
            return
        except asyncio.CancelledError:
            if self._draining:
                self.ledger.shed_drain += 1
                await self._send(writer, _json_response(
                    503, {"error": "shed during drain",
                          "shed": "drain"}))
                return
            raise
        except PoolError as exc:
            self.ledger.failed_worker += 1
            await self._send(writer, _json_response(
                500, {"error": f"worker pool exhausted: {exc}",
                      "query_digest": query.digest()}))
            return
        except Exception as exc:  # noqa: BLE001 - terminal bucket
            self.ledger.failed_internal += 1
            await self._send(writer, _json_response(
                500, {"error": f"{type(exc).__name__}: {exc}"}))
            return
        self.cache.put(answer_key, payload)
        self._sync_cache_counters()
        self.ledger.completed += 1
        await self._send(writer, _json_response(
            200, dict(payload, cached=False)))

    def _parse_plan_body(self, body: Optional[Any]
                         ) -> Tuple[CapacityQuery, float]:
        if not isinstance(body, dict):
            raise PlanError("plan body must be a JSON object")
        body = dict(body)
        deadline = body.pop("deadline_seconds", self.default_deadline)
        if not isinstance(deadline, (int, float)) or deadline <= 0:
            raise PlanError(f"deadline_seconds must be a positive "
                            f"number, got {deadline!r}")
        return CapacityQuery.from_payload(body), float(deadline)

    async def _plan_work(self, query: CapacityQuery) -> Dict[str, Any]:
        """The search, with candidate-level caching over the pool."""

        async def evaluate_many(descs: List[Dict[str, Any]]
                                ) -> List[Dict[str, Any]]:
            keys = ["cell:" + candidate_digest(d) for d in descs]
            results: List[Optional[Dict[str, Any]]] = [
                self.cache.get(key) for key in keys]
            pending = [i for i, r in enumerate(results) if r is None]

            async def one(i: int) -> Dict[str, Any]:
                tag = f"{descs[i]['engine']}@{descs[i]['nodes']}"
                try:
                    return await self.pool.run(
                        evaluate_candidate, (descs[i],), tag=tag)
                except TaskFailed as exc:
                    # The simulator raised deterministically; report
                    # the cell as failed rather than the whole plan.
                    return {"ok": False, "feasible": False,
                            "reason": f"worker-failure: {exc}",
                            "advice": [], "duration": None,
                            "sim_events": 0}

            # return_exceptions: a crashed candidate must not abandon
            # its siblings mid-attempt — every attempt settles before
            # the failure propagates, so the ledger's attempt/outcome
            # conservation holds at any audit point.
            fresh = await asyncio.gather(*(one(i) for i in pending),
                                         return_exceptions=True)
            for i, result in zip(pending, fresh):
                if isinstance(result, BaseException):
                    continue
                results[i] = result
                self.cache.put(keys[i], result)
            for result in fresh:
                if isinstance(result, BaseException):
                    raise result
            return [r for r in results if r is not None]

        return await plan_capacity_async(query, evaluate_many)
