"""``repro.serve``: the fault-tolerant capacity-advisor service.

The paper's configuration rules (:mod:`repro.config.advisor`) and the
deterministic simulator, turned into the thing an operator would
actually deploy: a long-running service answering "what is the smallest
cluster × engine × configuration that meets this SLO?" — and built to
survive the failures a long-running service actually meets: worker
crashes, overload bursts, corrupt cached state, slow clients, and its
own shutdown.  See ``docs/serving.md``.
"""

from .breaker import CircuitBreaker
from .cache import DigestCache
from .ledger import ServingLedger
from .planner import (CapacityQuery, PlanError, candidate_descriptors,
                      candidate_digest, evaluate_candidate,
                      plan_capacity, plan_capacity_async,
                      plan_capacity_sync, search_levels)
from .pool import (AsyncWorkerPool, PoolError, TaskCrashed, TaskFailed,
                   TaskTimedOut)
from .service import AdvisorService

__all__ = [
    "AdvisorService", "AsyncWorkerPool", "CapacityQuery",
    "CircuitBreaker", "DigestCache", "PlanError", "PoolError",
    "ServingLedger", "TaskCrashed", "TaskFailed", "TaskTimedOut",
    "candidate_descriptors", "candidate_digest", "evaluate_candidate",
    "plan_capacity", "plan_capacity_async", "plan_capacity_sync",
    "search_levels",
]
