"""Digest-verified result cache for the capacity-advisor service.

Every cacheable value in the service is a deterministic function of a
canonical descriptor (a capacity query, one candidate configuration),
so the cache key is the descriptor's digest and the cached value can be
*re-verified on every read*: each entry stores the canonical digest of
its own payload, recomputed at lookup time.  An entry whose payload no
longer matches its recorded checksum — a bit flip in the resident dict,
a corrupted journal line on disk — is **quarantined and recomputed,
never served**.  That is the difference between a cache and a rumor
mill: a hit is exactly as trustworthy as a fresh computation.

Persistence reuses :class:`~repro.harness.checkpoint.CheckpointStore`
in ``on_corrupt="quarantine"`` mode: the journal's per-record checksums
(PR 10) catch on-disk corruption at open, and the in-memory checksum
here catches anything that happens after load.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..harness.checkpoint import CheckpointStore
from ..validation.digest import digest_payload

__all__ = ["DigestCache"]


class DigestCache:
    """In-memory cache with per-entry checksums and optional journal.

    ``store`` (optional) is a :class:`CheckpointStore` opened by the
    caller; puts are journaled through it (fsynced, crash-safe) and its
    surviving records seed the cache, so a restarted service serves
    digest-identical answers for queries it has already computed.
    """

    def __init__(self, store: Optional[CheckpointStore] = None) -> None:
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._store = store
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        self.quarantined_keys: List[str] = []
        if store is not None:
            # Journal records already survived the store's own checksum
            # check; re-wrap them so reads keep verifying.
            for key in list(store.keys()):
                payload = store.load(key)
                self._entries[key] = {
                    "payload": payload, "sha": digest_payload(payload)}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[Any]:
        """Verified lookup: a corrupt entry counts as a miss, never a hit.

        Returns the payload or ``None``.  On checksum mismatch the
        entry is dropped, its key is recorded in ``quarantined_keys``
        and the caller recomputes — by construction the corrupt value
        cannot reach a response.
        """
        self.lookups += 1
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        actual = digest_payload(entry["payload"])
        if actual != entry["sha"]:
            self._entries.pop(key, None)
            self.quarantined += 1
            self.quarantined_keys.append(key)
            self.misses += 1
            return None
        self.hits += 1
        return entry["payload"]

    def put(self, key: str, payload: Any) -> None:
        """Insert (idempotent per key) and journal when persistent."""
        if key in self._entries:
            return
        self._entries[key] = {"payload": payload,
                              "sha": digest_payload(payload)}
        if self._store is not None:
            self._store.save(key, payload)

    def corrupt(self, key: str) -> bool:
        """Chaos-harness hook: flip the resident payload for ``key``.

        Returns True when an entry existed to corrupt.  The next
        :meth:`get` must quarantine it — tests assert exactly that.
        """
        entry = self._entries.get(key)
        if entry is None:
            return False
        entry["payload"] = {"corrupted": True,
                            "was": entry["payload"]}
        return True

    def snapshot(self) -> Dict[str, int]:
        return {"entries": len(self._entries), "lookups": self.lookups,
                "hits": self.hits, "misses": self.misses,
                "quarantined": self.quarantined}
