"""Process-isolated worker pool for the asyncio service.

:func:`~repro.harness.parallel.robust_map` gives batch campaigns
process isolation, per-task timeouts and bounded retry — but it blocks
its caller, and a service needs the same guarantees *per request*,
concurrently, with real cancellation: when a request's deadline fires
or the service drains, the simulation work in flight for it must stop
consuming a core, not just be abandoned.

:class:`AsyncWorkerPool` runs each task attempt in its own forked
process (reusing :func:`repro.harness.parallel._robust_child`, so a
crash or SIGKILL can only take down that attempt) and awaits the result
pipe on the event loop.  Guarantees:

* a worker that dies raises :class:`TaskCrashed` (retried with
  exponential backoff up to ``retries``);
* an attempt exceeding ``task_timeout`` is SIGKILLed and raises
  :class:`TaskTimedOut` (also retried);
* cancelling the awaiting coroutine — a request deadline, a drain —
  SIGKILLs the in-flight child *before* the cancellation propagates:
  no orphaned simulation keeps burning CPU for an answer nobody wants;
* every attempt outcome is reported to the optional circuit breaker
  and counted on the serving ledger, so the accounting always balances.

``chaos`` is the deterministic fault-injection hook for the chaos
harness: consulted before each attempt with ``(tag, attempt)``, it may
return ``"kill"`` to replace the worker with one that SIGKILLs itself
immediately — a real process death, with none of the nondeterminism of
racing a signal against real work.
"""

from __future__ import annotations

import asyncio
import os
import signal
from multiprocessing import get_context
from typing import Any, Callable, Optional, Tuple

from ..harness.parallel import _robust_child
from .breaker import CircuitBreaker
from .ledger import ServingLedger

__all__ = ["AsyncWorkerPool", "TaskCrashed", "TaskTimedOut",
           "TaskFailed", "PoolError"]


class PoolError(RuntimeError):
    """Base class for attempt failures inside the pool."""


class TaskCrashed(PoolError):
    """The worker process died before reporting a result."""


class TaskTimedOut(PoolError):
    """The attempt exceeded the per-task timeout and was killed."""


class TaskFailed(PoolError):
    """The task function raised inside the worker (not retried: the
    task is deterministic, so the exception is too)."""

    def __init__(self, error_type: str, message: str) -> None:
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.message = message


def _chaos_suicide() -> None:  # pragma: no cover - dies immediately
    """Chaos worker body: a real, immediate SIGKILL death."""
    os.kill(os.getpid(), signal.SIGKILL)


class AsyncWorkerPool:
    """Bounded async fan-out of module-level functions to processes."""

    def __init__(self, jobs: int = 2, task_timeout: float = 30.0,
                 retries: int = 1, backoff: float = 0.05,
                 ledger: Optional[ServingLedger] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 chaos: Optional[Callable[[str, int],
                                          Optional[str]]] = None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if task_timeout <= 0:
            raise ValueError(
                f"task_timeout must be > 0, got {task_timeout}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.jobs = jobs
        self.task_timeout = task_timeout
        self.retries = retries
        self.backoff = backoff
        self.ledger = ledger if ledger is not None else ServingLedger()
        self.breaker = breaker
        self.chaos = chaos
        self._slots = asyncio.Semaphore(jobs)
        self._ctx = get_context()
        self._closed = False

    # ------------------------------------------------------------------
    async def run(self, fn: Callable, args: Tuple, tag: str = "") -> Any:
        """Run ``fn(*args)`` in a worker; retry crashes and timeouts.

        ``tag`` identifies the task to the chaos hook and in errors.
        Raises :class:`TaskFailed` on an in-task exception (first
        attempt — deterministic), or :class:`TaskCrashed` /
        :class:`TaskTimedOut` once the retry budget is exhausted.
        """
        if self._closed:
            raise PoolError("pool is closed")
        attempt = 0
        while True:
            attempt += 1
            try:
                result = await self._attempt(fn, args, tag, attempt)
            except (TaskCrashed, TaskTimedOut) as exc:
                if self.breaker is not None:
                    self.breaker.record_failure()
                if attempt > self.retries:
                    self.ledger.sim_exhausted += 1
                    raise type(exc)(
                        f"{exc} [task {tag or getattr(fn, '__name__', fn)}"
                        f" gave up after {attempt} attempt(s)]") from exc
                self.ledger.sim_retried += 1
                delay = self.backoff * (2.0 ** (attempt - 1))
                await asyncio.sleep(delay)
                continue
            except TaskFailed:
                # Deterministic in-task exception: retrying recomputes
                # the same raise.  Not a pool-health signal.
                raise
            if self.breaker is not None:
                self.breaker.record_success()
            return result

    async def _attempt(self, fn: Callable, args: Tuple, tag: str,
                       attempt: int) -> Any:
        async with self._slots:
            loop = asyncio.get_running_loop()
            action = self.chaos(tag, attempt) if self.chaos else None
            parent_conn, child_conn = self._ctx.Pipe(duplex=False)
            if action == "kill":
                proc = self._ctx.Process(target=_chaos_suicide)
            else:
                proc = self._ctx.Process(
                    target=_robust_child, args=(fn, 0, args, child_conn))
            self.ledger.sim_attempts += 1
            proc.start()
            child_conn.close()
            readable: asyncio.Future = loop.create_future()
            fd = parent_conn.fileno()
            loop.add_reader(fd, lambda: (not readable.done()
                                         and readable.set_result(None)))
            try:
                try:
                    # asyncio.wait, not wait_for: on 3.10/3.11 a
                    # wait_for whose inner future completes in the same
                    # tick as a cancellation SWALLOWS the cancellation
                    # (gh-86296) — here that would leave a drained
                    # request's retry loop running to its full deadline.
                    done, _ = await asyncio.wait(
                        (readable,), timeout=self.task_timeout)
                    if not done:
                        self.ledger.sim_timeout += 1
                        raise TaskTimedOut(
                            f"attempt {attempt} exceeded the "
                            f"{self.task_timeout}s task timeout")
                except asyncio.CancelledError:
                    # Real cancellation: the deadline/drain kills the
                    # in-flight simulation, it does not orphan it.
                    self.ledger.sim_cancelled += 1
                    raise
                try:
                    kind_payload = parent_conn.recv()
                except (EOFError, OSError):
                    self.ledger.sim_crashed += 1
                    raise TaskCrashed(
                        f"worker exited with code {proc.exitcode} before "
                        f"reporting (attempt {attempt})") from None
                if kind_payload[0] == "ok":
                    self.ledger.sim_ok += 1
                    return kind_payload[1]
                self.ledger.sim_error += 1
                raise TaskFailed(kind_payload[1], kind_payload[2])
            finally:
                loop.remove_reader(fd)
                if proc.is_alive():
                    proc.kill()
                proc.join()
                parent_conn.close()

    async def close(self) -> None:
        """Refuse new work (in-flight attempts own their processes and
        clean up in their ``finally`` blocks)."""
        self._closed = True
