"""Circuit breaker around the simulation worker pool.

A long-running service cannot afford to keep throwing requests at a
worker pool that is crashing or timing out on every task: each doomed
attempt holds an admission slot for the full task timeout, so a sick
pool converts overload into wedging.  The breaker converts it into
explicit, bounded failure instead:

* **closed** — normal operation.  Consecutive attempt failures are
  counted; ``threshold`` of them in a row *trips* the breaker.
* **open** — requests are shed at admission (fail fast, with a
  retry-after hint) until ``reset_timeout`` has elapsed.  Each
  consecutive re-trip doubles the open window up to ``max_timeout``.
* **half-open** — after the window, the next admitted request acts as
  the probe: its pool attempts are allowed through.  A success closes
  the breaker (and resets the backoff); a failure re-opens it with a
  doubled window.

The clock is injectable, so every transition is unit-testable without
sleeping; transitions are reported through ``on_transition`` for the
serving ledger.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Consecutive-failure circuit breaker with exponential reset backoff.

    Not thread-safe by design: the service drives it from a single
    asyncio event loop.
    """

    def __init__(self, threshold: int = 5, reset_timeout: float = 1.0,
                 max_timeout: float = 60.0,
                 clock: Callable[[], float] = time.monotonic,
                 on_transition: Optional[Callable[[str, str], None]] = None
                 ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if reset_timeout <= 0:
            raise ValueError(
                f"reset_timeout must be > 0, got {reset_timeout}")
        self.threshold = threshold
        self.reset_timeout = reset_timeout
        self.max_timeout = max_timeout
        self._clock = clock
        self._on_transition = on_transition
        self._consecutive_failures = 0
        self._open = False
        self._open_until = 0.0
        self._consecutive_trips = 0
        self.trips = 0
        self.recoveries = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """``"closed"`` | ``"open"`` | ``"half_open"`` (time-aware)."""
        if not self._open:
            return "closed"
        if self._clock() < self._open_until:
            return "open"
        return "half_open"

    def blocking(self) -> bool:
        """True while admission should shed (open, window not elapsed)."""
        return self.state == "open"

    def retry_after(self) -> float:
        """Seconds until the open window elapses (0 when not blocking)."""
        if not self.blocking():
            return 0.0
        return max(0.0, self._open_until - self._clock())

    # ------------------------------------------------------------------
    def record_success(self) -> None:
        """One pool attempt completed; half-open probes recover here."""
        if self._open:
            self.recoveries += 1
            self._transition(self.state, "closed")
            self._open = False
            self._consecutive_trips = 0
        self._consecutive_failures = 0

    def record_failure(self) -> None:
        """One pool attempt crashed or timed out."""
        self._consecutive_failures += 1
        if self._open:
            if self.state == "half_open":
                # The probe failed: re-open with a doubled window.
                self._trip("half_open")
            return
        if self._consecutive_failures >= self.threshold:
            self._trip("closed")

    def _trip(self, previous: str) -> None:
        self._consecutive_trips += 1
        self.trips += 1
        window = min(
            self.reset_timeout * (2.0 ** (self._consecutive_trips - 1)),
            self.max_timeout)
        self._open = True
        self._open_until = self._clock() + window
        self._transition(previous, "open")

    def _transition(self, previous: str, state: str) -> None:
        if self._on_transition is not None and previous != state:
            self._on_transition(previous, state)

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self._consecutive_failures,
            "trips": self.trips,
            "recoveries": self.recoveries,
            "retry_after": self.retry_after(),
        }

    def __repr__(self) -> str:
        return (f"CircuitBreaker(state={self.state!r}, "
                f"trips={self.trips}, recoveries={self.recoveries})")
