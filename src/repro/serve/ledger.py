"""Serving ledger: every request and simulation attempt, accounted.

The robustness claim of :mod:`repro.serve` is not "it never fails" but
"it never fails *silently*": every request the service receives must
terminate in exactly one explicit bucket, and the buckets must balance
— the same discipline :meth:`~repro.validation.InvariantChecker.
audit_streaming` applies to records (``ingested == processed + dropped
+ lost``), applied to traffic.  The chaos harness drives the service
through crashes, corruption and overload and then calls
:meth:`~repro.validation.InvariantChecker.audit_serving` on a ledger
snapshot; any hole in the accounting is a test failure.

Request lifecycle::

    received ──┬── rejected_invalid   (unparseable / oversized request)
               ├── rejected_slow      (client hit the read timeout)
               └── admitted ──┬── completed        (+ cache_hit subset)
                              ├── shed_queue_full  (429, bounded queue)
                              ├── shed_breaker     (503, breaker open)
                              ├── shed_drain       (503, SIGTERM drain)
                              ├── failed_deadline  (504, deadline hit)
                              ├── failed_worker    (500, pool exhausted)
                              └── failed_internal  (500, handler bug)

Simulation-attempt lifecycle (one task = one candidate evaluation, one
attempt = one worker process)::

    sim_attempts == sim_ok + sim_crashed + sim_timeout + sim_error
                    + sim_cancelled
    sim_crashed + sim_timeout == sim_retried + sim_exhausted
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict

__all__ = ["ServingLedger", "REQUEST_TERMINAL_FIELDS"]

#: Terminal buckets an admitted request may land in (audit: they sum
#: to ``admitted``).
REQUEST_TERMINAL_FIELDS = (
    "completed", "shed_queue_full", "shed_breaker", "shed_drain",
    "failed_deadline", "failed_worker", "failed_internal",
)


@dataclass
class ServingLedger:
    """Monotonic counters plus the in-flight gauge.

    Mutated only from the service's event loop; snapshots are plain
    dicts (digest-friendly, JSON-friendly).
    """

    # -- requests ------------------------------------------------------
    received: int = 0
    admitted: int = 0
    rejected_invalid: int = 0
    rejected_slow: int = 0
    completed: int = 0
    completed_cache_hits: int = 0
    shed_queue_full: int = 0
    shed_breaker: int = 0
    shed_drain: int = 0
    failed_deadline: int = 0
    failed_worker: int = 0
    failed_internal: int = 0
    #: Admitted requests currently in the house (gauge; must be zero
    #: after a drain).
    in_flight: int = 0

    # -- digest-verified cache ----------------------------------------
    cache_lookups: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_quarantined: int = 0

    # -- circuit breaker ----------------------------------------------
    breaker_trips: int = 0
    breaker_recoveries: int = 0

    # -- simulation attempts (worker pool) ----------------------------
    sim_attempts: int = 0
    sim_ok: int = 0
    sim_crashed: int = 0
    sim_timeout: int = 0
    sim_error: int = 0
    sim_cancelled: int = 0
    sim_retried: int = 0
    sim_exhausted: int = 0

    #: Free-form notes (chaos harness breadcrumbs); not audited.
    notes: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def note(self, key: str) -> None:
        self.notes[key] = self.notes.get(key, 0) + 1

    @property
    def shed(self) -> int:
        return self.shed_queue_full + self.shed_breaker + self.shed_drain

    @property
    def failed(self) -> int:
        return (self.failed_deadline + self.failed_worker
                + self.failed_internal)

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict copy, including the derived shed/failed totals."""
        out: Dict[str, int] = {}
        for f in fields(self):
            if f.name == "notes":
                continue
            out[f.name] = getattr(self, f.name)
        out["shed"] = self.shed
        out["failed"] = self.failed
        return out

    def describe(self) -> str:
        return (f"requests: {self.received} received, {self.admitted} "
                f"admitted -> {self.completed} completed "
                f"({self.completed_cache_hits} cache hits), "
                f"{self.shed} shed, {self.failed} failed; "
                f"cache: {self.cache_hits}/{self.cache_lookups} hits, "
                f"{self.cache_quarantined} quarantined; "
                f"breaker: {self.breaker_trips} trip(s), "
                f"{self.breaker_recoveries} recovery(ies); "
                f"sim: {self.sim_attempts} attempt(s), "
                f"{self.sim_crashed} crash(es), {self.sim_timeout} "
                f"timeout(s), {self.sim_retried} retried, "
                f"{self.sim_exhausted} exhausted")
